"""Rendering bound statements back to SQL text.

Round-trip property: ``bind(parse_statement(render(q)), schema) == q``
for every query in the supported subset (asserted in
``tests/sql/test_render.py``).  Workloads use this to serialize to plain
``.sql`` files that can be re-loaded later or inspected by humans.
"""

from __future__ import annotations

from typing import List

from repro.catalog import ColumnRef, ColumnType, Schema
from repro.datagen.dates import daynum_to_date
from repro.errors import SqlError
from repro.sql.expressions import (
    Aggregate,
    ArithmeticExpression,
    ColumnExpression,
    LiteralExpression,
    ScalarExpression,
)
from repro.sql.predicates import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
    Predicate,
)
from repro.sql.query import DmlStatement, Query, Statement


# repro-lint: dispatch=Statement
def render_statement(
    statement: Statement, schema: Schema, renderer: "_Renderer" = None
) -> str:
    """Render a bound statement to SQL text.

    ``renderer`` lets dialect adapters (e.g. the SQLite backend, whose
    DATE literals are plain day numbers) swap the literal rendering
    while reusing the statement structure.
    """
    if isinstance(statement, Query):
        return render_query(statement, schema, renderer)
    if isinstance(statement, DmlStatement):
        return _render_dml(statement, schema, renderer)
    raise SqlError(
        f"cannot render statement of type {type(statement).__name__}"
    )


def render_query(
    query: Query, schema: Schema, renderer: "_Renderer" = None
) -> str:
    """Render a bound SELECT statement to SQL text."""
    renderer = renderer if renderer is not None else _Renderer(schema)
    parts = [f"SELECT {renderer.select_list(query)}"]
    parts.append(f"FROM {', '.join(query.tables)}")
    conjuncts: List[str] = [
        renderer.predicate(p) for p in query.predicates
    ] + [renderer.join(j) for j in query.joins]
    if conjuncts:
        parts.append("WHERE " + " AND ".join(conjuncts))
    if query.group_by:
        parts.append(
            "GROUP BY " + ", ".join(str(c) for c in query.group_by)
        )
    if query.having:
        conditions = " AND ".join(
            f"{renderer.select_item(c.aggregate)} {c.op} {c.value!r}"
            for c in query.having
        )
        parts.append(f"HAVING {conditions}")
    if query.order_by:
        parts.append(
            "ORDER BY " + ", ".join(str(c) for c in query.order_by)
        )
    return " ".join(parts)


class _Renderer:
    def __init__(self, schema: Schema) -> None:
        self._schema = schema

    # ------------------------------------------------------------------

    def literal(self, ref: ColumnRef, value) -> str:
        """Render a literal in the column's logical domain."""
        ctype = self._schema.column(ref).type
        if ctype == ColumnType.DATE:
            return f"DATE '{daynum_to_date(int(value))}'"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(value, float) and value.is_integer():
            return f"{value:.1f}"
        return repr(value)

    # joins render via join(); repro-lint: dispatch=Predicate except=JoinPredicate
    def predicate(self, predicate: Predicate) -> str:
        if isinstance(predicate, ComparisonPredicate):
            ref = predicate.column
            return f"{ref} {predicate.op} {self.literal(ref, predicate.value)}"
        if isinstance(predicate, BetweenPredicate):
            ref = predicate.column
            return (
                f"{ref} BETWEEN {self.literal(ref, predicate.low)} "
                f"AND {self.literal(ref, predicate.high)}"
            )
        if isinstance(predicate, InPredicate):
            ref = predicate.column
            inner = ", ".join(
                self.literal(ref, v) for v in predicate.values
            )
            return f"{ref} IN ({inner})"
        if isinstance(predicate, LikePredicate):
            escaped = predicate.pattern.replace("'", "''")
            return f"{predicate.column} LIKE '{escaped}'"
        raise SqlError(f"cannot render predicate {predicate!r}")

    def join(self, join: JoinPredicate) -> str:
        return f"{join.left} = {join.right}"

    # ------------------------------------------------------------------

    # repro-lint: dispatch=ScalarExpression
    def scalar(self, expression: ScalarExpression) -> str:
        if isinstance(expression, ColumnExpression):
            return str(expression.column)
        if isinstance(expression, LiteralExpression):
            value = expression.value
            if isinstance(value, str):
                return f"'{value}'"
            return repr(value)
        if isinstance(expression, ArithmeticExpression):
            return (
                f"({self.scalar(expression.left)} {expression.op} "
                f"{self.scalar(expression.right)})"
            )
        raise SqlError(f"cannot render expression {expression!r}")

    def select_item(self, item) -> str:
        if isinstance(item, Aggregate):
            if item.argument is None:
                return "COUNT(*)"
            name = item.function.value.upper()
            return f"{name}({self.scalar(item.argument)})"
        return self.scalar(item)

    def select_list(self, query: Query) -> str:
        if not query.projections:
            return "*"
        return ", ".join(self.select_item(i) for i in query.projections)


def _render_dml(
    statement: DmlStatement, schema: Schema, renderer: "_Renderer" = None
) -> str:
    renderer = renderer if renderer is not None else _Renderer(schema)
    table = statement.table
    if statement.kind == "insert":
        table_schema = schema.table(table)
        names = table_schema.column_names()
        first = statement.rows[0]
        if isinstance(first, dict):
            columns = [n for n in names if n in first]
        else:
            columns = names
        row_texts = []
        for row in statement.rows:
            if isinstance(row, dict):
                values = [row[name] for name in columns]
            else:
                values = list(row)
            rendered = ", ".join(
                renderer.literal(ColumnRef(table, c), v)
                for c, v in zip(columns, values)
            )
            row_texts.append(f"({rendered})")
        column_list = ", ".join(columns)
        return (
            f"INSERT INTO {table} ({column_list}) "
            f"VALUES {', '.join(row_texts)}"
        )
    if statement.kind == "delete":
        sql = f"DELETE FROM {table}"
        if statement.predicate is not None:
            sql += f" WHERE {renderer.predicate(statement.predicate)}"
        return sql
    # update
    assignments = ", ".join(
        f"{name} = {renderer.literal(ColumnRef(table, name), value)}"
        for name, value in statement.assignments.items()
    )
    sql = f"UPDATE {table} SET {assignments}"
    if statement.predicate is not None:
        sql += f" WHERE {renderer.predicate(statement.predicate)}"
    return sql


def render_workload(workload, schema: Schema) -> str:
    """Serialize a workload to newline-separated SQL statements."""
    return "\n".join(
        render_statement(stmt, schema) + ";" for stmt in workload
    )


def load_workload(text: str, schema: Schema, name: str = "workload"):
    """Parse a ``render_workload`` dump back into a Workload."""
    from repro.sql.binder import parse_and_bind
    from repro.workload.workload import Workload

    statements = []
    for piece in text.split(";"):
        piece = piece.strip()
        if piece:
            statements.append(parse_and_bind(piece, schema))
    return Workload(statements, name=name)
