"""Execution-feedback subsystem: estimate → execute → observe → refresh.

The paper's MNSA loop chooses *which* statistics to build from optimizer
estimates alone, and refreshes them on row-churn counters.  This package
closes the loop with the signal the executor already computes and used
to throw away — actual per-operator cardinalities:

* :mod:`repro.feedback.observation` — :func:`q_error`,
  :class:`OperatorObservation`, and the :class:`PlanInstrumenter` that
  derives the estimate-side half of each observation from a plan;
* :mod:`repro.feedback.store` — :class:`QErrorTracker` streaming
  aggregates inside a bounded, thread-safe :class:`FeedbackStore`;
* :mod:`repro.feedback.policy` — :class:`FeedbackPolicy`, which turns
  aggregates into refresh ordering and MNSA re-tune decisions.

Deliberately independent of :mod:`repro.service` (the executor imports
this package; the service imports the executor), so the metrics hook is
duck-typed rather than typed against :class:`MetricsRegistry`.
"""

from repro.feedback.observation import (
    MIN_CARDINALITY,
    FeedbackKey,
    NodeAnnotation,
    OperatorObservation,
    PlanInstrumenter,
    q_error,
)
from repro.feedback.policy import FeedbackPolicy
from repro.feedback.store import (
    FeedbackStore,
    QErrorTracker,
    worst_plan_q_error,
)

__all__ = [
    "MIN_CARDINALITY",
    "FeedbackKey",
    "FeedbackPolicy",
    "FeedbackStore",
    "NodeAnnotation",
    "OperatorObservation",
    "PlanInstrumenter",
    "QErrorTracker",
    "q_error",
    "worst_plan_q_error",
]
