"""Per-operator estimated-vs-actual cardinality observations.

The optimizer annotates every :class:`~repro.optimizer.plans.PlanNode`
with its estimated output cardinality (``node.rows``); the executor knows
the *actual* cardinality the moment each operator finishes.  This module
defines the value that closes the gap:

* :func:`q_error` — the standard multiplicative estimation-error metric,
  hardened against the zero-cardinality edge cases so no ``inf`` / NaN
  ever reaches an aggregate;
* :class:`OperatorObservation` — one operator's (estimate, actual,
  q-error) triple plus the statistics targets it attributes the error to;
* :class:`PlanInstrumenter` — extracts, *from the plan alone*, the
  estimate-side half of every observation: estimated rows, operator kind,
  and the (table, column-set) feedback targets each operator's estimate
  depended on.

The executor zips the instrumenter's annotations with observed row
counts (see :meth:`repro.executor.executor.Executor.execute`) and the
resulting observations flow into a
:class:`~repro.feedback.store.FeedbackStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.optimizer.plans import (
    AggregateNode,
    HavingNode,
    IndexSeekNode,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)

#: Cardinalities below one row are clamped to one before forming the
#: q-error ratio.  This makes the metric total: empty relations, zero
#: estimates (the optimizer emits fractional estimates < 1), and empty
#: actual outputs all yield finite errors instead of division by zero.
MIN_CARDINALITY = 1.0


def q_error(estimated: float, actual: float) -> float:
    """The q-error of one cardinality estimate: ``max(e, a) / min(e, a)``.

    Both sides are clamped to :data:`MIN_CARDINALITY` first, so the
    result is always finite and >= 1:

    * ``actual == 0`` (empty operator output): the error is the estimate
      itself (an estimate of 1000 rows against an empty result is a
      1000x error, not an infinite one);
    * ``estimated == 0`` (or a fractional estimate < 1): symmetric — the
      error is the actual row count;
    * both zero (empty-relation plans): the estimate was as right as it
      could be, q-error 1.0.

    Negative or NaN inputs are treated as zero (clamped to 1).
    """
    e = estimated if estimated == estimated else 0.0  # NaN -> 0
    a = actual if actual == actual else 0.0
    e = max(MIN_CARDINALITY, float(e))
    a = max(MIN_CARDINALITY, float(a))
    return e / a if e >= a else a / e


@dataclass(frozen=True)
class FeedbackKey:
    """Identity of one feedback aggregate: a table and a column *set*.

    Unlike :class:`~repro.stats.statistic.StatKey`, column order does not
    matter — an observation on predicates over ``(b, a)`` should feed the
    same error aggregate that a candidate statistic on ``(a, b)`` will
    consult, so columns are stored sorted.
    """

    table: str
    columns: Tuple[str, ...]

    @classmethod
    def of(cls, table: str, columns) -> "FeedbackKey":
        return cls(table, tuple(sorted(set(columns))))

    def __str__(self) -> str:
        if len(self.columns) == 1:
            return f"{self.table}.{self.columns[0]}"
        return f"{self.table}.({', '.join(self.columns)})"


@dataclass(frozen=True)
class OperatorObservation:
    """One operator's estimated-vs-actual cardinality record.

    Attributes:
        operator: operator kind (``"scan"``, ``"seek"``, ``"join"``,
            ``"aggregate"``, ``"having"``, ``"sort"``).
        tables: base tables under the operator's subtree.
        targets: the (table, column-set) statistics targets whose
            estimates this operator's cardinality depended on — what the
            feedback loop attributes the error to.  Empty for operators
            whose cardinality carries no statistics signal (e.g. sorts).
        estimated_rows: the optimizer's estimate (``node.rows``).
        actual_rows: rows the operator actually produced.
        q_error: :func:`q_error` of the two.
    """

    operator: str
    tables: Tuple[str, ...]
    targets: Tuple[FeedbackKey, ...]
    estimated_rows: float
    actual_rows: int
    q_error: float


@dataclass(frozen=True)
class NodeAnnotation:
    """Estimate-side half of an observation, derived from the plan."""

    operator: str
    tables: Tuple[str, ...]
    targets: Tuple[FeedbackKey, ...]
    estimated_rows: float


class PlanInstrumenter:
    """Derives per-node feedback annotations from a physical plan.

    ``instrument(plan)`` walks the tree once and returns a mapping from
    node identity to :class:`NodeAnnotation`.  The annotation records the
    node's estimated cardinality *as chosen at optimization time* plus
    the statistics targets the estimate depended on:

    * scans / index seeks — the node's selection-predicate columns;
    * joins — the join-predicate columns of each side, one target per
      side (mirroring the Sec 4.2 dependency that statistics on both
      sides of a join are built as a pair);
    * aggregates — the grouping columns of each table;
    * having / sort — no targets (their cardinalities are derived from
      magic numbers or pass through unchanged).

    Instrumenting is read-only and therefore safe on plans shared
    through the plan cache.
    """

    def instrument(self, plan: PlanNode) -> Dict[int, NodeAnnotation]:
        annotations: Dict[int, NodeAnnotation] = {}
        for node in plan.walk():
            annotations[id(node)] = NodeAnnotation(
                operator=self._operator_kind(node),
                tables=node.tables(),
                targets=tuple(self._targets(node)),
                estimated_rows=node.rows,
            )
        return annotations

    def observe(
        self,
        annotations: Dict[int, NodeAnnotation],
        node: PlanNode,
        actual_rows: int,
    ) -> OperatorObservation:
        """Zip one node's annotation with its observed cardinality."""
        annotation = annotations[id(node)]
        return OperatorObservation(
            operator=annotation.operator,
            tables=annotation.tables,
            targets=annotation.targets,
            estimated_rows=annotation.estimated_rows,
            actual_rows=int(actual_rows),
            q_error=q_error(annotation.estimated_rows, actual_rows),
        )

    # ------------------------------------------------------------------

    # repro-lint: dispatch=PlanNode
    @staticmethod
    def _operator_kind(node: PlanNode) -> str:
        if isinstance(node, ScanNode):
            return "scan"
        if isinstance(node, IndexSeekNode):
            return "seek"
        if isinstance(node, JoinNode):
            return "join"
        if isinstance(node, AggregateNode):
            return "aggregate"
        if isinstance(node, HavingNode):
            return "having"
        if isinstance(node, SortNode):
            return "sort"
        return type(node).__name__.lower()

    def _targets(self, node: PlanNode) -> List[FeedbackKey]:
        if isinstance(node, (ScanNode, IndexSeekNode)):
            columns = {
                ref.column
                for predicate in node.predicates
                for ref in predicate.columns()
            }
            if not columns:
                return []
            return [FeedbackKey.of(node.tables()[0], columns)]
        if isinstance(node, JoinNode):
            by_table: Dict[str, set] = {}
            for predicate in node.join_predicates:
                for ref in predicate.columns():
                    by_table.setdefault(ref.table, set()).add(ref.column)
            return [
                FeedbackKey.of(table, columns)
                for table, columns in sorted(by_table.items())
            ]
        if isinstance(node, AggregateNode):
            by_table = {}
            for ref in node.group_by:
                by_table.setdefault(ref.table, set()).add(ref.column)
            return [
                FeedbackKey.of(table, columns)
                for table, columns in sorted(by_table.items())
            ]
        return []
