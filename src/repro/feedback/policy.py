"""Turning feedback aggregates into statistics-management actions.

:class:`FeedbackPolicy` is the decision layer between the
:class:`~repro.feedback.store.FeedbackStore` and the components that act
on it:

* the :class:`~repro.service.monitor.StalenessMonitor` asks
  :meth:`tables_due` which tables deserve a refresh under the configured
  :class:`~repro.config.RefreshPolicy` — by row churn (the SQL Server
  7.0 trigger), by observed q-error, or both;
* the :class:`~repro.service.service.StatsService` asks
  :meth:`should_retune` whether an executed plan's worst q-error
  warrants queueing an MNSA re-tune for that query;
* :class:`~repro.service.worker.AdvisorWorker` asks
  :meth:`rebuild_targets` which of a query's statistics to rebuild
  before re-running the analysis.

All decisions are pure functions of the store's aggregates plus the
statistics epoch, so they are deterministic under a fixed workload —
what the feedback benchmarks rely on.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.concurrency import guarded_by
from repro.config import RefreshPolicy
from repro.errors import ServiceError
from repro.feedback.store import FeedbackStore
from repro.stats.statistic import StatKey

#: Passed to ``tables_needing_refresh`` to mean "any modification at
#: all": the manager's threshold is ``max(1, fraction * rows)``, so a
#: vanishing fraction degenerates to "at least one row modified".
_ANY_CHURN_FRACTION = 1e-9


class FeedbackPolicy:
    """Threshold-based action policy over a :class:`FeedbackStore`.

    Args:
        store: the feedback aggregates to act on.
        refresh_policy: which trigger drives statistics refresh.
        refresh_threshold: decayed q-error at which a table becomes due
            for refresh under the ``qerror`` / ``hybrid`` policies.
        retune_threshold: worst plan q-error at which a query is queued
            for an MNSA re-tune.  Must be >= ``refresh_threshold`` so a
            re-tune (which rebuilds targeted statistics inline) is the
            escalation, not the default.
    """

    _retuned = guarded_by("_retune_lock")

    def __init__(
        self,
        store: FeedbackStore,
        refresh_policy: RefreshPolicy = RefreshPolicy.QERROR,
        refresh_threshold: float = 4.0,
        retune_threshold: float = 10.0,
    ) -> None:
        if refresh_threshold < 1.0:
            raise ServiceError(
                f"refresh_threshold must be >= 1, got {refresh_threshold}"
            )
        if retune_threshold < refresh_threshold:
            raise ServiceError(
                "retune_threshold must be >= refresh_threshold "
                f"({retune_threshold} < {refresh_threshold})"
            )
        self.store = store
        self.refresh_policy = RefreshPolicy(refresh_policy)
        self.refresh_threshold = refresh_threshold
        self.retune_threshold = retune_threshold
        self._retune_lock = threading.Lock()
        #: plan signature -> statistics epoch at the last granted re-tune
        self._retuned: Dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # refresh scheduling (StalenessMonitor)
    # ------------------------------------------------------------------

    def tables_due(
        self, stats_manager, churn_fraction: float
    ) -> List[str]:
        """Tables the monitor should refresh this sweep, in order.

        * ``churn``: the SQL Server 7.0 modification-counter trigger,
          verbatim (:meth:`tables_needing_refresh`).
        * ``qerror``: the churn trigger *filtered* by observed error —
          of the churn-due tables, only those whose decayed q-error
          reaches the refresh threshold are refreshed, worst error
          first.  A heavily updated table whose stale statistics are
          still estimating accurately is deferred (its counter keeps
          accumulating, so it stays a candidate), which is where the
          rebuild savings come from.  Errors on *unmodified* tables stem
          from the estimation model itself — no refresh can fix them, so
          they never make a table due.
        * ``hybrid``: the ``qerror`` set first (worst first), then
          error-flagged tables that churned at all but have not yet hit
          the churn trigger (refresh *accelerated* by feedback), then
          the remaining churn-due tables.

        Tables without any physically present statistic are never due.
        """
        if self.refresh_policy == RefreshPolicy.CHURN:
            return stats_manager.tables_needing_refresh(churn_fraction)
        churn_due = stats_manager.tables_needing_refresh(churn_fraction)
        by_error = self.store.tables_by_error(self.refresh_threshold)
        flagged = [table for table in by_error if table in churn_due]
        if self.refresh_policy == RefreshPolicy.QERROR:
            return flagged
        churned_at_all = set(
            stats_manager.tables_needing_refresh(_ANY_CHURN_FRACTION)
        )
        accelerated = [
            table
            for table in by_error
            if table not in churn_due and table in churned_at_all
        ]
        rest = [t for t in churn_due if t not in flagged]
        return flagged + accelerated + rest

    # ------------------------------------------------------------------
    # MNSA re-tuning (StatsService / AdvisorWorker)
    # ------------------------------------------------------------------

    def should_retune(
        self, worst_q_error: float, plan_signature: tuple, stats_epoch: int
    ) -> bool:
        """Whether a plan's worst observed q-error warrants a re-tune.

        At most one re-tune is granted per (plan signature, statistics
        epoch): once granted, the same plan will not be re-queued until
        some statistics mutation (the re-tune's own rebuilds included)
        has bumped the epoch — without this, every execution of a
        misestimated query would queue another identical re-tune before
        the first one ran.
        """
        if worst_q_error < self.retune_threshold:
            return False
        with self._retune_lock:
            if self._retuned.get(plan_signature) == stats_epoch:
                return False
            self._retuned[plan_signature] = stats_epoch
            return True

    def rebuild_targets(
        self, stats_manager, tables
    ) -> List[Tuple[StatKey, float]]:
        """Statistics worth rebuilding for a re-tuned query.

        Every *visible* statistic on the query's tables whose columns
        overlap a feedback target at or above the refresh threshold,
        worst error first (drop-listed statistics are the optimizer's
        dead weight — rebuilding them is exactly the waste Sec 6 calls
        out).
        """
        targets: List[Tuple[StatKey, float]] = []
        for table in tables:
            for key in stats_manager.keys_on_table(table):
                if not stats_manager.is_visible(key):
                    continue
                error = self.store.q_error_for_columns(table, key.columns)
                if error >= self.refresh_threshold:
                    targets.append((key, error))
        return sorted(targets, key=lambda pair: (-pair[1], pair[0]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeedbackPolicy({self.refresh_policy.value}, "
            f"refresh>={self.refresh_threshold:g}, "
            f"retune>={self.retune_threshold:g})"
        )
