"""Thread-safe, bounded storage of execution-feedback aggregates.

:class:`QErrorTracker` keeps streaming error aggregates for one
(table, column-set) target; :class:`FeedbackStore` owns a bounded map of
trackers shared by the executor (producer), the staleness monitor and
advisor workers (consumers), and the metrics dump.

The store is sized like the capture log: a hot production server sees an
unbounded stream of observations, so per-target aggregates are constant
size and the number of targets is capped with least-recently-observed
eviction.  Recording never blocks beyond a short mutex hold and never
fails the query path.
"""

from __future__ import annotations

import collections
import threading
from typing import Deque, Dict, Iterable, List, Tuple

from repro.concurrency import guarded_by
from repro.errors import ServiceError
from repro.feedback.observation import FeedbackKey, OperatorObservation

#: per-tracker ring size backing the streaming p95 estimate
_SAMPLE_WINDOW = 64


class QErrorTracker:
    """Streaming q-error aggregates for one feedback target.

    Constant-space: a running count, the all-time maximum, an
    exponentially decayed maximum (so a target that estimated badly long
    ago but has been accurate since fades below the refresh thresholds),
    and a bounded ring of recent errors backing a p95 estimate.

    Not individually locked — the owning :class:`FeedbackStore` guards
    all tracker access with its own lock.
    """

    __slots__ = (
        "count",
        "max_q_error",
        "decayed_q_error",
        "last_estimated",
        "last_actual",
        "_recent",
        "_decay",
    )

    def __init__(self, decay: float = 0.9) -> None:
        if not 0.0 < decay <= 1.0:
            raise ServiceError(f"decay must be in (0, 1], got {decay}")
        self.count = 0
        self.max_q_error = 1.0
        self.decayed_q_error = 1.0
        self.last_estimated = 0.0
        self.last_actual = 0
        self._recent: Deque[float] = collections.deque(
            maxlen=_SAMPLE_WINDOW
        )
        self._decay = decay

    def absorb(self, observation: OperatorObservation) -> None:
        """Fold one observation into the aggregates.

        Named distinctly from :meth:`FeedbackStore.record` on purpose:
        the store calls this under its lock, and the repo's lock-order
        lint resolves calls by method name.
        """
        q = observation.q_error
        self.count += 1
        self.max_q_error = max(self.max_q_error, q)
        # decay first, then absorb: one bad estimate dominates until
        # ~log(threshold)/log(1/decay) accurate observations wash it out
        self.decayed_q_error = max(q, self.decayed_q_error * self._decay)
        self.last_estimated = observation.estimated_rows
        self.last_actual = observation.actual_rows
        self._recent.append(q)

    def p95_q_error(self) -> float:
        """95th percentile over the recent-observation window."""
        if not self._recent:
            return 1.0
        ordered = sorted(self._recent)
        index = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return ordered[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QErrorTracker(count={self.count}, "
            f"max={self.max_q_error:.2f}, "
            f"decayed={self.decayed_q_error:.2f})"
        )


class FeedbackStore:
    """Bounded, thread-safe map of feedback targets to error trackers.

    Args:
        capacity: maximum number of distinct (table, column-set) targets
            tracked; beyond it the least-recently-observed target is
            evicted (counted in ``feedback.evicted``).
        decay: per-observation decay of each tracker's decayed maximum.
        metrics: optional metrics registry (duck-typed; anything with
            ``inc``/``gauge``) mirrored as ``feedback.*``.
    """

    _trackers = guarded_by("_lock")
    observations_total = guarded_by("_lock")
    evicted_total = guarded_by("_lock")
    resets_total = guarded_by("_lock")

    def __init__(
        self,
        capacity: int = 512,
        decay: float = 0.9,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._decay = decay
        self._metrics = metrics
        self._lock = threading.Lock()
        #: insertion order == recency order (moved on every record)
        self._trackers: "collections.OrderedDict[FeedbackKey, QErrorTracker]" = (
            collections.OrderedDict()
        )
        self.observations_total = 0
        self.evicted_total = 0
        self.resets_total = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def record(self, observation: OperatorObservation) -> None:
        """Fold one operator observation into its targets' trackers."""
        with self._lock:
            self.observations_total += 1
            for key in observation.targets:
                tracker = self._trackers.get(key)
                if tracker is None:
                    tracker = QErrorTracker(self._decay)
                    self._trackers[key] = tracker
                    while len(self._trackers) > self.capacity:
                        self._trackers.popitem(last=False)
                        self.evicted_total += 1
                else:
                    self._trackers.move_to_end(key)
                tracker.absorb(observation)
        self._publish_metrics()

    def record_all(
        self, observations: Iterable[OperatorObservation]
    ) -> None:
        for observation in observations:
            self.record(observation)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def worst_q_error(self) -> float:
        """Largest decayed q-error across every tracked target."""
        with self._lock:
            if not self._trackers:
                return 1.0
            return max(
                t.decayed_q_error for t in self._trackers.values()
            )

    def table_q_error(self, table: str) -> float:
        """Largest decayed q-error attributed to ``table`` (1.0 if none)."""
        with self._lock:
            worst = 1.0
            for key, tracker in self._trackers.items():
                if key.table == table:
                    worst = max(worst, tracker.decayed_q_error)
            return worst

    def q_error_for_columns(self, table: str, columns) -> float:
        """Largest decayed q-error on ``table`` whose tracked column set
        overlaps ``columns`` — how badly the optimizer has been
        misestimating predicates a statistic over ``columns`` would
        serve.  Returns 1.0 when nothing relevant was observed."""
        wanted = set(columns)
        with self._lock:
            worst = 1.0
            for key, tracker in self._trackers.items():
                if key.table == table and wanted & set(key.columns):
                    worst = max(worst, tracker.decayed_q_error)
            return worst

    def tables_by_error(self, threshold: float = 1.0) -> List[str]:
        """Tables whose decayed error reaches ``threshold``, worst first.

        Ties break on table name so the ordering is deterministic.
        """
        by_table: Dict[str, float] = {}
        with self._lock:
            for key, tracker in self._trackers.items():
                current = by_table.get(key.table, 1.0)
                by_table[key.table] = max(
                    current, tracker.decayed_q_error
                )
        due = [
            (error, table)
            for table, error in by_table.items()
            if error >= threshold
        ]
        return [table for error, table in sorted(due, key=lambda p: (-p[0], p[1]))]

    def snapshot(self) -> List[Tuple[FeedbackKey, dict]]:
        """All trackers as ``(key, aggregate dict)`` rows, worst first."""
        with self._lock:
            rows = [
                (
                    key,
                    {
                        "count": tracker.count,
                        "max_q_error": tracker.max_q_error,
                        "decayed_q_error": tracker.decayed_q_error,
                        "p95_q_error": tracker.p95_q_error(),
                        "last_estimated": tracker.last_estimated,
                        "last_actual": tracker.last_actual,
                    },
                )
                for key, tracker in self._trackers.items()
            ]
        return sorted(
            rows,
            key=lambda row: (-row[1]["decayed_q_error"], str(row[0])),
        )

    # ------------------------------------------------------------------
    # feedback-consumer resets
    # ------------------------------------------------------------------

    def reset_table(self, table: str) -> int:
        """Forget every aggregate attributed to ``table``.

        Called after the table's statistics were refreshed: the old
        errors described the *previous* statistics and must not keep the
        table looking due.  Returns the number of targets cleared.
        """
        with self._lock:
            stale = [k for k in self._trackers if k.table == table]
            for key in stale:
                del self._trackers[key]
            self.resets_total += len(stale)
        self._publish_metrics()
        return len(stale)

    def reset_columns(self, table: str, columns) -> int:
        """Forget aggregates on ``table`` overlapping ``columns``."""
        wanted = set(columns)
        with self._lock:
            stale = [
                k
                for k in self._trackers
                if k.table == table and wanted & set(k.columns)
            ]
            for key in stale:
                del self._trackers[key]
            self.resets_total += len(stale)
        self._publish_metrics()
        return len(stale)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._trackers)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "observations": self.observations_total,
                "tracked": len(self._trackers),
                "evicted": self.evicted_total,
                "resets": self.resets_total,
            }

    def _publish_metrics(self) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        with self._lock:
            observations = self.observations_total
            tracked = len(self._trackers)
            evicted = self.evicted_total
            worst = max(
                (t.decayed_q_error for t in self._trackers.values()),
                default=1.0,
            )
        metrics.gauge("feedback.observations", observations)
        metrics.gauge("feedback.tracked_targets", tracked)
        metrics.gauge("feedback.evicted", evicted)
        metrics.gauge("feedback.worst_q_error", worst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"FeedbackStore(tracked={len(self._trackers)}/"
                f"{self.capacity}, observations={self.observations_total})"
            )


def worst_plan_q_error(
    observations: Iterable[OperatorObservation],
) -> float:
    """The worst q-error across one executed plan's operators.

    Only operators with statistics targets count — a sort or HAVING
    node's cardinality error is not actionable feedback.
    """
    worst = 1.0
    for observation in observations:
        if observation.targets:
            worst = max(worst, observation.q_error)
    return worst
