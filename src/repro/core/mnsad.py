"""MNSA with Drop — MNSA/D (paper Sec 5.1).

A simple adaptation of Figure 1: after creating statistic(s) *s* (step 10)
and recomputing the default plan (step 11), compare the new plan tree with
the previous one.  If the plan is unchanged, *s* is heuristically
non-essential and goes onto the drop-list.

Per the paper, MNSA/D is *erroneously aggressive*: a statistic g may be
dropped because S and S ∪ {g} give the same plan even though S ∪ {g, h}
would differ — and greedy inclusion means retained statistics are never
reconsidered.  Both behaviours are preserved faithfully here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.backends.base import (
    Backend,
    bind_legacy_tail,
    resolve_backend_entry,
)
from repro.core.candidates import candidate_statistics
from repro.core.mnsa import MnsaConfig, resolve_config
from repro.core.next_stat import find_next_stat_to_build
from repro.optimizer.cache import OptimizationRequest
from repro.sql.query import Query
from repro.stats.statistic import StatKey


@dataclass
class MnsadResult:
    """Outcome of an MNSA/D run.

    Attributes:
        created: statistics created (including later-dropped ones).
        retained: created statistics kept visible.
        dropped: created statistics moved to the drop-list.
        iterations, optimizer_calls, creation_cost, stop_reason: as in
            :class:`~repro.core.mnsa.MnsaResult`.
    """

    created: List[StatKey] = field(default_factory=list)
    retained: List[StatKey] = field(default_factory=list)
    dropped: List[StatKey] = field(default_factory=list)
    iterations: int = 0
    optimizer_calls: int = 0
    creation_cost: float = 0.0
    stop_reason: str = ""

    def merge(self, other: "MnsadResult") -> None:
        for name in ("created", "retained", "dropped"):
            ours = getattr(self, name)
            for key in getattr(other, name):
                if key not in ours:
                    ours.append(key)
        # a statistic dropped for one query but retained for another stays
        self.dropped = [k for k in self.dropped if k not in self.retained]
        self.iterations += other.iterations
        self.optimizer_calls += other.optimizer_calls
        self.creation_cost += other.creation_cost
        self.stop_reason = "workload"


def mnsad_for_query(
    backend: Backend,
    query: Optional[Query] = None,
    *legacy,
    candidates: Optional[Sequence[StatKey]] = None,
    config: Optional[MnsaConfig] = None,
    t_percent: Optional[float] = None,
    epsilon: Optional[float] = None,
    feedback=None,
) -> MnsadResult:
    """Run MNSA/D for one query against ``backend``.

    ``feedback`` (an optional
    :class:`~repro.feedback.store.FeedbackStore`) biases
    ``FindNextStatToBuild`` toward the highest-error observed predicate
    columns, as in :func:`~repro.core.mnsa.mnsa_for_query`.

    .. deprecated::
        ``mnsad_for_query(database, optimizer, query, ...)`` is a shim —
        pass a :class:`~repro.backends.base.Backend`; ``t_percent`` /
        ``epsilon`` are aliases for the corresponding
        :class:`~repro.core.mnsa.MnsaConfig` fields; pass a config.
    """
    backend, query, extra = resolve_backend_entry(
        backend, query, legacy, "mnsad_for_query"
    )
    candidates, config, t_percent, epsilon, feedback = bind_legacy_tail(
        extra, (candidates, config, t_percent, epsilon, feedback)
    )
    config = resolve_config(
        config, "mnsad_for_query", t_percent=t_percent, epsilon=epsilon
    )
    result = MnsadResult()
    criterion = config.cost_criterion()
    drop_criterion = config.drop_criterion()
    calls_before = backend.optimizer_calls
    build_cost_before = backend.creation_cost_total

    if candidates is None:
        candidates = candidate_statistics(query, config.candidate_mode)
    remaining = [
        key for key in candidates if not backend.is_stat_visible(key)
    ]

    if config.min_table_rows > 0:
        for key in list(remaining):
            if backend.row_count(key.table) < config.min_table_rows:
                backend.create_stats(key)
                result.created.append(key)
                result.retained.append(key)
                remaining.remove(key)

    plan = backend.optimize_query(query)
    max_iterations = len(remaining) + 1
    for _ in range(max_iterations):
        result.iterations += 1
        missing = backend.magic_variables(query)
        if not missing:
            result.stop_reason = "no_missing_variables"
            break
        low = backend.optimize(
            OptimizationRequest(
                query, {v: config.epsilon for v in missing}
            )
        )
        high = backend.optimize(
            OptimizationRequest(
                query, {v: 1.0 - config.epsilon for v in missing}
            )
        )
        if criterion.costs_equivalent(low.cost, high.cost):
            result.stop_reason = "insensitive"
            break
        group = find_next_stat_to_build(
            plan.plan, query, remaining, feedback=feedback
        )
        if not group:
            result.stop_reason = "exhausted"
            break
        for key in group:
            backend.create_stats(key)
            result.created.append(key)
            remaining.remove(key)
        new_plan = backend.optimize_query(query)
        if drop_criterion.equivalent(new_plan, plan):
            # the new statistics changed nothing: heuristically non-essential
            for key in group:
                backend.mark_stat_droppable(key)
                result.dropped.append(key)
        else:
            result.retained.extend(group)
        plan = new_plan
    else:
        result.stop_reason = "iteration_limit"

    result.optimizer_calls = backend.optimizer_calls - calls_before
    build_cost = backend.creation_cost_total - build_cost_before
    result.creation_cost = build_cost + (
        result.optimizer_calls * backend.optimizer_call_cost
    )
    return result


def mnsad_for_workload(
    backend: Backend,
    queries: Optional[Iterable[Query]] = None,
    *legacy,
    config: Optional[MnsaConfig] = None,
    t_percent: Optional[float] = None,
    epsilon: Optional[float] = None,
) -> MnsadResult:
    """Run MNSA/D over a workload, query by query.

    A statistic dropped while processing one query is *revived* if a later
    query creates (and retains) it — the paper's motivation for the
    drop-list over physical deletion.

    .. deprecated::
        ``mnsad_for_workload(database, optimizer, queries, ...)`` is a
        shim — pass a :class:`~repro.backends.base.Backend`;
        ``t_percent`` / ``epsilon`` are aliases for the corresponding
        :class:`~repro.core.mnsa.MnsaConfig` fields; pass a config.
    """
    backend, queries, extra = resolve_backend_entry(
        backend, queries, legacy, "mnsad_for_workload"
    )
    config, t_percent, epsilon = bind_legacy_tail(
        extra, (config, t_percent, epsilon)
    )
    config = resolve_config(
        config, "mnsad_for_workload", t_percent=t_percent, epsilon=epsilon
    )
    total = MnsadResult()
    for query in queries:
        partial = mnsad_for_query(backend, query, config=config)
        total.merge(partial)
    # reconcile the drop-list with the merged view
    for key in total.retained:
        if backend.is_stat_droppable(key):
            backend.revive_stat(key)
    return total
