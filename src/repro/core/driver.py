"""Parallel workload analysis driver (tentpole of the caching redesign).

``mnsa_for_workload`` / ``mnsad_for_workload`` walk a workload serially,
and each per-query pass is dominated by optimizer invocations: the default
plan, the ε / 1−ε sensitivity probes, and MNSA/D's drop-detection
re-optimizations.  Creation order is load-bearing (each query sees the
statistics its predecessors built), so the *mutating* pass cannot be
parallelized without changing the algorithm — but the **query-analysis
phase** can: before any statistic is created, the default plan and the
first round of ε / 1−ε probes of every query are independent, read-only
optimizations.

:class:`WorkloadDriver` exploits exactly that split.  ``run_mnsa`` /
``run_mnsad`` first *pre-warm* a shared
:class:`~repro.optimizer.cache.PlanCache` by running those read-only
probes over a ``ThreadPoolExecutor`` (one short-lived optimizer per
worker, all pointing at the same cache), then run the unchanged serial
algorithm on the primary optimizer.  The serial pass finds its initial
optimizations already cached, and the merge order is the serial
algorithm's own order — so results are byte-identical to the serial path
by construction, with ``parallelism=1`` degrading to a plain cached (or
uncached) serial run.

The driver runs against any :class:`~repro.backends.base.Backend`; the
pre-warm phase is a :class:`~repro.backends.memory.MemoryBackend`
optimization (other engines have no shared plan cache to warm) and
silently degrades to the serial path elsewhere.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional

from repro.backends.base import Backend
from repro.backends.memory import MemoryBackend
from repro.core.mnsa import MnsaConfig, MnsaResult, mnsa_for_workload
from repro.core.mnsad import MnsadResult, mnsad_for_workload
from repro.errors import PolicyError, ReproDeprecationWarning
from repro.optimizer.cache import OptimizationRequest, PlanCache
from repro.optimizer.optimizer import Optimizer
from repro.sql.query import Query


class WorkloadDriver:
    """Runs workload-level MNSA / MNSA/D with a shared plan cache.

    Args:
        backend: the engine to tune — any
            :class:`~repro.backends.base.Backend`.  Passing a raw
            :class:`~repro.storage.Database` (with an optional
            ``optimizer`` second argument) is deprecated and adapts to a
            :class:`~repro.backends.memory.MemoryBackend`.
        parallelism: worker threads for the read-only pre-warm phase;
            ``1`` disables the phase entirely.
        cache: the shared :class:`~repro.optimizer.cache.PlanCache`
            (memory backend only).  Defaults to a fresh cache when an
            optimizer must be created; when the backend already carries
            an optimizer with a cache, they must agree (the pre-warm
            phase is useless against a cache the serial pass will not
            read).
        corrections: optional :class:`~repro.learned.CorrectionStore`
            for a legacy auto-created optimizer — the A/B hook for
            running the same workload with and without learned
            corrections.  Ignored when an optimizer is supplied (the
            optimizer's own attachments win); the pre-warm optimizers
            always mirror the primary's learned attachments so cache
            keys line up.
        join_estimator: optional
            :class:`~repro.learned.SketchJoinEstimator` for a legacy
            auto-created optimizer; same rules as ``corrections``.
    """

    def __init__(
        self,
        backend,
        optimizer: Optional[Optimizer] = None,
        *,
        parallelism: int = 1,
        cache: Optional[PlanCache] = None,
        corrections=None,
        join_estimator=None,
    ) -> None:
        # repro-lint: deprecation-shim=WorkloadDriver(
        if parallelism < 1:
            raise PolicyError(
                f"parallelism must be >= 1, got {parallelism}"
            )
        self.parallelism = int(parallelism)
        if not isinstance(backend, Backend):
            database = backend
            warnings.warn(
                "WorkloadDriver(database, optimizer, ...) is deprecated; "
                "pass a Backend instead — e.g. "
                "WorkloadDriver(MemoryBackend(database, optimizer))",
                ReproDeprecationWarning,
                stacklevel=2,
            )
            if optimizer is None:
                cache = cache if cache is not None else PlanCache()
                optimizer = Optimizer(
                    database,
                    cache=cache,
                    corrections=corrections,
                    join_estimator=join_estimator,
                )
            elif cache is not None:
                optimizer.attach_cache(cache)  # raises if they disagree
            backend = MemoryBackend(database, optimizer=optimizer)
        elif optimizer is not None:
            raise TypeError(
                "WorkloadDriver(backend, optimizer) is ambiguous: the "
                "backend already carries its optimizer"
            )
        elif cache is not None and isinstance(backend, MemoryBackend):
            backend.optimizer.attach_cache(cache)
        self._backend = backend
        if isinstance(backend, MemoryBackend):
            self._db = backend.database
            self._optimizer = backend.optimizer
            self._cache = backend.optimizer.cache
        else:
            self._db = None
            self._optimizer = None
            self._cache = None

    @property
    def backend(self) -> Backend:
        return self._backend

    @property
    def optimizer(self) -> Optional[Optimizer]:
        """The memory engine's optimizer; ``None`` for other backends."""
        return self._optimizer

    @property
    def cache(self) -> Optional[PlanCache]:
        return self._cache

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def run_mnsa(
        self,
        workload: Iterable,
        config: Optional[MnsaConfig] = None,
    ) -> MnsaResult:
        """MNSA over the workload; equals the serial path exactly."""
        config = config if config is not None else MnsaConfig()
        queries = self._queries(workload)
        self._prewarm(queries, config)
        return mnsa_for_workload(self._backend, queries, config=config)

    def run_mnsad(
        self,
        workload: Iterable,
        config: Optional[MnsaConfig] = None,
    ) -> MnsadResult:
        """MNSA/D over the workload; equals the serial path exactly."""
        config = config if config is not None else MnsaConfig()
        queries = self._queries(workload)
        self._prewarm(queries, config)
        return mnsad_for_workload(self._backend, queries, config=config)

    # ------------------------------------------------------------------
    # pre-warm phase
    # ------------------------------------------------------------------

    @staticmethod
    def _queries(workload: Iterable) -> List[Query]:
        return [q for q in workload if isinstance(q, Query)]

    def _prewarm(self, queries: List[Query], config: MnsaConfig) -> None:
        """Fill the shared cache with every query's read-only first round.

        Runs only optimizations the serial pass will re-issue verbatim:
        the default plan and, when the query has statistics-less
        variables, the ε / 1−ε pins over all of them.  No statistics are
        created, so the probes commute and thread scheduling cannot
        influence the cached values — each request's result is a pure
        function of the (unchanging) statistics state.
        """
        if self.parallelism <= 1 or self._cache is None or not queries:
            return
        with ThreadPoolExecutor(
            max_workers=self.parallelism,
            thread_name_prefix="workload-driver",
        ) as pool:
            list(
                pool.map(
                    lambda query: self._prewarm_query(query, config),
                    queries,
                )
            )

    def _prewarm_query(self, query: Query, config: MnsaConfig) -> None:
        # a private optimizer per task keeps call_count deltas of the
        # primary optimizer (MnsaResult.optimizer_calls) untouched
        optimizer = Optimizer(
            self._db,
            self._optimizer.config,
            cache=self._cache,
            corrections=self._optimizer.corrections,
            join_estimator=self._optimizer.join_estimator,
        )
        optimizer.optimize_request(OptimizationRequest(query))
        missing = optimizer.magic_variables(query)
        if not missing:
            return
        optimizer.optimize_request(
            OptimizationRequest(
                query, {v: config.epsilon for v in missing}
            )
        )
        optimizer.optimize_request(
            OptimizationRequest(
                query, {v: 1.0 - config.epsilon for v in missing}
            )
        )
