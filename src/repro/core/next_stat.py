"""FindNextStatToBuild (paper Sec 4.2).

"We identify the most expensive operator in the plan tree for which one or
more candidate statistics have not yet been built, and consider those
statistics."  Node expense is the *local* cost:
``cost(subtree rooted at n) - Σ cost(children(n))``.

Join nodes introduce the paper's statistics *dependency*: statistics on
the two sides of a join predicate must be created as a pair, so this
function returns a *group* of keys to build together (usually of size 1,
size >= 2 for joins).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.optimizer.plans import (
    AggregateNode,
    IndexSeekNode,
    JoinNode,
    PlanNode,
    ScanNode,
)
from repro.sql.query import Query
from repro.stats.statistic import StatKey


def find_next_stat_to_build(
    plan: PlanNode,
    query: Query,
    remaining: Sequence[StatKey],
    feedback=None,
) -> Optional[List[StatKey]]:
    """The next statistic (or dependent pair) to create, or ``None``.

    Args:
        plan: the current plan of the query under default magic numbers
            (Figure 1 uses P, not P_low/P_high, for this step).
        query: the query being analyzed.
        remaining: candidate statistics not yet built, in candidate order.
        feedback: optional :class:`~repro.feedback.store.FeedbackStore`.
            When several candidates are relevant at the chosen node, the
            one covering the highest-error observed predicate columns is
            built first (candidate order breaks remaining ties).  With
            ``None`` the choice is exactly the paper's: first relevant
            candidate in candidate order.

    Returns:
        A non-empty list of keys from ``remaining`` to build together, or
        ``None`` when no node has unbuilt relevant candidates.
    """
    remaining = list(remaining)
    if not remaining:
        return None
    nodes = sorted(plan.walk(), key=lambda n: -n.local_cost)
    for node in nodes:
        group = _relevant_remaining(node, query, remaining, feedback)
        if group:
            return group
    return None


def _relevant_remaining(
    node: PlanNode, query: Query, remaining: List[StatKey], feedback
) -> Optional[List[StatKey]]:
    if isinstance(node, (ScanNode, IndexSeekNode)):
        return _for_scan(node, remaining, feedback)
    if isinstance(node, JoinNode):
        return _for_join(node, remaining, feedback)
    if isinstance(node, AggregateNode):
        return _for_aggregate(node, remaining, feedback)
    return None


def _pick(candidates: List[StatKey], feedback) -> StatKey:
    """Feedback tie-break: the candidate over the worst-estimated columns.

    Strict ``>`` keeps candidate order authoritative when feedback has
    nothing to say (all errors 1.0) or says the same about several
    candidates.
    """
    if feedback is None or len(candidates) == 1:
        return candidates[0]
    best = candidates[0]
    best_error = feedback.q_error_for_columns(best.table, best.columns)
    for key in candidates[1:]:
        error = feedback.q_error_for_columns(key.table, key.columns)
        if error > best_error:
            best, best_error = key, error
    return best


def _for_scan(
    node, remaining: List[StatKey], feedback
) -> Optional[List[StatKey]]:
    """Statistics over the columns of the node's selection predicates."""
    predicate_columns = {
        ref.column for pred in node.predicates for ref in pred.columns()
    }
    relevant = [
        key
        for key in remaining
        if key.table == node.tables()[0]
        and set(key.columns) <= predicate_columns
    ]
    if not relevant:
        return None
    return [_pick(relevant, feedback)]


def _for_join(
    node: JoinNode, remaining: List[StatKey], feedback
) -> Optional[List]:
    """Statistics on the join columns of both sides, built as a pair.

    Picks the first remaining key that covers some side's join columns,
    then adds the matching key for the opposite side if it is also still
    unbuilt (the Sec 4.2 dependency).
    """
    if not node.join_predicates:
        return None
    side_columns = {}
    for predicate in node.join_predicates:
        for ref in predicate.columns():
            side_columns.setdefault(ref.table, set()).add(ref.column)
    tables = list(side_columns)

    relevant_keys = [
        key
        for key in remaining
        if key.table in side_columns
        and set(key.columns) <= side_columns[key.table]
    ]
    if not relevant_keys:
        return None
    first = _pick(relevant_keys, feedback)
    group = [first]
    # the dependent statistic: same shape on the opposite side(s)
    for other_table in tables:
        if other_table == first.table:
            continue
        partner = _matching_partner(
            first, other_table, side_columns, node.join_predicates, remaining
        )
        if partner is not None and partner not in group:
            group.append(partner)
    return group


def _matching_partner(
    first: StatKey, other_table: str, side_columns, join_predicates, remaining
) -> Optional[StatKey]:
    """The opposite-side key mirroring ``first`` through the join."""
    # translate first's columns through the join predicates
    translated = []
    for column in first.columns:
        for predicate in join_predicates:
            refs = {ref.table: ref.column for ref in predicate.columns()}
            if refs.get(first.table) == column and other_table in refs:
                translated.append(refs[other_table])
                break
    if len(translated) != len(first.columns):
        return None
    for key in remaining:
        if key.table == other_table and key.columns == tuple(translated):
            return key
    # fall back to any remaining stat over the same column set
    wanted = set(translated)
    for key in remaining:
        if key.table == other_table and set(key.columns) == wanted:
            return key
    return None


def _for_aggregate(
    node: AggregateNode, remaining: List[StatKey], feedback
) -> Optional[List[StatKey]]:
    """Statistics over the grouping columns."""
    by_table = {}
    for ref in node.group_by:
        by_table.setdefault(ref.table, set()).add(ref.column)
    relevant = [
        key
        for key in remaining
        if key.table in by_table and set(key.columns) <= by_table[key.table]
    ]
    if not relevant:
        return None
    return [_pick(relevant, feedback)]
