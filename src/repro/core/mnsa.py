"""Magic Number Sensitivity Analysis — MNSA (paper Sec 4, Figure 1).

The chicken-and-egg problem: a statistic's usefulness can only be judged
after building it.  MNSA sidesteps it: pin every statistics-less
selectivity variable to ε, optimize (P_low); pin to 1-ε, optimize
(P_high).  Under cost-monotonicity the true cost lies between the two, so
if Cost(P_low) and Cost(P_high) are t-Optimizer-Cost equivalent, *no*
remaining statistic can change the picture and creation stops.  Otherwise
``FindNextStatToBuild`` proposes the next statistic from the most
expensive operator of the default plan, and the loop repeats.

Overhead: three optimizer calls per statistic created (Sec 4.3), charged
to the creation-cost ledger via ``optimizer_call_cost``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

from repro.backends.base import (
    Backend,
    bind_legacy_tail,
    resolve_backend_entry,
)
from repro.core.candidates import CandidateMode, candidate_statistics
from repro.core.equivalence import (
    EquivalenceCriterion,
    ExecutionTreeEquivalence,
    TOptimizerCostEquivalence,
)
from repro.core.next_stat import find_next_stat_to_build
from repro.errors import ReproDeprecationWarning
from repro.optimizer.cache import OptimizationRequest
from repro.optimizer.variables import EPSILON
from repro.sql.query import Query
from repro.stats.statistic import StatKey


@dataclass(frozen=True)
class MnsaConfig:
    """Knobs of the MNSA loop.

    Attributes:
        epsilon: the ε pinning value; defaults to the canonical
            :data:`repro.optimizer.variables.EPSILON` (the paper's
            0.0005, Sec 4.1).
        t_percent: the t-Optimizer-Cost equivalence threshold; the paper
            recommends 20% as conservative (Sec 8.2).
        min_table_rows: Sec 4.3's augmentation — candidates on tables
            smaller than this are created outright without analysis
            (creating statistics on small tables is inexpensive).
        candidate_mode: where candidates come from when the caller does
            not supply them.
        equivalence: ``"t_cost"`` (the paper's pragmatic choice) or
            ``"execution_tree"`` — the variant the paper mentions but
            defers (Sec 4.1, last paragraph): stop only when P_low and
            P_high are the *same execution tree*, a stricter test that
            builds more statistics.
        min_query_cost_fraction: Sec 6's workload optimization — in
            ``mnsa_for_workload``, skip queries whose estimated cost is
            below this fraction of the total workload estimated cost
            ("only consider building statistics that would potentially
            serve a significant fraction of the workload cost").
        mnsad_drop_equivalence: how MNSA/D decides a new statistic
            "leaves the plan equivalent" (Sec 5.1): ``"execution_tree"``
            compares plan trees, the paper's literal wording;
            ``"t_cost"`` treats cost-t-equivalent plans as unchanged,
            matching the equivalence the paper's implementation used
            throughout (Sec 3.2) and dropping more aggressively.
    """

    epsilon: float = EPSILON
    t_percent: float = 20.0
    min_table_rows: int = 0
    candidate_mode: CandidateMode = CandidateMode.HEURISTIC
    equivalence: str = "t_cost"
    min_query_cost_fraction: float = 0.0
    mnsad_drop_equivalence: str = "execution_tree"

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {self.epsilon}")
        if self.t_percent < 0:
            raise ValueError(f"t must be >= 0, got {self.t_percent}")
        if self.equivalence not in ("t_cost", "execution_tree"):
            raise ValueError(
                f"equivalence must be 't_cost' or 'execution_tree', "
                f"got {self.equivalence!r}"
            )
        if not 0.0 <= self.min_query_cost_fraction < 1.0:
            raise ValueError(
                "min_query_cost_fraction must be in [0, 1), got "
                f"{self.min_query_cost_fraction}"
            )
        if self.mnsad_drop_equivalence not in ("execution_tree", "t_cost"):
            raise ValueError(
                "mnsad_drop_equivalence must be 'execution_tree' or "
                f"'t_cost', got {self.mnsad_drop_equivalence!r}"
            )

    def cost_criterion(self) -> TOptimizerCostEquivalence:
        """The t-Optimizer-Cost criterion at this config's threshold —
        what the Sec 4.1 sensitivity test compares P_low/P_high with."""
        return TOptimizerCostEquivalence(self.t_percent)

    def criterion(self) -> EquivalenceCriterion:
        """The plan-equivalence criterion the ``equivalence`` field names.

        This is the single construction point shared by MNSA, the
        Shrinking Set, and the essential-set search, replacing the loose
        ``t_percent`` floats those entry points used to take.
        """
        if self.equivalence == "execution_tree":
            return ExecutionTreeEquivalence()
        return self.cost_criterion()

    def drop_criterion(self) -> EquivalenceCriterion:
        """The criterion MNSA/D uses for its Sec 5.1 drop decision."""
        if self.mnsad_drop_equivalence == "execution_tree":
            return ExecutionTreeEquivalence()
        return self.cost_criterion()


def resolve_config(
    config: Optional[MnsaConfig],
    caller: str,
    *,
    t_percent: Optional[float] = None,
    epsilon: Optional[float] = None,
) -> MnsaConfig:
    # repro-lint: deprecation-shim=t_percent=
    """Fold deprecated loose ``t_percent`` / ``epsilon`` floats into a
    :class:`MnsaConfig`, warning when the old spellings are used.

    Shared by every entry point that kept the old kwargs as aliases
    (``mnsad_for_query``, ``shrinking_set``,
    ``find_minimal_essential_set``, ``run_figure4``).
    """
    resolved = config if config is not None else MnsaConfig()
    overrides = {}
    if t_percent is not None:
        overrides["t_percent"] = t_percent
    if epsilon is not None:
        overrides["epsilon"] = epsilon
    if overrides:
        warnings.warn(
            f"{caller}: passing loose "
            f"{'/'.join(sorted(overrides))} floats is deprecated; "
            "pass an MnsaConfig (or an EquivalenceCriterion) instead",
            ReproDeprecationWarning,
            stacklevel=3,
        )
        resolved = replace(resolved, **overrides)
    return resolved


@dataclass
class MnsaResult:
    """Outcome of one MNSA run.

    Attributes:
        created: statistics created, in creation order.
        skipped: candidates left unbuilt when the loop terminated.
        iterations: loop iterations executed.
        optimizer_calls: optimize() invocations attributable to this run.
        stop_reason: why the loop ended — ``"no_missing_variables"``,
            ``"insensitive"`` (the Sec 4.1 test passed), or ``"exhausted"``
            (FindNextStatToBuild ran dry).
        creation_cost: work units: statistic builds + optimizer-call
            overhead (the Figure 4 creation-time metric).
    """

    created: List[StatKey] = field(default_factory=list)
    skipped: List[StatKey] = field(default_factory=list)
    iterations: int = 0
    optimizer_calls: int = 0
    stop_reason: str = ""
    creation_cost: float = 0.0

    def merge(self, other: "MnsaResult") -> None:
        """Fold a per-query result into a workload-level accumulator."""
        for key in other.created:
            if key not in self.created:
                self.created.append(key)
        self.iterations += other.iterations
        self.optimizer_calls += other.optimizer_calls
        self.creation_cost += other.creation_cost
        for key in other.skipped:
            if key not in self.skipped and key not in self.created:
                self.skipped.append(key)
        self.stop_reason = "workload"


def mnsa_for_query(
    backend: Backend,
    query: Optional[Query] = None,
    *legacy,
    candidates: Optional[Sequence[StatKey]] = None,
    config: MnsaConfig = MnsaConfig(),
    feedback=None,
) -> MnsaResult:
    """Run Figure 1's algorithm for one query against ``backend``.

    Statistics already present (and visible) are treated as existing set S;
    only missing candidates are considered for creation.  ``feedback``
    (an optional :class:`~repro.feedback.store.FeedbackStore`) lets
    ``FindNextStatToBuild`` break candidate ties toward the
    highest-error observed predicate columns; ``None`` reproduces the
    paper's candidate-order choice exactly.

    .. deprecated::
        ``mnsa_for_query(database, optimizer, query, ...)`` is a shim;
        pass a :class:`~repro.backends.base.Backend` instead.
    """
    backend, query, extra = resolve_backend_entry(
        backend, query, legacy, "mnsa_for_query"
    )
    candidates, config, feedback = bind_legacy_tail(
        extra, (candidates, config, feedback)
    )
    result = MnsaResult()
    criterion = config.cost_criterion()
    calls_before = backend.optimizer_calls
    build_cost_before = backend.creation_cost_total

    if candidates is None:
        candidates = candidate_statistics(query, config.candidate_mode)
    remaining = [
        key for key in candidates if not backend.is_stat_visible(key)
    ]

    # Sec 4.3 augmentation: small tables skip the analysis entirely.
    if config.min_table_rows > 0:
        for key in list(remaining):
            if backend.row_count(key.table) < config.min_table_rows:
                backend.create_stats(key)
                result.created.append(key)
                remaining.remove(key)

    plan = backend.optimize_query(query)  # step 2: default magic numbers
    max_iterations = len(remaining) + 1
    for _ in range(max_iterations):
        result.iterations += 1
        missing = backend.magic_variables(query)  # step 4
        if not missing:
            result.stop_reason = "no_missing_variables"
            break
        low = backend.optimize(
            OptimizationRequest(
                query, {v: config.epsilon for v in missing}
            )
        )
        high = backend.optimize(
            OptimizationRequest(
                query, {v: 1.0 - config.epsilon for v in missing}
            )
        )
        if config.equivalence == "execution_tree":
            insensitive = low.signature == high.signature
        else:
            insensitive = criterion.costs_equivalent(low.cost, high.cost)
        if insensitive:  # step 7
            result.stop_reason = "insensitive"
            break
        group = find_next_stat_to_build(
            plan.plan, query, remaining, feedback=feedback
        )  # step 8
        if not group:
            result.stop_reason = "exhausted"
            break
        for key in group:  # step 10 (pairs for join dependencies)
            backend.create_stats(key)
            result.created.append(key)
            remaining.remove(key)
        plan = backend.optimize_query(query)  # steps 11-12
    else:
        result.stop_reason = "iteration_limit"

    result.skipped = list(remaining)
    result.optimizer_calls = backend.optimizer_calls - calls_before
    build_cost = backend.creation_cost_total - build_cost_before
    overhead = result.optimizer_calls * backend.optimizer_call_cost
    result.creation_cost = build_cost + overhead
    return result


def mnsa_for_workload(
    backend: Backend,
    queries: Optional[Iterable[Query]] = None,
    *legacy,
    config: MnsaConfig = MnsaConfig(),
) -> MnsaResult:
    """Create a sufficient statistics set for a workload (Sec 4.3):
    invoke MNSA for each query in turn.

    With ``config.min_query_cost_fraction > 0``, queries whose estimated
    cost (under current statistics) falls below that fraction of the
    total are skipped — the Sec 6 off-line workload optimization.

    .. deprecated::
        ``mnsa_for_workload(database, optimizer, queries, ...)`` is a
        shim; pass a :class:`~repro.backends.base.Backend` instead.
    """
    backend, queries, extra = resolve_backend_entry(
        backend, queries, legacy, "mnsa_for_workload"
    )
    (config,) = bind_legacy_tail(extra, (config,))
    queries = list(queries)
    if config.min_query_cost_fraction > 0.0 and queries:
        estimates = [backend.optimize_query(q).cost for q in queries]
        total_cost = sum(estimates) or 1.0
        threshold = config.min_query_cost_fraction * total_cost
        queries = [
            q for q, cost in zip(queries, estimates) if cost >= threshold
        ]
    total = MnsaResult()
    for query in queries:
        total.merge(mnsa_for_query(backend, query, config=config))
    return total
