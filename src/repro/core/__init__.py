"""The paper's contribution: automated statistics selection.

* :mod:`repro.core.candidates` — the Candidate Statistics algorithm
  (Sec 3.1 / 7.1) plus the Exhaustive and single-column baselines.
* :mod:`repro.core.equivalence` — Execution-Tree, Optimizer-Cost, and
  t-Optimizer-Cost equivalence of statistics sets (Sec 3.2).
* :mod:`repro.core.essential` — essential-set definitions and checkers
  (Sec 3.3, Definitions 1 and 2).
* :mod:`repro.core.mnsa` — Magic Number Sensitivity Analysis (Sec 4,
  Figure 1) with :mod:`repro.core.next_stat` implementing
  FindNextStatToBuild (Sec 4.2).
* :mod:`repro.core.mnsad` — MNSA with Drop (Sec 5.1).
* :mod:`repro.core.shrinking` — the Shrinking Set algorithm (Sec 5.2,
  Figure 2).
* :mod:`repro.core.policy` — creation/drop/aging policies (Sec 6).
* :mod:`repro.core.advisor` — the end-to-end automation facade.
* :mod:`repro.core.driver` — cached / parallel workload analysis.
"""

from repro.core.candidates import (
    CandidateMode,
    candidate_statistics,
    workload_candidate_statistics,
)
from repro.core.equivalence import (
    EquivalenceCriterion,
    ExecutionTreeEquivalence,
    OptimizerCostEquivalence,
    TOptimizerCostEquivalence,
)
from repro.core.essential import (
    find_minimal_essential_set,
    is_equivalent_to_candidates,
    is_essential_set,
)
from repro.core.mnsa import MnsaConfig, MnsaResult, mnsa_for_query, mnsa_for_workload
from repro.core.next_stat import find_next_stat_to_build
from repro.core.mnsad import MnsadResult, mnsad_for_query, mnsad_for_workload
from repro.core.shrinking import ShrinkingSetResult, shrinking_set
from repro.core.policy import AgingPolicy, AutoDropPolicy, CreationPolicy
from repro.core.advisor import AdvisorReport, StatisticsAdvisor
from repro.core.driver import WorkloadDriver

__all__ = [
    "CandidateMode",
    "candidate_statistics",
    "workload_candidate_statistics",
    "EquivalenceCriterion",
    "ExecutionTreeEquivalence",
    "OptimizerCostEquivalence",
    "TOptimizerCostEquivalence",
    "is_essential_set",
    "is_equivalent_to_candidates",
    "find_minimal_essential_set",
    "MnsaConfig",
    "MnsaResult",
    "mnsa_for_query",
    "mnsa_for_workload",
    "find_next_stat_to_build",
    "MnsadResult",
    "mnsad_for_query",
    "mnsad_for_workload",
    "ShrinkingSetResult",
    "shrinking_set",
    "AgingPolicy",
    "AutoDropPolicy",
    "CreationPolicy",
    "StatisticsAdvisor",
    "AdvisorReport",
    "WorkloadDriver",
]
