"""Policies for automating statistics management (paper Sec 6).

Mechanisms (Secs 4-5) decide *which* statistics matter; policies decide
*when* to create, refresh, and physically drop them:

* :class:`CreationPolicy` — the online spectrum from Sec 6: do nothing,
  SQL Server 7.0's create-all-syntactically-relevant behaviour, MNSA, or
  MNSA/D, applied per incoming query.
* :class:`AutoDropPolicy` — the SQL Server 7.0 refresh/drop rule: refresh
  a table's statistics when its row-modification counter exceeds a
  fraction of the table size; physically drop a statistic after it has
  been refreshed more than N times.  Our improvement (Sec 6): with
  ``drop_list_only=True`` only statistics already identified as
  non-essential (on the drop-list) are eligible for physical deletion.
* :class:`AgingPolicy` — dampens re-creation of recently dropped
  statistics, unless the blocked query is expensive enough that plan
  quality must win over creation cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import PolicyError
from repro.stats.statistic import StatKey


class CreationPolicy(enum.Enum):
    """How statistics are created for incoming queries."""

    NONE = "none"
    SYNTACTIC = "syntactic"  # SQL Server 7.0 auto-statistics
    MNSA = "mnsa"
    MNSAD = "mnsad"


@dataclass
class AutoDropPolicy:
    """Refresh + physical-drop rule (Sec 6, "Dropping Statistics").

    Attributes:
        refresh_fraction: refresh a table's statistics once the rows
            modified since the last refresh exceed this fraction of the
            table (SQL Server 7.0's counter rule).
        max_updates_before_drop: physically drop a statistic updated more
            than this many times.
        drop_list_only: restrict physical drops to drop-listed statistics
            (the paper's improvement over vanilla SQL Server behaviour).
    """

    refresh_fraction: float = 0.2
    max_updates_before_drop: int = 4
    drop_list_only: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.refresh_fraction <= 1.0:
            raise PolicyError(
                f"refresh_fraction must be in (0, 1], got "
                f"{self.refresh_fraction}"
            )
        if self.max_updates_before_drop < 1:
            raise PolicyError("max_updates_before_drop must be >= 1")

    def apply(self, database) -> "DropPolicyActions":
        """Refresh due tables and drop over-updated statistics."""
        actions = DropPolicyActions()
        for table in database.stats.tables_needing_refresh(
            self.refresh_fraction
        ):
            actions.update_cost += database.stats.refresh_table(table)
            actions.refreshed_tables.append(table)
        for statistic in list(database.stats.statistics()):
            if statistic.update_count <= self.max_updates_before_drop:
                continue
            if self.drop_list_only and not database.stats.is_droppable(
                statistic.key
            ):
                continue
            database.stats.drop(statistic.key)
            actions.dropped.append(statistic.key)
        return actions


@dataclass
class DropPolicyActions:
    """What one :meth:`AutoDropPolicy.apply` pass did."""

    refreshed_tables: List[str] = field(default_factory=list)
    dropped: List[StatKey] = field(default_factory=list)
    update_cost: float = 0.0

    def merge(self, other: "DropPolicyActions") -> None:
        self.refreshed_tables.extend(other.refreshed_tables)
        self.dropped.extend(other.dropped)
        self.update_cost += other.update_cost


@dataclass
class AgingPolicy:
    """Dampens immediate re-creation of recently dropped statistics.

    Time is a logical statement counter maintained by the caller (the
    advisor).  A statistic dropped at time T is suppressed from
    re-creation until ``T + window`` — unless the query asking for it has
    an estimated cost above ``expensive_query_cost``, in which case plan
    quality wins (Sec 6: "we need to ensure that optimization of
    significantly expensive queries are not adversely affected").
    """

    window: int = 50
    expensive_query_cost: float = float("inf")
    _dropped_at: Dict[StatKey, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window < 0:
            raise PolicyError(f"window must be >= 0, got {self.window}")

    def record_drop(self, key: StatKey, now: int) -> None:
        self._dropped_at[key] = now

    def suppresses(
        self, key: StatKey, now: int, query_estimated_cost: float
    ) -> bool:
        """Should re-creation of ``key`` be suppressed right now?"""
        dropped_at = self._dropped_at.get(key)
        if dropped_at is None:
            return False
        if now - dropped_at >= self.window:
            del self._dropped_at[key]
            return False
        return query_estimated_cost < self.expensive_query_cost

    def recently_dropped(self, now: int) -> List[StatKey]:
        """Statistics still inside their damping window."""
        return sorted(
            key
            for key, when in self._dropped_at.items()
            if now - when < self.window
        )
