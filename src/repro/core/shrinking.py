"""The Shrinking Set algorithm (paper Sec 5.2, Figure 2).

Given a workload W and a statistics set S known to contain an essential
set (e.g. produced by vanilla MNSA), consider each statistic s in turn:
if removing s changes no plan of any query for which s is potentially
relevant — comparing against ``Plan(Q, S)``, the *original* set, exactly
as Figure 2 writes it — then s is non-essential and is discarded for
good.  The result is guaranteed to be an essential set for W (under the
chosen equivalence criterion), though *which* essential set depends on
the iteration order.

Worst case |S| × |W| optimizer calls.  Two sound reductions are applied:

* Figure 2 step 4's relevance filter — only queries for which s is
  potentially relevant are probed;
* an exact memo (``memoize=True``): a query's plan depends only on the
  visible statistics over its *own relevant columns*, so probes with the
  same relevant-visible set are reused instead of re-optimized.  This is
  the spirit of the Sec 5.2 efficiency technique (details deferred to the
  paper's reference [5]) without giving up the essential-set guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.backends.base import (
    Backend,
    bind_legacy_tail,
    resolve_backend_entry,
)
from repro.core.equivalence import (
    EquivalenceCriterion,
    ExecutionTreeEquivalence,
)
from repro.core.mnsa import MnsaConfig, resolve_config
from repro.optimizer.cache import OptimizationRequest
from repro.optimizer.optimizer import OptimizationResult
from repro.sql.query import Query
from repro.stats.statistic import StatKey


@dataclass
class ShrinkingSetResult:
    """Outcome of one Shrinking Set run.

    Attributes:
        essential: the statistics retained (R in Figure 2).
        removed: the statistics discarded as non-essential.
        optimizer_calls: optimize() invocations actually issued.
        memo_hits: probes answered from the memo instead of the optimizer.
    """

    essential: List[StatKey] = field(default_factory=list)
    removed: List[StatKey] = field(default_factory=list)
    optimizer_calls: int = 0
    memo_hits: int = 0


def _is_relevant(key: StatKey, query: Query) -> bool:
    """Step 4's filter: is ``key`` potentially relevant to ``query``?"""
    if key.table not in query.tables:
        return False
    relevant = {
        ref.column
        for ref in query.relevant_columns()
        if ref.table == key.table
    }
    return bool(set(key.columns) & relevant)


def _relevant_subset(
    query: Query, keys: Iterable[StatKey]
) -> FrozenSet[StatKey]:
    """The statistics among ``keys`` that can affect ``query``'s plan."""
    return frozenset(key for key in keys if _is_relevant(key, query))


def shrinking_set(
    backend: Backend,
    workload: Optional[Iterable[Query]] = None,
    *legacy,
    initial: Optional[Sequence[StatKey]] = None,
    criterion: Optional[EquivalenceCriterion] = None,
    memoize: bool = True,
    config: Optional[MnsaConfig] = None,
    t_percent: Optional[float] = None,
) -> ShrinkingSetResult:
    """Run Figure 2 over ``workload`` starting from set ``initial``.

    Args:
        backend: the engine owning the statistics; also answers the
            ``Plan(Q, X)`` probes.
        workload: the queries (DML statements are skipped).
        initial: S in Figure 2; defaults to all currently *visible*
            statistics.
        criterion: equivalence criterion; Figure 2 is stated for
            execution-tree equivalence (the default); a
            :class:`~repro.core.equivalence.TOptimizerCostEquivalence`
            instance gives the t-cost variant.
        memoize: reuse probe results with identical relevant-visible sets.
        config: alternative to ``criterion`` — use
            ``config.criterion()``, the same equivalence MNSA runs with.

    Side effect: removed statistics are physically dropped from the
    backend (Figure 2 discards them and never considers them again).

    .. deprecated::
        ``shrinking_set(database, optimizer, workload, ...)`` is a shim —
        pass a :class:`~repro.backends.base.Backend`; ``t_percent`` is an
        alias for
        ``MnsaConfig(t_percent=..., equivalence="t_cost").criterion()``;
        pass a criterion or config instead.
    """
    backend, workload, extra = resolve_backend_entry(
        backend, workload, legacy, "shrinking_set"
    )
    initial, criterion, memoize, config, t_percent = bind_legacy_tail(
        extra, (initial, criterion, memoize, config, t_percent)
    )
    if criterion is None:
        if t_percent is not None:
            base = config if config is not None else MnsaConfig()
            criterion = resolve_config(
                base, "shrinking_set", t_percent=t_percent
            ).cost_criterion()
        elif config is not None:
            criterion = config.criterion()
        else:
            criterion = ExecutionTreeEquivalence()
    queries = [q for q in workload if isinstance(q, Query)]
    if initial is None:
        initial = backend.visible_stat_keys()
    original = list(initial)
    calls_before = backend.optimizer_calls
    memo: Dict[Tuple[Query, FrozenSet[StatKey]], OptimizationResult] = {}
    memo_hits = 0

    def probe(i: int, available: Sequence[StatKey]) -> OptimizationResult:
        nonlocal memo_hits
        relevant = _relevant_subset(queries[i], available)
        cache_key = (queries[i], relevant)
        if memoize and cache_key in memo:
            memo_hits += 1
            return memo[cache_key]
        hidden = [
            key
            for key in backend.stat_keys()
            if key not in set(available)
        ]
        result = backend.optimize(
            OptimizationRequest(queries[i], ignore=hidden)
        )
        if memoize:
            memo[cache_key] = result
        return result

    # Plan(Q, S) baselines (step 4's right-hand side), computed once.
    baselines = {i: probe(i, original) for i in range(len(queries))}

    retained = list(original)
    removed: List[StatKey] = []
    for key in original:  # step 3
        relevant_query_ids = [
            i for i, q in enumerate(queries) if _is_relevant(key, q)
        ]
        without = [k for k in retained if k != key]
        drop_ok = True
        for i in relevant_query_ids:
            result = probe(i, without)
            if not criterion.equivalent(result, baselines[i]):  # step 4
                drop_ok = False
                break
        if drop_ok:
            retained = without  # step 5
            removed.append(key)
            backend.drop_stats(key)

    return ShrinkingSetResult(
        essential=retained,
        removed=removed,
        optimizer_calls=backend.optimizer_calls - calls_before,
        memo_hits=memo_hits,
    )
