"""Equivalence of sets of statistics (paper Sec 3.2).

Two statistics sets S and S' are compared through the optimizer's output
for a query Q:

* **Execution-Tree equivalence** — same execution tree (plan signature);
  the strongest notion.
* **Optimizer-Cost equivalence** — same optimizer-estimated cost (plans
  may differ).
* **t-Optimizer-Cost equivalence** — costs within t% of each other,
  footnote 2's formula: ``|c - c'| / min(c, c') < t/100``.  The paper's
  pragmatic choice, with t = 20% found conservative (Sec 8.2).

Criteria compare :class:`~repro.optimizer.optimizer.OptimizationResult`
objects so callers optimize once per statistics set and reuse results.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.optimizer.optimizer import OptimizationResult

_COST_REL_TOLERANCE = 1e-9


class EquivalenceCriterion:
    """Abstract equivalence test over two optimization results."""

    name = "abstract"

    def equivalent(
        self, a: OptimizationResult, b: OptimizationResult
    ) -> bool:
        raise NotImplementedError

    def costs_equivalent(self, cost_a: float, cost_b: float) -> bool:
        """Cost-only form, used where plans are not materialized."""
        raise NotImplementedError


class ExecutionTreeEquivalence(EquivalenceCriterion):
    """Same execution tree => same execution cost (strongest)."""

    name = "execution_tree"

    def equivalent(self, a, b) -> bool:
        return a.signature == b.signature

    def costs_equivalent(self, cost_a: float, cost_b: float) -> bool:
        raise PolicyError(
            "execution-tree equivalence cannot be decided from costs alone"
        )


class TOptimizerCostEquivalence(EquivalenceCriterion):
    """Estimated costs within t% of each other (footnote 2)."""

    name = "t_optimizer_cost"

    def __init__(self, t_percent: float = 20.0) -> None:
        if t_percent < 0:
            raise PolicyError(f"t must be >= 0, got {t_percent}")
        self.t_percent = float(t_percent)

    def equivalent(self, a, b) -> bool:
        return self.costs_equivalent(a.cost, b.cost)

    def costs_equivalent(self, cost_a: float, cost_b: float) -> bool:
        low, high = sorted((float(cost_a), float(cost_b)))
        if high == low:
            return True
        if low <= 0.0:
            return high <= 0.0
        return (high - low) / low < self.t_percent / 100.0


class OptimizerCostEquivalence(TOptimizerCostEquivalence):
    """Exactly equal estimated costs — the t = 0 special case."""

    name = "optimizer_cost"

    def __init__(self) -> None:
        super().__init__(t_percent=0.0)

    def costs_equivalent(self, cost_a: float, cost_b: float) -> bool:
        low, high = sorted((float(cost_a), float(cost_b)))
        if low <= 0.0:
            return high <= 0.0
        return (high - low) / low <= _COST_REL_TOLERANCE
