"""The end-to-end automation facade.

:class:`StatisticsAdvisor` strings the paper's mechanisms and policies
together the way a self-tuning server would:

* **online** operation: each incoming statement flows through
  :meth:`process_statement` — queries trigger the configured creation
  policy (SQL Server-style syntactic, MNSA, or MNSA/D, with aging
  applied), get optimized, and optionally executed; DML advances the
  modification counters and may trigger the refresh/drop policy;
* **offline** operation: :meth:`offline_tune` runs MNSA over a workload
  and then the Shrinking Set algorithm, the conservative Sec 6 regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.backends.base import Backend
from repro.backends.memory import MemoryBackend
from repro.core.candidates import (
    CandidateMode,
    candidate_statistics,
)
from repro.core.mnsa import MnsaConfig, mnsa_for_query
from repro.core.mnsad import mnsad_for_query
from repro.core.policy import (
    AgingPolicy,
    AutoDropPolicy,
    CreationPolicy,
    DropPolicyActions,
)
from repro.core.shrinking import ShrinkingSetResult, shrinking_set
from repro.errors import PolicyError
from repro.executor.dml import apply_dml
from repro.executor.executor import Executor
from repro.optimizer.cache import PlanCache
from repro.optimizer.optimizer import Optimizer
from repro.sql.query import DmlStatement, Query
from repro.stats.statistic import StatKey


@dataclass
class AdvisorReport:
    """Accumulated activity of one advisor session.

    Attributes:
        statements: statements processed.
        created: statistics created (deduplicated, in first-creation order).
        dropped: statistics physically dropped by policy.
        refreshed_tables: statistics refreshes triggered by DML counters.
        creation_cost: statistic-build + optimizer-overhead work units.
        update_cost: refresh work units spent by the drop policy.
        execution_cost: total actual cost of executed queries.
        optimizer_calls: total optimizer invocations.
    """

    statements: int = 0
    created: List[StatKey] = field(default_factory=list)
    dropped: List[StatKey] = field(default_factory=list)
    refreshed_tables: List[str] = field(default_factory=list)
    creation_cost: float = 0.0
    update_cost: float = 0.0
    execution_cost: float = 0.0
    optimizer_calls: int = 0


class StatisticsAdvisor:
    """Drives automated statistics management over one database."""

    def __init__(
        self,
        database,
        creation_policy: CreationPolicy = CreationPolicy.MNSAD,
        mnsa_config: Optional[MnsaConfig] = None,
        drop_policy: Optional[AutoDropPolicy] = None,
        aging: Optional[AgingPolicy] = None,
        execute_queries: bool = True,
        incremental_maintenance: bool = False,
        cache: Optional[PlanCache] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        self._db = database
        self._optimizer = Optimizer(database, cache=cache)
        self._executor = Executor(database)
        #: the engine the creation policies run against; defaults to the
        #: in-memory stack above.  With a foreign engine (e.g.
        #: ``SqliteBackend``), creation/drop decisions are mirrored into
        #: ``database.stats`` so the DML refresh/drop policies — which
        #: read the in-memory modification counters — keep working.
        self._backend = (
            backend
            if backend is not None
            else MemoryBackend(
                database, optimizer=self._optimizer, executor=self._executor
            )
        )
        self._mirror = not isinstance(self._backend, MemoryBackend)
        self.creation_policy = creation_policy
        self.mnsa_config = mnsa_config or MnsaConfig()
        self.drop_policy = drop_policy or AutoDropPolicy()
        self.aging = aging
        self.execute_queries = execute_queries
        #: maintain histograms incrementally on INSERT streams (paper ref
        #: [8]) instead of waiting for the modification counter to force
        #: full refreshes; degraded histograms still get rebuilt.
        self.incremental_maintenance = incremental_maintenance
        self.report = AdvisorReport()
        self._clock = 0  # logical time for aging

    # ------------------------------------------------------------------
    # online path
    # ------------------------------------------------------------------

    def process_statement(self, statement):
        """Process one incoming statement; returns the execution result
        for queries (or the affected row count for DML)."""
        self._clock += 1
        self.report.statements += 1
        if isinstance(statement, Query):
            return self._process_query(statement)
        if isinstance(statement, DmlStatement):
            return self._process_dml(statement)
        raise PolicyError(
            f"cannot process statement of type {type(statement).__name__}"
        )

    def run_workload(self, statements) -> AdvisorReport:
        """Process a sequence of statements; returns the session report."""
        for statement in statements:
            self.process_statement(statement)
        return self.report

    def _process_query(self, query: Query):
        self._create_statistics_for(query)
        result = self._backend.optimize_query(query)
        self.report.optimizer_calls = self._backend.optimizer_calls
        if not self.execute_queries:
            return result
        if isinstance(self._backend, MemoryBackend):
            executed = self._executor.execute(result.plan, query)
        else:
            executed = self._backend.execute(query)
        self.report.execution_cost += executed.actual_cost
        return executed

    def _create_statistics_for(self, query: Query) -> None:
        policy = self.creation_policy
        if policy == CreationPolicy.NONE:
            return
        candidates = candidate_statistics(
            query,
            CandidateMode.SINGLE_COLUMN
            if policy == CreationPolicy.SYNTACTIC
            else self.mnsa_config.candidate_mode,
        )
        candidates = self._apply_aging(query, candidates)
        if policy == CreationPolicy.SYNTACTIC:
            # SQL Server 7.0: create every syntactically relevant
            # single-column statistic on the fly.
            before = self._backend.creation_cost_total
            for key in candidates:
                if not self._backend.is_stat_visible(key):
                    self._backend.create_stats(key)
                    self.report.created.append(key)
            self.report.creation_cost += (
                self._backend.creation_cost_total - before
            )
            self._mirror_created(self.report.created)
            return
        if policy == CreationPolicy.MNSA:
            result = mnsa_for_query(
                self._backend,
                query,
                candidates=candidates,
                config=self.mnsa_config,
            )
        else:  # MNSAD
            result = mnsad_for_query(
                self._backend,
                query,
                candidates=candidates,
                config=self.mnsa_config,
            )
        for key in result.created:
            if key not in self.report.created:
                self.report.created.append(key)
        self.report.creation_cost += result.creation_cost
        self._mirror_created(result.created)

    def _mirror_created(self, keys) -> None:
        """Reflect a foreign backend's created statistics into
        ``database.stats`` so counter-driven policies see them."""
        if not self._mirror:
            return
        for key in keys:
            if not self._db.stats.has(key):
                self._db.stats.create(key)

    def _apply_aging(self, query: Query, candidates):
        if self.aging is None:
            return candidates
        # estimate the query's cost once to decide if it is "expensive"
        estimate = self._backend.optimize_query(query).cost
        return [
            key
            for key in candidates
            if not self.aging.suppresses(key, self._clock, estimate)
        ]

    def _process_dml(self, statement: DmlStatement) -> int:
        if self.incremental_maintenance and statement.kind == "insert":
            return self._process_insert_incrementally(statement)
        affected = apply_dml(self._db, statement)
        actions = self.drop_policy.apply(self._db)
        self._note_drop_actions(actions)
        return affected

    def _process_insert_incrementally(self, statement: DmlStatement) -> int:
        """INSERT path with ref-[8]-style histogram maintenance."""
        table = self._db.table(statement.table)
        rows_before = table.row_count
        affected = apply_dml(self._db, statement)
        if affected:
            inserted = {
                name: table.column_array(name)[rows_before:]
                for name in table.schema.column_names()
            }
            cost = self._db.stats.apply_incremental_inserts(
                statement.table, inserted
            )
            self.report.update_cost += cost
            for key in self._db.stats.keys_needing_rebuild(statement.table):
                self.report.update_cost += self._db.stats.rebuild(key)
                self.report.refreshed_tables.append(statement.table)
            # incremental maintenance covered these inserts
            table.rows_modified_since_stats = max(
                0, table.rows_modified_since_stats - affected
            )
        return affected

    def _note_drop_actions(self, actions: DropPolicyActions) -> None:
        self.report.refreshed_tables.extend(actions.refreshed_tables)
        self.report.update_cost += actions.update_cost
        for key in actions.dropped:
            self.report.dropped.append(key)
            if self.aging is not None:
                self.aging.record_drop(key, self._clock)

    # ------------------------------------------------------------------
    # offline path
    # ------------------------------------------------------------------

    def offline_tune(self, queries) -> ShrinkingSetResult:
        """The conservative Sec 6 regime: MNSA per query over the whole
        workload, then Shrinking Set to eliminate non-essential statistics."""
        queries = [q for q in queries if isinstance(q, Query)]
        for query in queries:
            result = mnsa_for_query(
                self._backend, query, config=self.mnsa_config
            )
            for key in result.created:
                if key not in self.report.created:
                    self.report.created.append(key)
            self.report.creation_cost += result.creation_cost
            self._mirror_created(result.created)
        shrink = shrinking_set(self._backend, queries)
        for key in shrink.removed:
            self.report.dropped.append(key)
            if self._mirror and self._db.stats.has(key):
                self._db.stats.drop(key)
            if self.aging is not None:
                self.aging.record_drop(key, self._clock)
        self.report.optimizer_calls = self._backend.optimizer_calls
        return shrink

    # ------------------------------------------------------------------

    @property
    def backend(self) -> Backend:
        """The engine the creation policies run against."""
        return self._backend

    @property
    def optimizer(self) -> Optimizer:
        return self._optimizer

    @property
    def executor(self) -> Executor:
        return self._executor
