"""Candidate statistics for queries and workloads (paper Sec 3.1 / 7.1).

Three modes:

* ``HEURISTIC`` — the paper's implemented algorithm (Sec 7.1): for a query,
  (a) a single-column statistic on each relevant column, (b) one
  multi-column statistic per table on the columns in selection predicates,
  (c) one multi-column statistic per table on the join columns, (d) one
  multi-column statistic per table on the GROUP BY columns.
* ``EXHAUSTIVE`` — the Figure 3 baseline: every syntactically relevant
  statistic, i.e. all single columns plus a multi-column statistic for
  *every* subset (size >= 2) of each table's relevant columns.
* ``SINGLE_COLUMN`` — only (a); the Sec 8.2 "single-column statistics
  only" experiment and SQL Server 7.0's auto-statistics behaviour.

Example 3 of the paper is reproduced in the tests, with one documented
deviation: the paper's list omits the single-column statistic on ``g``
even though ``R1.g = 25`` makes g relevant under the paper's own Sec 3.1
definition; we include it (see DESIGN.md §5).

Column order in multi-column candidates follows first appearance in the
query, which makes candidates deterministic.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable, List

from repro.stats.statistic import StatKey
from repro.sql.query import Query

#: Exhaustive mode explodes combinatorially; subsets above this size add
#: nothing but cost, so we cap (documented in EXPERIMENTS.md).
EXHAUSTIVE_MAX_WIDTH = 4


class CandidateMode(enum.Enum):
    HEURISTIC = "heuristic"
    EXHAUSTIVE = "exhaustive"
    SINGLE_COLUMN = "single_column"


def candidate_statistics(
    query: Query,
    mode: CandidateMode = CandidateMode.HEURISTIC,
    equality_first: bool = False,
) -> List[StatKey]:
    """Candidate statistics for one query, in deterministic order.

    Args:
        query: the bound query.
        mode: candidate-set strategy (see module docstring).
        equality_first: order the columns of the per-table *selection*
            multi-column candidate so equality-predicate columns lead.
            SQL Server statistics are asymmetric (Sec 7.1) — densities
            exist only for leading prefixes — so leading with equality
            columns lets the density path cover equality conjunctions
            even when range predicates share the statistic.
    """
    if mode == CandidateMode.SINGLE_COLUMN:
        return _single_column_candidates(query)
    if mode == CandidateMode.HEURISTIC:
        return _heuristic_candidates(query, equality_first)
    if mode == CandidateMode.EXHAUSTIVE:
        return _exhaustive_candidates(query)
    raise ValueError(f"unknown candidate mode {mode!r}")


def workload_candidate_statistics(
    queries: Iterable[Query], mode: CandidateMode = CandidateMode.HEURISTIC
) -> List[StatKey]:
    """Union of per-query candidates, first-appearance order (Def. 2)."""
    seen = []
    for query in queries:
        for key in candidate_statistics(query, mode):
            if key not in seen:
                seen.append(key)
    return seen


# ----------------------------------------------------------------------


def _single_column_candidates(query: Query) -> List[StatKey]:
    return [StatKey.single(ref) for ref in query.relevant_columns()]


def _selection_columns_ordered(
    query: Query, table: str, equality_first: bool
):
    columns = query.selection_columns_of(table)
    if not equality_first or len(columns) < 2:
        return columns
    from repro.sql.predicates import ComparisonPredicate

    equality_columns = {
        p.column
        for p in query.predicates_of(table)
        if isinstance(p, ComparisonPredicate) and p.op == "="
    }
    leading = [ref for ref in columns if ref in equality_columns]
    trailing = [ref for ref in columns if ref not in equality_columns]
    return tuple(leading + trailing)


def _heuristic_candidates(
    query: Query, equality_first: bool = False
) -> List[StatKey]:
    candidates = _single_column_candidates(query)
    for table in query.tables:
        for group in (
            _selection_columns_ordered(query, table, equality_first),
            query.join_columns_of(table),
            query.group_by_columns_of(table),
        ):
            if len(group) >= 2:
                key = StatKey.of(group)
                if key not in candidates:
                    candidates.append(key)
    return candidates


def _exhaustive_candidates(query: Query) -> List[StatKey]:
    candidates = _single_column_candidates(query)
    relevant_by_table = {}
    for ref in query.relevant_columns():
        relevant_by_table.setdefault(ref.table, []).append(ref)
    for table in query.tables:
        # canonical (sorted) column order so subsets are deterministic
        refs = sorted(relevant_by_table.get(table, []))
        max_width = min(len(refs), EXHAUSTIVE_MAX_WIDTH)
        for width in range(2, max_width + 1):
            for combo in itertools.combinations(refs, width):
                key = StatKey.of(combo)
                if key not in candidates:
                    candidates.append(key)
    return candidates
