"""Essential sets of statistics (paper Sec 3.3, Definitions 1 and 2).

An *essential set* for query Q w.r.t. candidate set C is a subset S ⊆ C
such that S is equivalent to C for Q, but no proper subset of S is.

These checkers need every candidate statistic physically built (that is
the whole point of the paper: you can rarely afford this!), so they are
used in tests, in the Shrinking Set algorithm's correctness arguments,
and in small-scale validation experiments — not on the hot path.

``plan_with_stats`` realizes the paper's ``Plan(Q, X)`` notation through
the ``Ignore_Statistics_Subset`` extension: everything but X is hidden.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from repro.backends.base import (
    Backend,
    bind_legacy_tail,
    resolve_backend_entry,
)
from repro.core.equivalence import (
    EquivalenceCriterion,
    ExecutionTreeEquivalence,
)
from repro.core.mnsa import MnsaConfig, resolve_config
from repro.errors import StatisticsError
from repro.optimizer.cache import OptimizationRequest
from repro.optimizer.optimizer import OptimizationResult
from repro.sql.query import Query
from repro.stats.statistic import StatKey


def plan_with_stats(
    backend: Backend,
    query: Optional[Query] = None,
    *legacy,
    keys: Optional[Iterable[StatKey]] = None,
) -> OptimizationResult:
    """The paper's ``Plan(Q, X)``: optimize with exactly ``keys`` available.

    All other physically present statistics are hidden via the
    ``Ignore_Statistics_Subset`` mechanism.  Statistics already on the
    drop-list stay hidden regardless (callers doing essential-set analysis
    should not have an active drop-list).

    .. deprecated::
        ``plan_with_stats(optimizer, database, query, keys)`` is a shim;
        pass a :class:`~repro.backends.base.Backend` instead.
    """
    backend, query, extra = resolve_backend_entry(
        backend, query, legacy, "plan_with_stats", optimizer_first=True
    )
    (keys,) = bind_legacy_tail(extra, (keys,))
    if keys is None:
        raise TypeError("plan_with_stats: missing the keys argument")
    available = set(keys)
    for key in available:
        if not backend.has_stats(key):
            raise StatisticsError(
                f"plan_with_stats: statistic {key} is not built"
            )
    hidden = [key for key in backend.stat_keys() if key not in available]
    return backend.optimize(OptimizationRequest(query, ignore=hidden))


def is_equivalent_to_candidates(
    backend: Backend,
    query: Optional[Query] = None,
    *legacy,
    subset: Optional[Sequence[StatKey]] = None,
    candidates: Optional[Sequence[StatKey]] = None,
    criterion: Optional[EquivalenceCriterion] = None,
) -> bool:
    """Is ``subset`` equivalent to the full candidate set for ``query``?

    .. deprecated::
        ``is_equivalent_to_candidates(optimizer, database, query, ...)``
        is a shim; pass a :class:`~repro.backends.base.Backend` instead.
    """
    backend, query, extra = resolve_backend_entry(
        backend,
        query,
        legacy,
        "is_equivalent_to_candidates",
        optimizer_first=True,
    )
    subset, candidates, criterion = bind_legacy_tail(
        extra, (subset, candidates, criterion)
    )
    if subset is None or candidates is None:
        raise TypeError(
            "is_equivalent_to_candidates: missing subset/candidates"
        )
    criterion = criterion or ExecutionTreeEquivalence()
    with_all = plan_with_stats(backend, query, keys=candidates)
    with_subset = plan_with_stats(backend, query, keys=subset)
    return criterion.equivalent(with_subset, with_all)


def is_essential_set(
    backend: Backend,
    query: Optional[Query] = None,
    *legacy,
    subset: Optional[Sequence[StatKey]] = None,
    candidates: Optional[Sequence[StatKey]] = None,
    criterion: Optional[EquivalenceCriterion] = None,
) -> bool:
    """Definition 1: equivalent to C, and minimally so.

    Minimality is checked against all subsets of ``subset`` lacking one
    element, which suffices for the monotone optimizers this library
    models (and mirrors Example 1's conditions (2)-(4)).

    .. deprecated::
        ``is_essential_set(optimizer, database, query, ...)`` is a shim;
        pass a :class:`~repro.backends.base.Backend` instead.
    """
    backend, query, extra = resolve_backend_entry(
        backend, query, legacy, "is_essential_set", optimizer_first=True
    )
    subset, candidates, criterion = bind_legacy_tail(
        extra, (subset, candidates, criterion)
    )
    if subset is None or candidates is None:
        raise TypeError("is_essential_set: missing subset/candidates")
    criterion = criterion or ExecutionTreeEquivalence()
    if not is_equivalent_to_candidates(
        backend,
        query,
        subset=subset,
        candidates=candidates,
        criterion=criterion,
    ):
        return False
    for removed in subset:
        smaller = [key for key in subset if key != removed]
        if is_equivalent_to_candidates(
            backend,
            query,
            subset=smaller,
            candidates=candidates,
            criterion=criterion,
        ):
            return False
    return True


def find_minimal_essential_set(
    backend: Backend,
    query: Optional[Query] = None,
    *legacy,
    candidates: Optional[Sequence[StatKey]] = None,
    criterion: Optional[EquivalenceCriterion] = None,
    max_candidates: int = 12,
    config: Optional[MnsaConfig] = None,
    t_percent: Optional[float] = None,
) -> List[StatKey]:
    """Brute-force smallest essential set (exponential; tests only).

    Enumerates subsets by increasing size and returns the first subset
    equivalent to the full candidate set.  Guarded by ``max_candidates``
    because the search is O(2^|C|).  The criterion defaults to
    execution-tree equivalence; ``config`` uses ``config.criterion()``.

    .. deprecated::
        ``find_minimal_essential_set(optimizer, database, query, ...)``
        is a shim — pass a :class:`~repro.backends.base.Backend`;
        ``t_percent`` is an alias for
        ``MnsaConfig(t_percent=..., equivalence="t_cost").criterion()``;
        pass a criterion or config instead.
    """
    backend, query, extra = resolve_backend_entry(
        backend,
        query,
        legacy,
        "find_minimal_essential_set",
        optimizer_first=True,
    )
    candidates, criterion, max_candidates, config, t_percent = (
        bind_legacy_tail(
            extra, (candidates, criterion, max_candidates, config, t_percent)
        )
    )
    if candidates is None:
        raise TypeError("find_minimal_essential_set: missing candidates")
    candidates = list(candidates)
    if len(candidates) > max_candidates:
        raise StatisticsError(
            f"brute-force search over {len(candidates)} candidates refused "
            f"(max {max_candidates})"
        )
    if criterion is None:
        if t_percent is not None:
            base = config if config is not None else MnsaConfig()
            criterion = resolve_config(
                base, "find_minimal_essential_set", t_percent=t_percent
            ).cost_criterion()
        elif config is not None:
            criterion = config.criterion()
        else:
            criterion = ExecutionTreeEquivalence()
    reference = plan_with_stats(backend, query, keys=candidates)
    for size in range(0, len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            attempt = plan_with_stats(backend, query, keys=combo)
            if criterion.equivalent(attempt, reference):
                return list(combo)
    return candidates
