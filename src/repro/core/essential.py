"""Essential sets of statistics (paper Sec 3.3, Definitions 1 and 2).

An *essential set* for query Q w.r.t. candidate set C is a subset S ⊆ C
such that S is equivalent to C for Q, but no proper subset of S is.

These checkers need every candidate statistic physically built (that is
the whole point of the paper: you can rarely afford this!), so they are
used in tests, in the Shrinking Set algorithm's correctness arguments,
and in small-scale validation experiments — not on the hot path.

``plan_with_stats`` realizes the paper's ``Plan(Q, X)`` notation through
the ``Ignore_Statistics_Subset`` extension: everything but X is hidden.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from repro.core.equivalence import (
    EquivalenceCriterion,
    ExecutionTreeEquivalence,
)
from repro.core.mnsa import MnsaConfig, resolve_config
from repro.errors import StatisticsError
from repro.optimizer.cache import OptimizationRequest
from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.sql.query import Query
from repro.stats.statistic import StatKey


def plan_with_stats(
    optimizer: Optimizer, database, query: Query, keys: Iterable[StatKey]
) -> OptimizationResult:
    """The paper's ``Plan(Q, X)``: optimize with exactly ``keys`` available.

    All other physically present statistics are hidden via the
    ``Ignore_Statistics_Subset`` mechanism.  Statistics already on the
    drop-list stay hidden regardless (callers doing essential-set analysis
    should not have an active drop-list).
    """
    available = set(keys)
    for key in available:
        if not database.stats.has(key):
            raise StatisticsError(
                f"plan_with_stats: statistic {key} is not built"
            )
    hidden = [key for key in database.stats.keys() if key not in available]
    return optimizer.optimize_request(
        OptimizationRequest(query, ignore=hidden)
    )


def is_equivalent_to_candidates(
    optimizer: Optimizer,
    database,
    query: Query,
    subset: Sequence[StatKey],
    candidates: Sequence[StatKey],
    criterion: Optional[EquivalenceCriterion] = None,
) -> bool:
    """Is ``subset`` equivalent to the full candidate set for ``query``?"""
    criterion = criterion or ExecutionTreeEquivalence()
    with_all = plan_with_stats(optimizer, database, query, candidates)
    with_subset = plan_with_stats(optimizer, database, query, subset)
    return criterion.equivalent(with_subset, with_all)


def is_essential_set(
    optimizer: Optimizer,
    database,
    query: Query,
    subset: Sequence[StatKey],
    candidates: Sequence[StatKey],
    criterion: Optional[EquivalenceCriterion] = None,
) -> bool:
    """Definition 1: equivalent to C, and minimally so.

    Minimality is checked against all subsets of ``subset`` lacking one
    element, which suffices for the monotone optimizers this library
    models (and mirrors Example 1's conditions (2)-(4)).
    """
    criterion = criterion or ExecutionTreeEquivalence()
    if not is_equivalent_to_candidates(
        optimizer, database, query, subset, candidates, criterion
    ):
        return False
    for removed in subset:
        smaller = [key for key in subset if key != removed]
        if is_equivalent_to_candidates(
            optimizer, database, query, smaller, candidates, criterion
        ):
            return False
    return True


def find_minimal_essential_set(
    optimizer: Optimizer,
    database,
    query: Query,
    candidates: Sequence[StatKey],
    criterion: Optional[EquivalenceCriterion] = None,
    max_candidates: int = 12,
    config: Optional[MnsaConfig] = None,
    t_percent: Optional[float] = None,
) -> List[StatKey]:
    """Brute-force smallest essential set (exponential; tests only).

    Enumerates subsets by increasing size and returns the first subset
    equivalent to the full candidate set.  Guarded by ``max_candidates``
    because the search is O(2^|C|).  The criterion defaults to
    execution-tree equivalence; ``config`` uses ``config.criterion()``.

    .. deprecated::
        ``t_percent`` is an alias for
        ``MnsaConfig(t_percent=..., equivalence="t_cost").criterion()``;
        pass a criterion or config instead.
    """
    candidates = list(candidates)
    if len(candidates) > max_candidates:
        raise StatisticsError(
            f"brute-force search over {len(candidates)} candidates refused "
            f"(max {max_candidates})"
        )
    if criterion is None:
        if t_percent is not None:
            base = config if config is not None else MnsaConfig()
            criterion = resolve_config(
                base, "find_minimal_essential_set", t_percent=t_percent
            ).cost_criterion()
        elif config is not None:
            criterion = config.criterion()
        else:
            criterion = ExecutionTreeEquivalence()
    reference = plan_with_stats(optimizer, database, query, candidates)
    for size in range(0, len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            attempt = plan_with_stats(optimizer, database, query, combo)
            if criterion.equivalent(attempt, reference):
                return list(combo)
    return candidates
