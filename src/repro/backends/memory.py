"""The in-memory engine behind the :class:`~repro.backends.base.Backend`
protocol.

A thin adapter over the existing :class:`~repro.storage.Database` /
:class:`~repro.optimizer.Optimizer` / :class:`~repro.executor.Executor`
stack.  Every method delegates 1:1, so running an algorithm through
``MemoryBackend(database, optimizer)`` is byte-identical to calling it
against the pair directly — the parity suite and the deprecation shims
both rely on that.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backends.base import Backend
from repro.concurrency import protocol
from repro.executor import Executor
from repro.executor.dml import apply_dml
from repro.optimizer.cache import OptimizationRequest, PlanCache
from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.sql.query import Query
from repro.stats.statistic import StatKey


class DmlExecution:
    """Minimal execution result for DML routed through a backend."""

    def __init__(self, row_count: int) -> None:
        self.row_count = int(row_count)
        self.actual_cost = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DmlExecution(row_count={self.row_count})"


class MemoryBackend(Backend):
    """Adapter over the repo's own in-memory engine.

    Args:
        database: the :class:`~repro.storage.Database` to adapt.
        optimizer: optional existing optimizer; one is created (with
            ``cache`` attached) when omitted.
        executor: optional existing :class:`~repro.executor.Executor`.
        cache: optional plan cache for an auto-created optimizer.

    All state lives in the wrapped objects (which carry their own
    locking); the adapter itself is immutable after construction.
    """

    # repro-lint: protocol-initial=backend-lifecycle:ready adapter wraps an already-loaded Database; no materialization step
    _droplist = protocol(
        "stat-drop-list",
        rule="R012",
        states=("visible", "hidden"),
        initial="visible",
        transitions={
            "create_stats": ("hidden", "visible"),
            "mark_stat_droppable": ("visible", "hidden"),
            "revive_stat": ("hidden", "visible"),
        },
        reads=(
            "is_stat_visible",
            "visible_stat_keys",
            "is_stat_droppable",
            "stat_drop_list",
        ),
        delegate="stats",
    )

    def __init__(
        self,
        database,
        optimizer: Optional[Optimizer] = None,
        *,
        executor: Optional[Executor] = None,
        cache: Optional[PlanCache] = None,
    ) -> None:
        self._db = database
        if optimizer is None:
            optimizer = Optimizer(database, cache=cache)
        self._optimizer = optimizer
        if executor is None:
            executor = Executor(database, optimizer.config)
        self._executor = executor

    # ------------------------------------------------------------------
    # adapted objects (for drivers / services that need the raw stack)
    # ------------------------------------------------------------------

    @property
    def database(self):
        """The wrapped :class:`~repro.storage.Database`."""
        return self._db

    @property
    def optimizer(self) -> Optimizer:
        """The wrapped :class:`~repro.optimizer.Optimizer`."""
        return self._optimizer

    @property
    def executor(self) -> Executor:
        """The wrapped :class:`~repro.executor.Executor`."""
        return self._executor

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return "memory"

    @property
    def schema(self):
        return self._db.schema

    def optimize(self, request: OptimizationRequest) -> OptimizationResult:
        return self._optimizer.optimize_request(request)

    def magic_variables(self, query: Query) -> List:
        return self._optimizer.magic_variables(query)

    @property
    def optimizer_calls(self) -> int:
        return self._optimizer.call_count

    @property
    def optimizer_call_cost(self) -> float:
        return self._optimizer.config.cost.optimizer_call_cost

    def execute(self, statement):
        if isinstance(statement, Query):
            result = self._optimizer.optimize_request(
                OptimizationRequest(statement)
            )
            return self._executor.execute(result.plan, statement)
        # DML: Database.insert/delete/update bump the modification
        # counters and the stats epoch themselves.
        return DmlExecution(apply_dml(self._db, statement))

    def create_stats(self, key: StatKey) -> None:
        self._db.stats.create(key)

    def drop_stats(self, key: StatKey) -> None:
        self._db.stats.drop(key)

    def has_stats(self, key: StatKey) -> bool:
        return self._db.stats.has(key)

    def is_stat_visible(self, key: StatKey) -> bool:
        return self._db.stats.is_visible(key)

    def stat_keys(self) -> List[StatKey]:
        return self._db.stats.keys()

    def visible_stat_keys(self) -> List[StatKey]:
        return self._db.stats.visible_keys()

    def mark_stat_droppable(self, key: StatKey) -> None:
        self._db.stats.mark_droppable(key)

    def revive_stat(self, key: StatKey) -> None:
        self._db.stats.revive(key)

    def is_stat_droppable(self, key: StatKey) -> bool:
        return self._db.stats.is_droppable(key)

    def stat_drop_list(self) -> List[StatKey]:
        return self._db.stats.drop_list()

    @property
    def creation_cost_total(self) -> float:
        return self._db.stats.creation_cost_total

    def row_count(self, table: str) -> int:
        return self._db.row_count(table)

    def table_names(self) -> List[str]:
        return list(self._db.table_names())

    def note_data_change(self, table: Optional[str] = None) -> None:
        self._db.stats.note_data_change(table)

    def stats_epoch(self) -> int:
        return self._db.stats.epoch
