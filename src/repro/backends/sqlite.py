"""A real engine behind the Backend protocol: stdlib ``sqlite3``.

The adapter loads a :class:`~repro.storage.Database` (the
``make_tpcd_database`` output) into an in-memory SQLite database and maps
the protocol onto real engine mechanisms:

* **statistics** — ``create_stats`` builds an index over the key's
  columns and runs ``ANALYZE`` on it, harvesting the resulting
  ``sqlite_stat1`` row (``"nrow n1 n2 ..."``, where ``nK`` is the average
  number of rows matching the first K index columns) into per-prefix
  densities and distinct counts, plus the leading column's MIN/MAX for
  range interpolation;
* **scope semantics** — the drop-list and per-request ignore-sets are
  implemented by *stat withholding*: a hidden statistic's index is
  dematerialized (``DROP INDEX`` removes its ``sqlite_stat1`` row, so
  SQLite's own planner stops seeing it too) and its harvested numbers are
  withheld from selectivity estimation;
* **plans** — ``optimize`` obtains the join order from ``EXPLAIN QUERY
  PLAN`` over SQLite-dialect SQL, then derives a normalized
  :mod:`repro.optimizer.plans` tree: physical operators (hash / merge /
  nested-loop joins, hash / stream aggregation) are chosen with the
  repo's own :class:`~repro.optimizer.cost_model.CostModel` over
  selectivities estimated from the harvested statistics, so plan choice
  reacts to statistics the same way the memory engine's does;
* **execution** — ``execute`` runs the real SQL and returns true row
  counts (SQLite exposes no work counters, so ``actual_cost`` is 0 and
  cross-backend comparisons use wall clock — see docs/backends.md).

Selectivity estimation *reuses*
:class:`~repro.optimizer.selectivity.SelectivityEstimator` over a narrow
catalog facade, so the missing-variable analysis (step (a) of Sec 4.1)
is structurally identical across backends by construction.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.backends.memory import DmlExecution
from repro.catalog import ColumnRef, ColumnType
from repro.concurrency import guarded_by, protocol
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.errors import ReproError, StatisticsError
from repro.optimizer.cache import OptimizationRequest
from repro.optimizer.cost_model import CostModel
from repro.optimizer.optimizer import OptimizationResult
from repro.optimizer.plans import (
    AggregateNode,
    HavingNode,
    JoinAlgorithm,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.optimizer.variables import GroupByVariable, JoinVariable
from repro.sql.query import DmlStatement, Query
from repro.sql.render import _Renderer, render_statement
from repro.stats.statistic import StatKey, as_stat_key

_SQLITE_TYPE = {
    ColumnType.INT: "INTEGER",
    ColumnType.DATE: "INTEGER",  # stored as day numbers, like the memory engine
    ColumnType.FLOAT: "REAL",
    ColumnType.STRING: "TEXT",
}

_EQP_TABLE = re.compile(r"^(?:SCAN|SEARCH) (\w+)")


class _SqliteRenderer(_Renderer):
    """SQLite dialect: DATE literals are the stored day numbers."""

    def literal(self, ref: ColumnRef, value) -> str:
        ctype = self._schema.column(ref).type
        if ctype == ColumnType.DATE:
            return str(int(value))
        return super().literal(ref, value)


class _Stat1Stat:
    """One harvested statistic: the ``sqlite_stat1`` numbers of an index.

    Attributes:
        key: the statistic's column set.
        index_name: the backing SQLite index.
        nrow: table rows at ANALYZE time.
        avg_rows: ``(n1, n2, ...)`` from the stat string — average rows
            matching the first K index columns.
        lo / hi: MIN / MAX of the leading column (None for empty tables).
        numeric: whether the leading column's domain interpolates.
        build_cost: work units charged for the build.
    """

    def __init__(
        self,
        key: StatKey,
        index_name: str,
        nrow: int,
        avg_rows: Tuple[int, ...],
        lo,
        hi,
        numeric: bool,
        build_cost: float,
    ) -> None:
        self.key = key
        self.index_name = index_name
        self.nrow = max(1, int(nrow))
        self.avg_rows = tuple(max(1, int(n)) for n in avg_rows)
        self.lo = lo
        self.hi = hi
        self.numeric = numeric
        self.build_cost = float(build_cost)
        self.droppable = False
        self.materialized = True

    def density_for_prefix(self, size: int) -> Optional[float]:
        if not 1 <= size <= len(self.avg_rows):
            return None
        return self.avg_rows[size - 1] / self.nrow

    def distinct_for_prefix(self, size: int) -> Optional[float]:
        density = self.density_for_prefix(size)
        if density is None or density <= 0:
            return None
        return 1.0 / density

    def stat1_text(self) -> str:
        return " ".join(str(n) for n in (self.nrow,) + self.avg_rows)


class _Stat1Histogram:
    """Histogram-shaped view over one statistic's ``sqlite_stat1`` numbers.

    Implements exactly the surface
    :class:`~repro.optimizer.selectivity.SelectivityEstimator` consumes:
    equality via ``1/ndv``, ranges via uniform interpolation over the
    leading column's [MIN, MAX], IN-lists as summed equality mass.  A
    cost proxy, not a real histogram — see docs/backends.md for the
    fidelity caveats.
    """

    def __init__(self, stat: _Stat1Stat, range_magic: float) -> None:
        self._stat = stat
        self._range_magic = float(range_magic)

    @property
    def distinct_count(self) -> float:
        return self._stat.distinct_for_prefix(1) or 1.0

    def selectivity_equal(self, value) -> float:
        stat = self._stat
        if (
            stat.numeric
            and stat.lo is not None
            and not stat.lo <= value <= stat.hi
        ):
            return 0.0
        return min(1.0, 1.0 / max(1.0, self.distinct_count))

    def selectivity_not_equal(self, value) -> float:
        return min(1.0, max(0.0, 1.0 - self.selectivity_equal(value)))

    def selectivity_range(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        stat = self._stat
        if not stat.numeric or stat.lo is None or stat.hi <= stat.lo:
            return self._range_magic
        lo = stat.lo if low is None else max(stat.lo, low)
        hi = stat.hi if high is None else min(stat.hi, high)
        width = stat.hi - stat.lo
        fraction = (hi - lo) / width if hi > lo else 0.0
        if hi == lo and low is not None and high is not None:
            # degenerate box: a single in-range point
            fraction = 1.0 / max(1.0, self.distinct_count)
        return min(1.0, max(0.0, fraction))

    def selectivity_in(self, values: Iterable) -> float:
        total = 0.0
        for value in values:
            total += self.selectivity_equal(value)
        return min(1.0, total)

    def join_selectivity(self, other) -> float:
        """Containment assumption over the two sides' distinct counts."""
        other_ndv = float(getattr(other, "distinct_count", 1.0))
        return 1.0 / max(1.0, self.distinct_count, other_ndv)


class _SqliteStringColumn:
    """String-dictionary adapter: codes are the strings themselves.

    The estimator only needs membership (``lookup`` returning ``None``
    for absent literals) and LIKE enumeration; both are answered by the
    engine itself.
    """

    def __init__(self, backend: "SqliteBackend", table: str, column: str):
        self._backend = backend
        self._table = table
        self._column = column

    def lookup(self, value: str) -> Optional[str]:
        present = self._backend._string_exists(
            self._table, self._column, value
        )
        return value if present else None

    def codes_matching_like(self, pattern: str) -> np.ndarray:
        matches = self._backend._strings_matching_like(
            self._table, self._column, pattern
        )
        return np.asarray(matches, dtype=object)


class _SqliteTable:
    """Per-table facade handing out string-column adapters."""

    def __init__(self, backend: "SqliteBackend", table: str) -> None:
        self._backend = backend
        self._table = table

    def string_dictionary(self, column: str) -> _SqliteStringColumn:
        return _SqliteStringColumn(self._backend, self._table, column)


class _SqliteStatsView:
    """The ``db.stats`` facade the SelectivityEstimator reads.

    Answers coverage and lookup questions from the harvested statistics
    registry, restricted to one request's *effective-visible* set, with
    the same structural rules as
    :class:`~repro.stats.manager.StatisticsManager`: histograms resolve
    single-column first then leading-column multi-column statistics;
    densities need the leading prefix to cover the column set exactly.
    """

    def __init__(
        self, backend: "SqliteBackend", visible: Dict[StatKey, _Stat1Stat]
    ) -> None:
        self._backend = backend
        self._visible = visible

    def histogram_for(self, ref: ColumnRef) -> Optional[_Stat1Histogram]:
        single = None
        leading = None
        for key in sorted(self._visible):
            if key.table != ref.table:
                continue
            if key.columns == (ref.column,):
                single = self._visible[key]
                break
            if leading is None and key.columns[0] == ref.column:
                leading = self._visible[key]
        stat = single if single is not None else leading
        if stat is None:
            return None
        return _Stat1Histogram(stat, self._backend._config.magic.range_)

    def has_histogram_for(self, ref: ColumnRef) -> bool:
        return self.histogram_for(ref) is not None

    def density_for_columns(
        self, table: str, columns: Iterable[str]
    ) -> Optional[float]:
        wanted = frozenset(columns)
        size = len(wanted)
        if size == 0:
            return None
        for key in sorted(self._visible):
            if key.table != table or len(key.columns) < size:
                continue
            if frozenset(key.columns[:size]) == wanted:
                return self._visible[key].density_for_prefix(size)
        return None

    def distinct_for_columns(
        self, table: str, columns: Iterable[str]
    ) -> Optional[float]:
        density = self.density_for_columns(table, columns)
        if density is None or density <= 0:
            return None
        return 1.0 / density

    def joint_for_columns(self, table: str, columns) -> None:
        """SQLite has no joint (2-D) histograms."""
        return None


class _SqliteCatalog:
    """The narrow ``database`` surface the SelectivityEstimator consumes:
    ``schema``, ``stats``, ``table(name)``, ``row_count(name)``."""

    def __init__(
        self, backend: "SqliteBackend", stats: _SqliteStatsView
    ) -> None:
        self._backend = backend
        self.schema = backend.schema
        self.stats = stats

    def table(self, name: str) -> _SqliteTable:
        return _SqliteTable(self._backend, name)

    def row_count(self, name: str) -> int:
        return self._backend.row_count(name)


class _SqliteExecution:
    """Result of executing a query on SQLite.

    ``actual_cost`` is 0: SQLite exposes no per-statement work counters
    through :mod:`sqlite3`, so cross-backend effort comparisons use wall
    clock instead (see ``benchmarks/bench_backend_parity.py``).
    """

    def __init__(self, rows: List[tuple]) -> None:
        self._rows = rows
        self.row_count = len(rows)
        self.actual_cost = 0.0

    def rows(self, limit: Optional[int] = None) -> List[tuple]:
        if limit is None:
            return list(self._rows)
        return list(self._rows[:limit])


class SqliteBackend(Backend):
    """Backend over an in-memory SQLite copy of a repro database.

    Args:
        database: the :class:`~repro.storage.Database` whose contents
            (and schema) are loaded into SQLite.  Later DML must go
            through :meth:`execute` to keep the copies in sync.
        config: optimizer knobs for the cost-proxy plan derivation;
            shared with the memory engine so the parity suite compares
            like with like.

    Thread-safety: one connection guarded by one lock; every protocol
    method is a single critical section (check-then-act sequences on the
    statistics registry never span an unlock).
    """

    _stats = guarded_by("_db_lock")
    _calls = guarded_by("_db_lock")
    _droplist = protocol(
        "stat-drop-list",
        rule="R012",
        states=("visible", "hidden"),
        initial="visible",
        transitions={
            "create_stats": ("hidden", "visible"),
            "mark_stat_droppable": ("visible", "hidden"),
            "revive_stat": ("hidden", "visible"),
        },
        carrier="droppable",
        store="_stats",
        guarded=("create_stats", "mark_stat_droppable", "revive_stat"),
        reads=(
            "optimize",
            "magic_variables",
            "is_stat_visible",
            "visible_stat_keys",
            "is_stat_droppable",
            "stat_drop_list",
        ),
        visibility="_effective_visible",
    )
    _creation_cost = guarded_by("_db_lock")
    _epoch = guarded_by("_db_lock")
    _row_counts = guarded_by("_db_lock")
    _string_probes = guarded_by("_db_lock")
    _index_serial = guarded_by("_db_lock")

    def __init__(
        self, database, config: OptimizerConfig = DEFAULT_CONFIG
    ) -> None:
        import sqlite3

        self._schema = database.schema
        self._config = config
        self._cost = CostModel(config)
        self._renderer = _SqliteRenderer(self._schema)
        self._db_lock = threading.RLock()
        # the statement cache would serve stale plans across our
        # index-materialization changes; disable it outright
        self._conn = sqlite3.connect(
            ":memory:", check_same_thread=False, cached_statements=0
        )
        self._conn.execute("PRAGMA case_sensitive_like = ON")
        self._stats: Dict[StatKey, _Stat1Stat] = {}
        self._calls = 0
        self._creation_cost = 0.0
        self._epoch = 0
        self._row_counts: Dict[str, int] = {}
        self._string_probes: Dict[Tuple[str, str, str], bool] = {}
        self._index_serial = 0
        self._load(database)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def _load(self, database) -> None:
        with self._db_lock:
            cursor = self._conn.cursor()
            for table in database.table_names():
                table_schema = self._schema.table(table)
                columns = ", ".join(
                    f"{column.name} {_SQLITE_TYPE[column.type]}"
                    for column in table_schema.columns
                )
                cursor.execute(f"CREATE TABLE {table} ({columns})")
                data = database.table(table)
                names = table_schema.column_names()
                decoded = [
                    self._to_python(data.decoded_column(name))
                    for name in names
                ]
                placeholders = ", ".join("?" for _ in names)
                cursor.executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})",
                    list(zip(*decoded)) if decoded else [],
                )
                self._row_counts[table] = data.row_count
            # seed sqlite_stat1 with the per-table cardinality rows so the
            # planner's join orders are informed even before any statistic
            # is created (a bare ANALYZE emits exactly those rows)
            cursor.execute("ANALYZE")
            self._conn.commit()

    @staticmethod
    def _to_python(values) -> list:
        return [
            value.item() if hasattr(value, "item") else value
            for value in values
        ]

    # ------------------------------------------------------------------
    # Backend protocol: identity
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return "sqlite"

    @property
    def schema(self):
        return self._schema

    # ------------------------------------------------------------------
    # Backend protocol: planning
    # ------------------------------------------------------------------

    def optimize(self, request: OptimizationRequest) -> OptimizationResult:
        with self._db_lock:
            self._calls += 1
            query = request.query
            use_statistics = not request.degraded
            visible = (
                self._effective_visible(request.ignore)
                if use_statistics
                else {}
            )
            self._materialize(visible)
            estimator = SelectivityEstimator(
                _SqliteCatalog(self, _SqliteStatsView(self, visible)),
                self._config,
                request.overrides_dict() if request.overrides else None,
                use_statistics=use_statistics,
            )
            order = self._join_order(query)
            plan = self._build_plan(query, order, estimator)
            return OptimizationResult(plan=plan, cost=plan.cost, rows=plan.rows)

    def magic_variables(self, query: Query) -> List:
        with self._db_lock:
            visible = self._effective_visible(())
            estimator = SelectivityEstimator(
                _SqliteCatalog(self, _SqliteStatsView(self, visible)),
                self._config,
            )
            return estimator.missing_variables(query)

    @property
    def optimizer_calls(self) -> int:
        with self._db_lock:
            return self._calls

    @property
    def optimizer_call_cost(self) -> float:
        return self._config.cost.optimizer_call_cost

    # ------------------------------------------------------------------
    # Backend protocol: execution
    # ------------------------------------------------------------------

    def execute(self, statement):
        with self._db_lock:
            sql = render_statement(
                statement, self._schema, renderer=self._renderer
            )
            if isinstance(statement, Query):
                rows = self._conn.execute(sql).fetchall()
                return _SqliteExecution(rows)
            if not isinstance(statement, DmlStatement):
                raise ReproError(
                    f"cannot execute {type(statement).__name__} on sqlite"
                )
            cursor = self._conn.execute(sql)
            affected = cursor.rowcount
            self._conn.commit()
            self.note_data_change(statement.table)
            return DmlExecution(max(0, affected))

    # ------------------------------------------------------------------
    # Backend protocol: statistics lifecycle
    # ------------------------------------------------------------------

    def create_stats(self, key: StatKey) -> None:
        key = as_stat_key(key)
        with self._db_lock:
            existing = self._stats.get(key)
            if existing is not None:
                if existing.droppable:
                    # creating a drop-listed statistic revives it (Sec 5)
                    existing.droppable = False
                    self._epoch += 1
                    return
                raise StatisticsError(f"statistic {key} already exists")
            self._index_serial += 1
            index_name = f"repro_stat_{self._index_serial}"
            columns = ", ".join(key.columns)
            cursor = self._conn.cursor()
            cursor.execute(
                f"CREATE INDEX {index_name} ON {key.table} ({columns})"
            )
            cursor.execute(f"ANALYZE {index_name}")
            row = cursor.execute(
                "SELECT stat FROM sqlite_stat1 WHERE idx = ?", (index_name,)
            ).fetchone()
            if row is None:  # empty table: ANALYZE records nothing
                nrow, avg_rows = 1, tuple(1 for _ in key.columns)
            else:
                numbers = [int(n) for n in row[0].split()]
                nrow, avg_rows = numbers[0], tuple(numbers[1:])
            leading = key.columns[0]
            lo, hi = cursor.execute(
                f"SELECT MIN({leading}), MAX({leading}) FROM {key.table}"
            ).fetchone()
            ctype = self._schema.column(ColumnRef(key.table, leading)).type
            numeric = ctype != ColumnType.STRING
            build_cost = float(self._cached_row_count(key.table))
            self._stats[key] = _Stat1Stat(
                key, index_name, nrow, avg_rows, lo, hi, numeric, build_cost
            )
            self._creation_cost += build_cost
            self._conn.commit()
            self._epoch += 1

    def drop_stats(self, key: StatKey) -> None:
        key = as_stat_key(key)
        with self._db_lock:
            stat = self._stats.get(key)
            if stat is None:
                raise StatisticsError(f"statistic {key} does not exist")
            del self._stats[key]
            if stat.materialized:
                self._conn.execute(f"DROP INDEX {stat.index_name}")
                self._conn.commit()
            self._epoch += 1

    def has_stats(self, key: StatKey) -> bool:
        key = as_stat_key(key)
        with self._db_lock:
            return key in self._stats

    def is_stat_visible(self, key: StatKey) -> bool:
        key = as_stat_key(key)
        with self._db_lock:
            stat = self._stats.get(key)
            return stat is not None and not stat.droppable

    def stat_keys(self) -> List[StatKey]:
        with self._db_lock:
            return sorted(self._stats)

    def visible_stat_keys(self) -> List[StatKey]:
        with self._db_lock:
            return sorted(
                key for key, stat in self._stats.items() if not stat.droppable
            )

    def mark_stat_droppable(self, key: StatKey) -> None:
        key = as_stat_key(key)
        with self._db_lock:
            stat = self._stats.get(key)
            if stat is None:
                raise StatisticsError(f"statistic {key} does not exist")
            stat.droppable = True
            self._epoch += 1

    def revive_stat(self, key: StatKey) -> None:
        key = as_stat_key(key)
        with self._db_lock:
            stat = self._stats.get(key)
            if stat is None:
                raise StatisticsError(f"statistic {key} does not exist")
            stat.droppable = False
            self._epoch += 1

    def is_stat_droppable(self, key: StatKey) -> bool:
        key = as_stat_key(key)
        with self._db_lock:
            stat = self._stats.get(key)
            return stat is not None and stat.droppable

    def stat_drop_list(self) -> List[StatKey]:
        with self._db_lock:
            return sorted(
                key for key, stat in self._stats.items() if stat.droppable
            )

    @property
    def creation_cost_total(self) -> float:
        with self._db_lock:
            return self._creation_cost

    # ------------------------------------------------------------------
    # Backend protocol: tables / epoch
    # ------------------------------------------------------------------

    def row_count(self, table: str) -> int:
        with self._db_lock:
            return self._cached_row_count(table)

    def table_names(self) -> List[str]:
        return list(self._schema.table_names())

    def note_data_change(self, table: Optional[str] = None) -> None:
        with self._db_lock:
            tables = [table] if table is not None else self.table_names()
            cursor = self._conn.cursor()
            for name in tables:
                self._row_counts.pop(name, None)
                count = self._cached_row_count(name)
                cursor.execute(
                    "UPDATE sqlite_stat1 SET stat = ? "
                    "WHERE tbl = ? AND idx IS NULL",
                    (str(count), name),
                )
            cursor.execute("ANALYZE sqlite_master")
            self._conn.commit()
            self._string_probes = {
                probe: hit
                for probe, hit in self._string_probes.items()
                if probe[0] not in set(tables)
            }
            self._epoch += 1

    def stats_epoch(self) -> int:
        with self._db_lock:
            return self._epoch

    # ------------------------------------------------------------------
    # internals: statistics visibility and materialization
    # ------------------------------------------------------------------

    def _effective_visible(
        self, ignore: Sequence[StatKey]
    ) -> Dict[StatKey, _Stat1Stat]:
        hidden: FrozenSet[StatKey] = frozenset(ignore)
        with self._db_lock:  # reentrant: callers already hold it
            return {
                key: stat
                for key, stat in self._stats.items()
                if not stat.droppable and key not in hidden
            }

    def _materialize(self, visible: Dict[StatKey, _Stat1Stat]) -> None:
        """Align index materialization with the effective-visible set.

        Withheld statistics lose their index (SQLite then ignores the
        ``sqlite_stat1`` row too); re-shown statistics get the index back
        and the harvested stat row re-inserted, then ``ANALYZE
        sqlite_master`` reloads the planner's view.
        """
        with self._db_lock:  # reentrant: optimize() already holds it
            changed = False
            cursor = self._conn.cursor()
            for key, stat in self._stats.items():
                want = key in visible
                if want == stat.materialized:
                    continue
                if want:
                    columns = ", ".join(key.columns)
                    cursor.execute(
                        f"CREATE INDEX {stat.index_name} "
                        f"ON {key.table} ({columns})"
                    )
                    cursor.execute(
                        "INSERT INTO sqlite_stat1(tbl, idx, stat) "
                        "VALUES (?, ?, ?)",
                        (key.table, stat.index_name, stat.stat1_text()),
                    )
                else:
                    cursor.execute(f"DROP INDEX {stat.index_name}")
                stat.materialized = want
                changed = True
            if changed:
                cursor.execute("ANALYZE sqlite_master")
                self._conn.commit()

    def _cached_row_count(self, table: str) -> int:
        with self._db_lock:  # reentrant: planning paths already hold it
            count = self._row_counts.get(table)
            if count is None:
                count = self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0]
                self._row_counts[table] = count
            return count

    # ------------------------------------------------------------------
    # internals: estimator probes against the live engine
    # ------------------------------------------------------------------

    def _string_exists(self, table: str, column: str, value: str) -> bool:
        with self._db_lock:
            probe = (table, column, value)
            hit = self._string_probes.get(probe)
            if hit is None:
                hit = bool(
                    self._conn.execute(
                        f"SELECT EXISTS(SELECT 1 FROM {table} "
                        f"WHERE {column} = ?)",
                        (value,),
                    ).fetchone()[0]
                )
                self._string_probes[probe] = hit
            return hit

    def _strings_matching_like(
        self, table: str, column: str, pattern: str
    ) -> List[str]:
        with self._db_lock:
            rows = self._conn.execute(
                f"SELECT DISTINCT {column} FROM {table} "
                f"WHERE {column} LIKE ?",
                (pattern,),
            ).fetchall()
            return sorted(row[0] for row in rows)

    # ------------------------------------------------------------------
    # internals: EXPLAIN QUERY PLAN -> normalized plan tree
    # ------------------------------------------------------------------

    def _join_order(self, query: Query) -> List[str]:
        """Join order from ``EXPLAIN QUERY PLAN`` (appearance order)."""
        sql = render_statement(query, self._schema, renderer=self._renderer)
        rows = self._conn.execute("EXPLAIN QUERY PLAN " + sql).fetchall()
        wanted = set(query.tables)
        order: List[str] = []
        for row in rows:
            match = _EQP_TABLE.match(row[3])
            if match and match.group(1) in wanted:
                if match.group(1) not in order:
                    order.append(match.group(1))
        # defensive: EQP variants that elide a table keep query order
        for table in query.tables:
            if table not in order:
                order.append(table)
        return order

    def _build_plan(
        self,
        query: Query,
        order: List[str],
        estimator: SelectivityEstimator,
    ) -> PlanNode:
        plan = self._scan_node(order[0], query, estimator)
        joined = [order[0]]
        for table in order[1:]:
            right = self._scan_node(table, query, estimator)
            joins = query.joins_between(joined, (table,))
            plan = self._best_join(plan, right, joins, estimator)
            joined.append(table)
        plan = self._add_aggregation(query, estimator, plan)
        plan = self._add_order_by(query, plan)
        return plan

    def _scan_node(
        self, table: str, query: Query, estimator: SelectivityEstimator
    ) -> ScanNode:
        predicates = query.predicates_of(table)
        rows = self._cached_row_count(table)
        filter_sel = estimator.table_filter_selectivity(table, predicates)
        cost = self._cost.table_scan(
            rows,
            self._schema.table(table).row_width_bytes,
            len(predicates),
        )
        return ScanNode(table, predicates, rows * filter_sel, cost)

    @staticmethod
    def _better(a: PlanNode, b: PlanNode) -> bool:
        """Deterministic plan comparison: cost, then signature — the same
        tie-break as :meth:`repro.optimizer.optimizer.Optimizer._better`."""
        if a.cost != b.cost:
            return a.cost < b.cost
        return str(a.signature()) < str(b.signature())

    def _join_selectivity(
        self, joins, estimator: SelectivityEstimator
    ) -> float:
        if not joins:
            return 1.0
        groups: Dict[tuple, list] = {}
        for join in joins:
            pair = tuple(sorted(join.tables()))
            groups.setdefault(pair, []).append(join)
        selectivity = 1.0
        for _, preds in sorted(groups.items()):
            variable = JoinVariable(tuple(preds))
            selectivity *= estimator.join_group_selectivity(variable)
        return selectivity

    def _best_join(
        self,
        left: PlanNode,
        right: PlanNode,
        joins,
        estimator: SelectivityEstimator,
    ) -> PlanNode:
        """Cheapest physical join for the EQP-given order.

        Same candidate set and tie-break as the memory optimizer, minus
        index nested loops: statistics-backing indexes are not access
        paths here (the memory engine's indexes come only from explicit
        tuning), so plan shape reacts to *statistics*, not to their
        storage artifacts.
        """
        joins = tuple(joins)
        selectivity = self._join_selectivity(joins, estimator)
        out_rows = max(0.0, left.rows * right.rows * selectivity)
        children_cost = left.cost + right.cost
        candidates: List[PlanNode] = []
        if self._config.enable_hash_join and joins:
            build_rows = min(left.rows, right.rows)
            probe_rows = max(left.rows, right.rows)
            build_side = "right" if right.rows <= left.rows else "left"
            candidates.append(
                JoinNode(
                    JoinAlgorithm.HASH,
                    left,
                    right,
                    joins,
                    out_rows,
                    children_cost
                    + self._cost.hash_join(build_rows, probe_rows, out_rows),
                    build_side=build_side,
                )
            )
        if self._config.enable_merge_join and joins:
            candidates.append(
                JoinNode(
                    JoinAlgorithm.MERGE,
                    left,
                    right,
                    joins,
                    out_rows,
                    children_cost
                    + self._cost.merge_join(left.rows, right.rows, out_rows),
                )
            )
        candidates.append(
            JoinNode(
                JoinAlgorithm.NESTED_LOOP_SCAN,
                left,
                right,
                joins,
                out_rows,
                left.cost
                + self._cost.nested_loop_scan(
                    max(1.0, left.rows), right.cost
                ),
            )
        )
        best = candidates[0]
        for candidate in candidates[1:]:
            if self._better(candidate, best):
                best = candidate
        return best

    def _add_aggregation(
        self, query: Query, estimator: SelectivityEstimator, plan: PlanNode
    ) -> PlanNode:
        if not query.has_aggregation:
            return plan
        aggregates = query.all_aggregates()
        if not query.group_by:
            groups = 1.0
            cost = plan.cost + self._cost.hash_aggregate(plan.rows, groups)
            return AggregateNode(plan, (), aggregates, groups, cost)
        groups = 1.0
        for table in query.tables:
            cols = query.group_by_columns_of(table)
            if not cols:
                continue
            variable = GroupByVariable(
                table, tuple(ref.column for ref in cols)
            )
            fraction = estimator.group_by_fraction(variable)
            groups *= max(
                1.0, fraction * self._cached_row_count(table)
            )
        groups = min(groups, max(1.0, plan.rows))
        hash_plan = AggregateNode(
            plan,
            query.group_by,
            aggregates,
            groups,
            plan.cost + self._cost.hash_aggregate(plan.rows, groups),
            method="hash",
        )
        hash_full = self._add_order_by(
            query, self._add_having(query, hash_plan)
        )
        stream_plan = AggregateNode(
            plan,
            query.group_by,
            aggregates,
            groups,
            plan.cost + self._cost.stream_aggregate(plan.rows, groups),
            method="stream",
        )
        stream_full = self._add_order_by(
            query, self._add_having(query, stream_plan)
        )
        best = (
            stream_full
            if self._better(stream_full, hash_full)
            else hash_full
        )
        best._order_by_applied = True
        return best

    def _add_having(self, query: Query, plan: PlanNode) -> PlanNode:
        if not query.having:
            return plan
        magic = self._config.magic
        selectivity = 1.0
        for condition in query.having:
            if condition.op == "=":
                selectivity *= magic.equality
            elif condition.op == "<>":
                selectivity *= magic.inequality
            else:
                selectivity *= magic.range_
        rows = plan.rows * selectivity
        cost = plan.cost + plan.rows * (
            len(query.having) * self._config.cost.cpu_compare_cost
        )
        return HavingNode(plan, query.having, rows, cost)

    def _order_by_satisfied(self, query: Query, plan: PlanNode) -> bool:
        if isinstance(plan, HavingNode):
            return self._order_by_satisfied(query, plan.child)
        if isinstance(plan, AggregateNode) and plan.method == "stream":
            prefix = plan.group_by[: len(query.order_by)]
            return tuple(query.order_by) == prefix
        return False

    def _add_order_by(self, query: Query, plan: PlanNode) -> PlanNode:
        if getattr(plan, "_order_by_applied", False):
            return plan
        if not query.order_by or plan.rows <= 1.0:
            return plan
        if self._order_by_satisfied(query, plan):
            return plan
        cost = plan.cost + self._cost.sort(plan.rows)
        return SortNode(plan, query.order_by, cost)

    # ------------------------------------------------------------------

    def checksum(self) -> str:
        """Content digest over the SQLite copy, comparable with
        :func:`repro.datagen.checksum.database_checksum` on the source
        database (load parity)."""
        from repro.datagen.checksum import rows_digest

        with self._db_lock:
            def iter_tables():
                for table in sorted(self.table_names()):
                    rows = self._conn.execute(
                        f"SELECT * FROM {table}"
                    ).fetchall()
                    yield table, rows

            return rows_digest(iter_tables())

    def close(self) -> None:
        """Release the SQLite connection (idempotent)."""
        with self._db_lock:
            self._conn.close()
