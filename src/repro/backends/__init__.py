"""Engine adapters: the ``Backend`` protocol and its implementations.

See docs/backends.md for the contract and how to add a backend.
"""

from repro.backends.base import (
    BACKEND_NAMES,
    Backend,
    backend_from_name,
)
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "MemoryBackend",
    "SqliteBackend",
    "backend_from_name",
]
