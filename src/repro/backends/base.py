"""The ``Backend`` protocol: the only engine surface the algorithms use.

Every algorithm in :mod:`repro.core` — MNSA (Sec 4), MNSA/D (Sec 5.1),
the Shrinking Set (Sec 5.2), and the essential-set checkers (Sec 3.3) —
consumes a database engine through a deliberately narrow interface:

* ``optimize(request)`` returning a plan tree and its estimated cost,
  honouring the Sec 7.2 server extensions carried by the request —
  selectivity pins (``overrides``) and ``Ignore_Statistics_Subset``
  (``ignore``);
* ``magic_variables(query)`` — step (a) of the Sec 4.1 sensitivity test;
* statistics lifecycle with the paper's scope semantics: create / drop,
  the Sec 5 drop-list (hidden but not deleted), and visibility;
* table cardinalities and a DML / epoch notification hook.

:class:`Backend` names that surface so the algorithms can run unchanged
against any engine that implements it.  Two implementations ship:
:class:`~repro.backends.memory.MemoryBackend` (the existing in-memory
engine, byte-identical to calling it directly) and
:class:`~repro.backends.sqlite.SqliteBackend` (stdlib ``sqlite3`` with
``ANALYZE`` / ``sqlite_stat1``-backed statistics).  See docs/backends.md
for the contract details and how to add a backend.
"""

from __future__ import annotations

import abc
import warnings
from typing import Iterable, List, Optional, Sequence

from repro.concurrency import protocol
from repro.errors import ReproDeprecationWarning
from repro.optimizer.cache import OptimizationRequest
from repro.optimizer.optimizer import OptimizationResult
from repro.sql.query import Query
from repro.stats.statistic import StatKey

#: Backend names :func:`backend_from_name` (and the CLI) accept.
BACKEND_NAMES = ("memory", "sqlite")


class Backend(abc.ABC):
    """Engine adapter contract for the statistics-management algorithms.

    Implementations adapt one engine (in-memory, SQLite, ...) to the
    protocol above.  All methods must be usable from a single thread;
    implementations that share mutable state across threads declare
    their locking with ``guarded_by`` like any other concurrent class.

    The lifecycle declaration below is machine-checked (R015): a
    backend must not plan or execute before its engine state is
    loaded, every ``__init__`` path must end loaded (adapters that are
    live at construction opt out per class with ``# repro-lint:
    protocol-initial=backend-lifecycle:ready <reason>``), and every
    concrete implementor must provide the full ``requires=`` surface.
    """

    _lifecycle = protocol(
        "backend-lifecycle",
        rule="R015",
        states=("loading", "ready"),
        initial="loading",
        transitions={"_load": ("loading", "ready")},
        allowed={
            "loading": ("_load",),
            "ready": (
                "optimize",
                "optimize_query",
                "magic_variables",
                "execute",
                "checksum",
                "create_stats",
                "drop_stats",
                "note_data_change",
            ),
        },
        final="ready",
        requires=(
            "name",
            "schema",
            "optimize",
            "execute",
            "create_stats",
            "drop_stats",
            "has_stats",
            "is_stat_visible",
            "stat_keys",
            "visible_stat_keys",
            "mark_stat_droppable",
            "revive_stat",
            "is_stat_droppable",
            "stat_drop_list",
            "row_count",
            "table_names",
            "note_data_change",
            "stats_epoch",
        ),
    )

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short engine name (``"memory"``, ``"sqlite"``)."""

    @property
    @abc.abstractmethod
    def schema(self):
        """The :class:`~repro.catalog.Schema` of the adapted database."""

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def optimize(self, request: OptimizationRequest) -> OptimizationResult:
        """Plan a canonical request; honours overrides / ignore / degraded."""

    def optimize_query(self, query: Query) -> OptimizationResult:
        """Shorthand for the default request (no pins, nothing ignored)."""
        return self.optimize(OptimizationRequest(query))

    @abc.abstractmethod
    def magic_variables(self, query: Query) -> List:
        """Selectivity variables of ``query`` forced onto magic numbers."""

    @property
    @abc.abstractmethod
    def optimizer_calls(self) -> int:
        """Optimizer invocations so far (the paper's overhead metric)."""

    @property
    @abc.abstractmethod
    def optimizer_call_cost(self) -> float:
        """Work units one optimizer call is charged at (Sec 4.3)."""

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def execute(self, statement):
        """Execute a bound :class:`Query` or DML statement.

        Returns an object exposing at least ``row_count`` (rows produced
        by a query / affected by DML) and ``actual_cost`` (engine work
        units; proxies allowed — see docs/backends.md).
        """

    # ------------------------------------------------------------------
    # statistics lifecycle (create / drop / drop-list / visibility)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def create_stats(self, key: StatKey) -> None:
        """Build a statistic; creating a drop-listed one revives it."""

    @abc.abstractmethod
    def drop_stats(self, key: StatKey) -> None:
        """Physically remove a statistic."""

    @abc.abstractmethod
    def has_stats(self, key: StatKey) -> bool:
        """Physically present (drop-listed statistics count)."""

    @abc.abstractmethod
    def is_stat_visible(self, key: StatKey) -> bool:
        """Present and not hidden by the drop-list."""

    @abc.abstractmethod
    def stat_keys(self) -> List[StatKey]:
        """All physically present statistics (including drop-listed)."""

    @abc.abstractmethod
    def visible_stat_keys(self) -> List[StatKey]:
        """Statistics the optimizer can currently see."""

    @abc.abstractmethod
    def mark_stat_droppable(self, key: StatKey) -> None:
        """Put a statistic on the Sec 5 drop-list (hidden, not deleted)."""

    @abc.abstractmethod
    def revive_stat(self, key: StatKey) -> None:
        """Take a statistic off the drop-list."""

    @abc.abstractmethod
    def is_stat_droppable(self, key: StatKey) -> bool:
        """Currently on the drop-list?"""

    @abc.abstractmethod
    def stat_drop_list(self) -> List[StatKey]:
        """The drop-list, sorted."""

    @property
    @abc.abstractmethod
    def creation_cost_total(self) -> float:
        """Cumulative work units spent building statistics."""

    # ------------------------------------------------------------------
    # tables, DML notification, epoch
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def row_count(self, table: str) -> int:
        """Current cardinality of ``table``."""

    @abc.abstractmethod
    def table_names(self) -> List[str]:
        """Tables of the adapted database."""

    @abc.abstractmethod
    def note_data_change(self, table: Optional[str] = None) -> None:
        """DML hook: table contents changed under existing statistics."""

    @abc.abstractmethod
    def stats_epoch(self) -> int:
        """Monotone counter of statistics-affecting change."""


def backend_from_name(
    name: str,
    database,
    *,
    optimizer=None,
    cache=None,
) -> Backend:
    """Construct a backend over ``database`` by engine name.

    Args:
        name: one of :data:`BACKEND_NAMES`.
        database: the :class:`~repro.storage.Database` to adapt.
        optimizer: optional existing optimizer (memory backend only).
        cache: optional :class:`~repro.optimizer.cache.PlanCache` for an
            auto-created memory optimizer.

    Raises:
        ValueError: for unknown backend names (the CLI maps this to
            exit code 2).
    """
    if name == "memory":
        from repro.backends.memory import MemoryBackend

        return MemoryBackend(database, optimizer=optimizer, cache=cache)
    if name == "sqlite":
        from repro.backends.sqlite import SqliteBackend

        return SqliteBackend(database)
    raise ValueError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )


def _legacy_backend(first, second, caller: str, optimizer_first: bool):
    # repro-lint: deprecation-shim=(database, optimizer
    """Adapt a legacy ``(database, optimizer, ...)`` call to a backend.

    Shared warn site for every ``repro.core`` entry point that kept its
    pre-Backend argument order as a deprecation shim (``mnsa_for_query``
    and friends take ``(database, optimizer, ...)``; the essential-set
    checkers take ``(optimizer, database, ...)``).
    """
    from repro.backends.memory import MemoryBackend

    if optimizer_first:
        optimizer, database = first, second
        old = f"{caller}(optimizer, database, ...)"
    else:
        database, optimizer = first, second
        old = f"{caller}(database, optimizer, ...)"
    warnings.warn(
        f"{old} is deprecated; pass a Backend instead — e.g. "
        f"{caller}(MemoryBackend(database, optimizer), ...)",
        ReproDeprecationWarning,
        stacklevel=4,
    )
    return MemoryBackend(database, optimizer=optimizer)


def resolve_backend_entry(
    first,
    second,
    legacy: Sequence,
    caller: str,
    optimizer_first: bool = False,
):
    """Normalize a backend entry point's arguments to the new layout.

    New spelling: ``caller(backend, primary, *rest)``.  Legacy spelling:
    ``caller(database, optimizer, primary, *rest)`` (or optimizer-first
    for the essential-set checkers).  Returns ``(backend, primary,
    rest)`` either way; the legacy path warns through
    :func:`_legacy_backend`.
    """
    if isinstance(first, Backend):
        return first, second, tuple(legacy)
    backend = _legacy_backend(first, second, caller, optimizer_first)
    if not legacy:
        raise TypeError(
            f"{caller}: legacy (database, optimizer, ...) call is missing "
            "its positional query/workload argument"
        )
    return backend, legacy[0], tuple(legacy[1:])


def bind_legacy_tail(extra: Iterable, values: Sequence) -> list:
    """Overlay trailing positional arguments over keyword defaults.

    ``extra`` holds positionals past the primary argument (legacy calls
    passed ``candidates`` / ``config`` / ... positionally); ``values``
    holds the keyword-supplied defaults in declaration order.
    """
    merged = list(values)
    for index, value in enumerate(extra):
        if index >= len(merged):
            raise TypeError(
                f"too many positional arguments ({len(tuple(extra))} past "
                "the query/workload argument)"
            )
        merged[index] = value
    return merged
