"""The ``Database`` facade: schema + stored data + statistics + indexes.

A :class:`Database` is what every higher layer (optimizer, executor, MNSA,
benchmark harness) operates on.  It wires together:

* the :class:`~repro.catalog.Schema` (table definitions, foreign keys),
* one :class:`~repro.storage.table_data.TableData` per table,
* a :class:`~repro.stats.manager.StatisticsManager` (created lazily to keep
  the import graph acyclic),
* an :class:`~repro.index.manager.IndexManager`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.catalog import Schema, TableSchema
from repro.errors import CatalogError
from repro.storage.table_data import TableData


class Database:
    """A self-contained in-memory database instance.

    Args:
        schema: the database schema.  Tables may also be added later via
            :meth:`create_table`.
        name: cosmetic identifier used in reports and error messages.
    """

    def __init__(self, schema: Schema = None, name: str = "db") -> None:
        self.name = name
        self.schema = schema if schema is not None else Schema()
        self._data: Dict[str, TableData] = {
            t.name: TableData(t) for t in self.schema.tables()
        }
        self._stats_manager = None
        self._index_manager = None

    # ------------------------------------------------------------------
    # DDL / data access
    # ------------------------------------------------------------------

    def create_table(self, table: TableSchema) -> TableData:
        """Add a table to the schema and allocate empty storage for it."""
        self.schema.add_table(table)
        data = TableData(table)
        self._data[table.name] = data
        return data

    def table(self, name: str) -> TableData:
        """The stored data of table ``name``.

        Raises:
            CatalogError: if the table does not exist.
        """
        try:
            return self._data[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def table_names(self) -> list:
        return list(self._data)

    def row_count(self, table_name: str) -> int:
        return self.table(table_name).row_count

    def load_table(self, table_name: str, columns: Mapping[str, Iterable]):
        """Bulk-load column data into an existing table."""
        self.table(table_name).load_columns(columns)

    # ------------------------------------------------------------------
    # attached managers (lazy to keep imports acyclic)
    # ------------------------------------------------------------------

    @property
    def stats(self):
        """The database's :class:`~repro.stats.manager.StatisticsManager`."""
        if self._stats_manager is None:
            from repro.stats.manager import StatisticsManager

            self._stats_manager = StatisticsManager(self)
        return self._stats_manager

    @property
    def indexes(self):
        """The database's :class:`~repro.index.manager.IndexManager`."""
        if self._index_manager is None:
            from repro.index.manager import IndexManager

            self._index_manager = IndexManager(self)
        return self._index_manager

    # ------------------------------------------------------------------
    # DML convenience wrappers (keep indexes in sync)
    # ------------------------------------------------------------------

    def insert(self, table_name: str, rows: Iterable[Mapping]) -> int:
        """Insert rows and invalidate indexes on the table."""
        count = self.table(table_name).insert_rows(rows)
        if count and self._index_manager is not None:
            self._index_manager.invalidate(table_name)
        if count and self._stats_manager is not None:
            self._stats_manager.note_data_change(table_name)
        return count

    def delete(self, table_name: str, mask) -> int:
        """Delete rows selected by a boolean mask."""
        count = self.table(table_name).delete_rows(mask)
        if count and self._index_manager is not None:
            self._index_manager.invalidate(table_name)
        if count and self._stats_manager is not None:
            self._stats_manager.note_data_change(table_name)
        return count

    def update(self, table_name: str, mask, assignments: Mapping) -> int:
        """Update rows selected by a boolean mask."""
        count = self.table(table_name).update_rows(mask, assignments)
        if count and self._index_manager is not None:
            self._index_manager.invalidate(table_name)
        if count and self._stats_manager is not None:
            self._stats_manager.note_data_change(table_name)
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {name: data.row_count for name, data in self._data.items()}
        return f"Database({self.name!r}, rows={sizes})"
