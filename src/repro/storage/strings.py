"""Dictionary encoding for STRING columns.

Every distinct string in a column maps to an integer code.  Codes are
assigned in first-seen order; the storage layer therefore supports
equality, IN, and LIKE predicates on strings (all of which reduce to code
sets) but not order comparisons, which the SQL binder rejects for STRING
columns.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional

import numpy as np


class StringDictionary:
    """Bidirectional mapping between strings and integer codes."""

    def __init__(self, values: Iterable[str] = ()) -> None:
        self._code_of = {}
        self._value_of: List[str] = []
        for value in values:
            self.encode(value)

    def __len__(self) -> int:
        return len(self._value_of)

    def __contains__(self, value: str) -> bool:
        return value in self._code_of

    def encode(self, value: str) -> int:
        """Return the code for ``value``, assigning a new one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._value_of)
            self._code_of[value] = code
            self._value_of.append(value)
        return code

    def encode_many(self, values: Iterable[str]) -> np.ndarray:
        """Encode an iterable of strings into an int64 array."""
        return np.fromiter(
            (self.encode(v) for v in values), dtype=np.int64, count=-1
        )

    def lookup(self, value: str) -> Optional[int]:
        """Code for ``value`` or ``None`` if the string never occurred."""
        return self._code_of.get(value)

    def decode(self, code: int) -> str:
        """String for ``code``.

        Raises:
            KeyError: if the code was never assigned.
        """
        if 0 <= code < len(self._value_of):
            return self._value_of[code]
        raise KeyError(f"unknown string code {code}")

    def decode_many(self, codes: Iterable[int]) -> list:
        return [self.decode(int(c)) for c in codes]

    def codes_matching_like(self, pattern: str) -> np.ndarray:
        """Codes of dictionary entries matching a SQL LIKE pattern.

        ``%`` matches any sequence, ``_`` any single character; everything
        else is literal.
        """
        regex = _like_to_regex(pattern)
        matching = [
            code
            for code, value in enumerate(self._value_of)
            if regex.fullmatch(value)
        ]
        return np.asarray(matching, dtype=np.int64)

    def values(self) -> list:
        """All dictionary strings in code order."""
        return list(self._value_of)


def _like_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern into a compiled regex."""
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), flags=re.DOTALL)
