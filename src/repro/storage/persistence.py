"""Saving and loading databases to/from a directory on disk.

Format (one directory per database):

* ``catalog.json`` — schema: tables, columns, types, primary keys,
  foreign keys, plus per-STRING-column dictionaries and the database
  name;
* ``<table>.npz`` — one compressed numpy archive per table holding the
  raw (encoded) column arrays.

Statistics and indexes are *not* persisted — they are derived state and
the whole point of this library is deciding when to (re)build them.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from repro.catalog import Column, ColumnType, ForeignKey, Schema, TableSchema
from repro.errors import StorageError
from repro.storage.database import Database
from repro.storage.strings import StringDictionary

_CATALOG_FILE = "catalog.json"
_FORMAT_VERSION = 1


def save_database(database: Database, directory: str) -> None:
    """Write ``database`` to ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    catalog = {
        "format_version": _FORMAT_VERSION,
        "name": database.name,
        "tables": [],
        "foreign_keys": [
            {
                "child_table": fk.child_table,
                "child_columns": list(fk.child_columns),
                "parent_table": fk.parent_table,
                "parent_columns": list(fk.parent_columns),
            }
            for fk in database.schema.foreign_keys()
        ],
    }
    for table in database.schema.tables():
        data = database.table(table.name)
        entry = {
            "name": table.name,
            "primary_key": list(table.primary_key),
            "columns": [
                {"name": col.name, "type": col.type.value}
                for col in table.columns
            ],
            "dictionaries": {
                col.name: data.string_dictionary(col.name).values()
                for col in table.columns
                if col.type == ColumnType.STRING
            },
        }
        catalog["tables"].append(entry)
        arrays = {
            col.name: data.column_array(col.name) for col in table.columns
        }
        np.savez_compressed(
            os.path.join(directory, f"{table.name}.npz"), **arrays
        )
    with open(os.path.join(directory, _CATALOG_FILE), "w") as handle:
        json.dump(catalog, handle, indent=2)


def load_database(directory: str) -> Database:
    """Load a database previously written by :func:`save_database`."""
    catalog_path = os.path.join(directory, _CATALOG_FILE)
    if not os.path.exists(catalog_path):
        raise StorageError(f"no {_CATALOG_FILE} in {directory!r}")
    with open(catalog_path) as handle:
        catalog = json.load(handle)
    version = catalog.get("format_version")
    if version != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported database format version {version!r}"
        )

    tables = []
    dictionaries: Dict[str, Dict[str, list]] = {}
    for entry in catalog["tables"]:
        columns = [
            Column(c["name"], ColumnType(c["type"]))
            for c in entry["columns"]
        ]
        tables.append(
            TableSchema(
                entry["name"],
                columns,
                primary_key=tuple(entry["primary_key"]) or None,
            )
        )
        dictionaries[entry["name"]] = entry.get("dictionaries", {})

    foreign_keys = [
        ForeignKey(
            fk["child_table"],
            tuple(fk["child_columns"]),
            fk["parent_table"],
            tuple(fk["parent_columns"]),
        )
        for fk in catalog.get("foreign_keys", [])
    ]
    schema = Schema(tables, foreign_keys)
    database = Database(schema, name=catalog.get("name", "db"))

    for table in tables:
        archive_path = os.path.join(directory, f"{table.name}.npz")
        if not os.path.exists(archive_path):
            raise StorageError(f"missing table archive {archive_path!r}")
        with np.load(archive_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        data = database.table(table.name)
        for column_name, values in dictionaries[table.name].items():
            data.attach_dictionary(
                column_name, StringDictionary(values)
            )
        data.load_columns(arrays)
    return database
