"""In-memory, numpy-backed column-store storage engine.

This is the substrate standing in for SQL Server 7.0's storage layer (see
DESIGN.md §2).  It stores each column as a numpy array; STRING columns are
dictionary-encoded so all stored values are numeric.  DML operations keep
the per-table row-modification counters that SQL Server 7.0 uses to trigger
statistics refresh (paper Sec 2 and Sec 6, "Dropping Statistics").

Public API::

    from repro.storage import StringDictionary, TableData, Database
"""

from repro.storage.strings import StringDictionary
from repro.storage.table_data import TableData
from repro.storage.database import Database

__all__ = ["StringDictionary", "TableData", "Database"]
