"""Column-store data for a single table, plus DML with modification counters."""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.catalog import ColumnType, TableSchema
from repro.concurrency import guarded_by
from repro.errors import StorageError
from repro.storage.strings import StringDictionary

_NUMPY_DTYPE = {
    ColumnType.INT: np.int64,
    ColumnType.FLOAT: np.float64,
    ColumnType.STRING: np.int64,  # dictionary codes
    ColumnType.DATE: np.int64,  # day numbers
}


class TableData:
    """The stored rows of one table, one numpy array per column.

    STRING columns hold dictionary codes; their :class:`StringDictionary`
    lives alongside the code array.  DATE columns hold integer day numbers.

    The ``rows_modified_since_stats`` counter mirrors SQL Server 7.0: it
    counts rows inserted, deleted, or updated since the last statistics
    refresh on the table, and statistics-refresh policies compare it to a
    fraction of the table size (paper Sec 2, Sec 6).

    Mutations (DML, bulk loads, counter resets) and multi-column snapshot
    reads (:meth:`sample_rows`) are guarded by a per-table reentrant lock so
    concurrent sessions never observe a half-applied delete/update or lose
    counter increments.  Single-column reads are lock-free: column arrays
    are replaced atomically, never resized in place.
    """

    #: mutations_only — column arrays are replaced atomically, never
    #: resized in place, so unlocked single-column reads are safe
    _columns = guarded_by("mutation_lock", mutations_only=True)
    rows_modified_since_stats = guarded_by("mutation_lock")

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: Dict[str, np.ndarray] = {
            col.name: np.empty(0, dtype=_NUMPY_DTYPE[col.type])
            for col in schema.columns
        }
        self._dicts: Dict[str, StringDictionary] = {
            col.name: StringDictionary()
            for col in schema.columns
            if col.type == ColumnType.STRING
        }
        self.mutation_lock = threading.RLock()
        self.rows_modified_since_stats = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        first = self.schema.columns[0].name
        return int(self._columns[first].shape[0])

    def column_array(self, column_name: str) -> np.ndarray:
        """The raw stored array for ``column_name`` (codes for strings)."""
        try:
            return self._columns[column_name]
        except KeyError:
            raise StorageError(
                f"no column {column_name!r} in table {self.schema.name!r}"
            ) from None

    def string_dictionary(self, column_name: str) -> StringDictionary:
        """The dictionary of a STRING column.

        Raises:
            StorageError: if the column is not of STRING type.
        """
        try:
            return self._dicts[column_name]
        except KeyError:
            raise StorageError(
                f"column {column_name!r} of table {self.schema.name!r} "
                "is not a STRING column"
            ) from None

    def encode_value(self, column_name: str, value):
        """Encode a Python literal into this column's storage domain.

        Strings become dictionary codes (unseen strings get a fresh code so
        that equality predicates on them correctly select nothing); other
        values pass through numerically.
        """
        col = self.schema.column(column_name)
        if col.type == ColumnType.STRING:
            if not isinstance(value, str):
                raise StorageError(
                    f"expected str for {self.schema.name}.{column_name}, "
                    f"got {type(value).__name__}"
                )
            return self._dicts[column_name].encode(value)
        if isinstance(value, str):
            raise StorageError(
                f"expected number for {self.schema.name}.{column_name}, "
                f"got string {value!r}"
            )
        return value

    def decoded_column(self, column_name: str) -> list:
        """Column values as Python objects (strings decoded)."""
        col = self.schema.column(column_name)
        arr = self._columns[column_name]
        if col.type == ColumnType.STRING:
            return self._dicts[column_name].decode_many(arr)
        if col.type == ColumnType.FLOAT:
            return [float(v) for v in arr]
        return [int(v) for v in arr]

    @property
    def size_bytes(self) -> int:
        """Approximate stored size, used by the page-based I/O cost model."""
        return self.row_count * self.schema.row_width_bytes

    # ------------------------------------------------------------------
    # bulk load
    # ------------------------------------------------------------------

    def load_columns(self, columns: Mapping[str, Iterable]) -> None:
        """Replace the table contents with the given column data.

        All columns of the schema must be provided and have equal length.
        STRING columns may be given as string sequences (encoded here) or as
        pre-encoded int arrays together with an existing dictionary via
        :meth:`attach_dictionary`.
        """
        missing = [c.name for c in self.schema.columns if c.name not in columns]
        if missing:
            raise StorageError(
                f"load_columns for {self.schema.name!r} missing {missing}"
            )
        arrays = {}
        length = None
        for col in self.schema.columns:
            data = columns[col.name]
            if col.type == ColumnType.STRING and not isinstance(
                data, np.ndarray
            ):
                arr = self._dicts[col.name].encode_many(data)
            else:
                arr = np.asarray(data, dtype=_NUMPY_DTYPE[col.type])
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise StorageError(
                    f"column {col.name!r} has {arr.shape[0]} values, "
                    f"expected {length}"
                )
            arrays[col.name] = arr
        with self.mutation_lock:
            self._columns = arrays
            self.rows_modified_since_stats = 0

    def attach_dictionary(
        self, column_name: str, dictionary: StringDictionary
    ) -> None:
        """Attach a pre-built dictionary (used with pre-encoded loads)."""
        self.schema.column(column_name)
        self._dicts[column_name] = dictionary

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert_rows(self, rows: Iterable[Mapping]) -> int:
        """Append rows given as ``{column: value}`` mappings.

        Returns the number of rows inserted and bumps the modification
        counter by the same amount.
        """
        rows = list(rows)
        if not rows:
            return 0
        with self.mutation_lock:
            appended = {}
            for col in self.schema.columns:
                values = []
                for row in rows:
                    if col.name not in row:
                        raise StorageError(
                            f"insert into {self.schema.name!r} missing "
                            f"column {col.name!r}"
                        )
                    values.append(self.encode_value(col.name, row[col.name]))
                appended[col.name] = np.asarray(
                    values, dtype=_NUMPY_DTYPE[col.type]
                )
            for name, arr in appended.items():
                self._columns[name] = np.concatenate(
                    [self._columns[name], arr]
                )
            self.rows_modified_since_stats += len(rows)
        return len(rows)

    def delete_rows(self, mask: np.ndarray) -> int:
        """Delete the rows selected by a boolean ``mask``.

        Returns the number of rows deleted.
        """
        mask = np.asarray(mask, dtype=bool)
        with self.mutation_lock:
            if mask.shape[0] != self.row_count:
                raise StorageError(
                    f"delete mask length {mask.shape[0]} != row count "
                    f"{self.row_count}"
                )
            deleted = int(mask.sum())
            if deleted:
                keep = ~mask
                for name in self._columns:
                    self._columns[name] = self._columns[name][keep]
                self.rows_modified_since_stats += deleted
        return deleted

    def update_rows(
        self, mask: np.ndarray, assignments: Mapping[str, object]
    ) -> int:
        """Set ``assignments`` (column -> new literal) on rows in ``mask``.

        Returns the number of rows updated.
        """
        mask = np.asarray(mask, dtype=bool)
        with self.mutation_lock:
            if mask.shape[0] != self.row_count:
                raise StorageError(
                    f"update mask length {mask.shape[0]} != row count "
                    f"{self.row_count}"
                )
            updated = int(mask.sum())
            if updated:
                for name, value in assignments.items():
                    col = self.schema.column(name)
                    encoded = self.encode_value(name, value)
                    self._columns[name][mask] = _NUMPY_DTYPE[col.type](
                        encoded
                    )
                self.rows_modified_since_stats += updated
        return updated

    def reset_modification_counter(self) -> None:
        """Called after statistics on this table are (re)built."""
        with self.mutation_lock:
            self.rows_modified_since_stats = 0

    def sample_rows(
        self, max_rows: int, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, np.ndarray]:
        """A uniform random sample of at most ``max_rows`` rows.

        Returns raw (encoded) column arrays; used by sampling-based
        statistics construction.
        """
        with self.mutation_lock:
            n = self.row_count
            if n <= max_rows:
                return {
                    name: arr.copy() for name, arr in self._columns.items()
                }
            rng = rng or np.random.default_rng(0)
            idx = rng.choice(n, size=max_rows, replace=False)
            idx.sort()
            return {name: arr[idx] for name, arr in self._columns.items()}
