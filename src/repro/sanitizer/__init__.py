"""Eraser-style runtime lockset sanitizer.

The static side of the concurrency model lives in ``repro.concurrency``
(:func:`~repro.concurrency.guarded_by` declarations) and
``repro.analysis`` (rules R001/R002/R010/R011).  This package is the
dynamic side: instrumented lock wrappers and attribute interception that
record, while the test suite runs, which locks each thread actually
holds when it touches a ``guarded_by`` attribute and in which order
locks are actually acquired — then cross-check both against the static
annotations.

* a guarded attribute touched without its declared lock held is an
  ``unguarded-read`` / ``unguarded-write`` violation;
* an observed acquisition order that contradicts the statically derived
  R002 lock graph (or another observed order) is a ``lock-order``
  violation.

Activation: set ``REPRO_SANITIZE=1`` in the environment and run pytest
(the repository's ``tests/conftest.py`` forwards to
:mod:`repro.sanitizer.plugin`; out-of-tree test files can pass
``-p repro.sanitizer.plugin`` explicitly).  Any violation recorded
during a test fails that test at teardown.  See ``docs/analysis.md``.
"""

from repro.sanitizer.runtime import (
    TrackedLock,
    Violation,
    drain,
    enforcing,
    reset,
    sanitize_class,
    set_static_order,
    wrap_lock,
)

__all__ = [
    "TrackedLock",
    "Violation",
    "drain",
    "enforcing",
    "reset",
    "sanitize_class",
    "set_static_order",
    "wrap_lock",
]
