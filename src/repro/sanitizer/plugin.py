"""Pytest integration for the lockset sanitizer.

Two entry points:

* the repository's ``tests/conftest.py`` forwards ``pytest_configure`` /
  ``pytest_runtest_teardown`` here when ``REPRO_SANITIZE=1`` is set, so
  the normal test suites run sanitized without any extra flags;
* out-of-tree test files (the seeded-violation fixtures run in a
  subprocess) load this module directly with ``-p repro.sanitizer.plugin``.

On configure the plugin imports every ``repro`` module, instruments each
class carrying :func:`~repro.concurrency.guarded_by` declarations, and
seeds the lock-order graph with the static edges lint rule R002 derives
— so a runtime acquisition contradicting the static concurrency model
fails the run even if no second thread races it.  After every test the
recorded violations are drained; any violation fails that test.
"""

from __future__ import annotations

import importlib
import os
import pkgutil
from typing import Dict, Set, Tuple

from repro.sanitizer import runtime

ENV_FLAG = "REPRO_SANITIZE"

_configured = False


def enabled_by_env() -> bool:
    return os.environ.get(ENV_FLAG) == "1"


def install() -> int:
    """Import all ``repro`` modules and sanitize every class that
    declares guarded attributes; returns how many classes were
    instrumented."""
    import repro

    count = 0
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.startswith("repro.sanitizer"):
            continue
        try:
            module = importlib.import_module(info.name)
        except Exception:  # optional deps, __main__-style modules
            continue
        for value in list(vars(module).values()):
            if (
                isinstance(value, type)
                and value.__module__ == info.name
                and runtime.sanitize_class(value)
            ):
                count += 1
    return count


def load_static_order() -> Tuple[
    Set[Tuple[str, str]], Dict[Tuple[str, str], str]
]:
    """The R002 lock graph of ``src/repro`` plus the canonical identity
    of every (class, lock attribute) pair, for cross-checking runtime
    acquisition orders against the static model."""
    import repro
    from repro.analysis.framework import build_project
    from repro.analysis.rules.lock_order import _LockGraph

    root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    project = build_project([os.path.join(root, "repro")])
    graph = _LockGraph(project)
    graph.build()
    edges = {
        (edge.held, edge.acquired)
        for edge in graph.edges
        if edge.held != edge.acquired
    }
    canonical: Dict[Tuple[str, str], str] = {}
    for module in project.modules:
        for cls in module.classes.values():
            for attr in cls.lock_attrs:
                canonical[(cls.name, attr)] = project.canonical_lock(
                    cls, attr
                )
    return edges, canonical


def sanitizer_configure(config=None) -> int:
    """Instrument classes, seed the static order graph, enable
    enforcement.  Idempotent across conftest + ``-p`` double loading."""
    global _configured
    if _configured:
        return 0
    _configured = True
    count = install()
    try:
        edges, canonical = load_static_order()
    except Exception:
        edges, canonical = set(), {}
    runtime.set_static_order(edges, canonical)
    runtime.enable(True)
    return count


def sanitizer_teardown(item=None) -> None:
    violations = runtime.drain()
    if violations:
        lines = [
            f"  [{v.kind}] ({v.thread}) {v.message}" for v in violations
        ]
        raise AssertionError(
            "lockset sanitizer recorded %d violation(s):\n%s"
            % (len(violations), "\n".join(lines))
        )


# ----------------------------------------------------------------------
# real pytest hooks (for `-p repro.sanitizer.plugin`)
# ----------------------------------------------------------------------


def pytest_configure(config):
    if enabled_by_env():
        sanitizer_configure(config)


def pytest_runtest_teardown(item, nextitem):
    if enabled_by_env():
        sanitizer_teardown(item)
