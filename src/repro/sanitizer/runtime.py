"""Lockset recording, guarded-attribute enforcement, order checking.

The design follows Eraser (Savage et al.): every instrumented lock
maintains a per-thread *lockset*; every access to a declared
``guarded_by`` attribute is checked against the set actually held.  We
are stricter than Eraser in one way (the guarding lock is declared, not
inferred, so a single wrong-lock access is already a violation) and
looser in another (attributes without a declaration are never checked).

Lock-order recording builds a directed graph ``A -> B`` ("B acquired
while holding A") seeded with the *static* edges derived by lint rule
R002; a runtime acquisition that closes a cycle in the merged graph —
either against another observed order or against the static model — is
reported without blocking, so a single-threaded test can demonstrate an
inversion that would need two racing threads to deadlock for real.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.concurrency import GuardedBy

__all__ = [
    "TrackedLock",
    "Violation",
    "drain",
    "enforcing",
    "reset",
    "sanitize_class",
    "set_static_order",
    "wrap_lock",
]

_LOCK_TYPE = type(threading.Lock())
_RLOCK_TYPE = type(threading.RLock())


@dataclass
class Violation:
    """One recorded sanitizer violation.

    Attributes:
        kind: ``"unguarded-read"``, ``"unguarded-write"`` or
            ``"lock-order"``.
        message: human-readable description with the concrete site.
        thread: name of the thread that triggered it.
    """

    kind: str
    message: str
    thread: str


class _State:
    def __init__(self) -> None:
        self.enabled = False
        self.violations: List[Violation] = []
        #: merged acquisition graph: canonical label -> successors
        self.order: Dict[str, Set[str]] = {}
        #: the static (R002-derived) subset of ``order``
        self.static_order: Dict[str, Set[str]] = {}
        #: canonical identity for runtime locks: (class, attr) -> label
        self.canonical: Dict[Tuple[str, str], str] = {}
        #: objects whose (sanitized) __init__ has completed
        self.constructed: Set[int] = set()


_STATE = _State()
_REGISTRY = threading.Lock()  # guards _STATE's mutable structures
_TLS = threading.local()


def _held() -> List["TrackedLock"]:
    held = getattr(_TLS, "held", None)
    if held is None:
        held = _TLS.held = []
    return held


def _record(kind: str, message: str) -> None:
    violation = Violation(kind, message, threading.current_thread().name)
    with _REGISTRY:
        _STATE.violations.append(violation)


# ----------------------------------------------------------------------
# public control surface
# ----------------------------------------------------------------------


def enable(on: bool = True) -> None:
    """Turn enforcement on (or off) process-wide."""
    _STATE.enabled = on


class enforcing:
    """Context manager scoping enforcement to a block (tests use this to
    sanitize only the accesses they mean to check).  Leftover violations
    are discarded on exit so one test cannot poison the next."""

    def __enter__(self) -> "enforcing":
        self._previous = _STATE.enabled
        _STATE.enabled = True
        return self

    def __exit__(self, *exc) -> bool:
        _STATE.enabled = self._previous
        if not self._previous:
            drain()
        return False


def drain() -> List[Violation]:
    """Return and clear every violation recorded so far."""
    with _REGISTRY:
        violations = _STATE.violations
        _STATE.violations = []
    return violations


def reset() -> None:
    """Forget violations and the *observed* part of the order graph
    (static edges and canonical identities survive)."""
    with _REGISTRY:
        _STATE.violations = []
        _STATE.order = {a: set(bs) for a, bs in _STATE.static_order.items()}


def set_static_order(
    edges: Iterable[Tuple[str, str]],
    canonical: Optional[Dict[Tuple[str, str], str]] = None,
) -> None:
    """Seed the order graph with R002's statically derived edges and the
    project's canonical lock identities, so runtime acquisitions are
    checked against the static concurrency model, not just against each
    other."""
    with _REGISTRY:
        _STATE.static_order = {}
        for held_label, acquired_label in edges:
            if held_label == acquired_label:
                continue
            _STATE.static_order.setdefault(held_label, set()).add(
                acquired_label
            )
        _STATE.order = {a: set(bs) for a, bs in _STATE.static_order.items()}
        if canonical:
            _STATE.canonical.update(canonical)


# ----------------------------------------------------------------------
# lock instrumentation
# ----------------------------------------------------------------------


class TrackedLock:
    """Proxy around a real lock that maintains the thread's lockset and
    records acquisition-order edges.  Recording never blocks and never
    changes the inner lock's semantics."""

    def __init__(self, inner, label: str, kind: str, owner=None) -> None:
        self.inner = inner
        self.label = label
        self.kind = kind  # "Lock" | "RLock" | "Condition" | "injected"
        self.owner = owner  # (class name, attribute) or None

    def canonical_label(self) -> str:
        if self.owner is not None:
            return _STATE.canonical.get(self.owner, self.label)
        return self.label

    def acquire(self, *args, **kwargs):
        if _STATE.enabled:
            _note_acquire(self)
        acquired = self.inner.acquire(*args, **kwargs)
        if acquired is not False:
            _held().append(self)
        return acquired

    def release(self) -> None:
        held = _held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is self:
                del held[i]
                break
        self.inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False

    def __getattr__(self, name):
        # wait / notify / notify_all / locked / _is_owned ... delegate
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrackedLock({self.label!r}, kind={self.kind!r})"


def wrap_lock(lock, label: str, owner=None) -> TrackedLock:
    """Wrap a raw lock; an already-tracked lock keeps its first identity
    (mirrors :meth:`Project.canonical_lock` unifying injected aliases)."""
    if isinstance(lock, TrackedLock):
        return lock
    if isinstance(lock, threading.Condition):
        kind = "Condition"
    elif isinstance(lock, _RLOCK_TYPE):
        kind = "RLock"
    elif isinstance(lock, _LOCK_TYPE):
        kind = "Lock"
    else:
        kind = "injected"
    return TrackedLock(lock, label, kind, owner=owner)


def _note_acquire(lock: TrackedLock) -> None:
    held = _held()
    if lock.kind == "Lock" and any(entry is lock for entry in held):
        _record(
            "lock-order",
            f"non-reentrant lock '{lock.label}' re-acquired while "
            f"already held (self-deadlock)",
        )
        return
    acquired_label = lock.canonical_label()
    for entry in held:
        held_label = entry.canonical_label()
        if held_label != acquired_label:
            _add_edge(held_label, acquired_label)


def _add_edge(held_label: str, acquired_label: str) -> None:
    with _REGISTRY:
        successors = _STATE.order.setdefault(held_label, set())
        if acquired_label in successors:
            return  # already known; any cycle was reported when it closed
        successors.add(acquired_label)
        _STATE.order.setdefault(acquired_label, set())
        closes_cycle = _reaches(_STATE.order, acquired_label, held_label)
    if closes_cycle:
        _record(
            "lock-order",
            f"acquisition order inversion: '{acquired_label}' acquired "
            f"while holding '{held_label}', but the combined static+"
            f"observed order already requires '{held_label}' after "
            f"'{acquired_label}'",
        )


def _reaches(graph: Dict[str, Set[str]], start: str, goal: str) -> bool:
    seen: Set[str] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.get(node, ()))
    return False


# ----------------------------------------------------------------------
# guarded-attribute enforcement
# ----------------------------------------------------------------------

_THIS_FILE = __file__


def _access_from_own_method(obj) -> bool:
    """True when the access happens inside a method of ``obj`` itself.

    The runtime contract deliberately mirrors the static one: lint rule
    R001 checks ``self.<attr>`` accesses lexically inside the declaring
    class body, so the sanitizer enforces exactly those — reads by
    external code (tests asserting on internals, helpers handed the
    object) are outside the declared contract and are not flagged."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    return frame is not None and frame.f_locals.get("self") is obj


def _inside_own_init(obj) -> bool:
    """True when the access happens during ``obj``'s construction (an
    ``__init__`` frame for the same object is on the stack) — objects
    are not shared before construction completes, mirroring R001."""
    frame = sys._getframe(1)
    depth = 0
    while frame is not None and depth < 25:
        if frame.f_code.co_name == "__init__":
            if frame.f_locals.get("self") is obj:
                return True
        frame = frame.f_back
        depth += 1
    return False


def _lock_of(obj, lock_attr: str):
    try:
        return object.__getattribute__(obj, lock_attr)
    except AttributeError:
        return None


def _check_access(obj, cls: type, name: str, spec: GuardedBy, write: bool) -> None:
    if not _STATE.enabled:
        return
    if spec.mutations_only and not write:
        return
    if id(obj) not in _STATE.constructed:
        return
    lock = _lock_of(obj, spec.lock)
    if not isinstance(lock, TrackedLock):
        return  # lock missing or never instrumented: cannot judge
    if any(entry is lock for entry in _held()):
        return
    if not _access_from_own_method(obj):
        return
    if _inside_own_init(obj):
        return
    access = "write to" if write else "read of"
    _record(
        "unguarded-write" if write else "unguarded-read",
        f"unguarded {access} {type(obj).__name__}.{name} "
        f"(declared guarded_by('{spec.lock}')) without holding "
        f"self.{spec.lock}",
    )


def _collect_specs(cls: type) -> Dict[str, GuardedBy]:
    specs: Dict[str, GuardedBy] = {}
    for base in reversed(cls.__mro__):
        for attr, value in vars(base).items():
            if isinstance(value, GuardedBy):
                specs[attr] = value
    return specs


def sanitize_class(cls: type) -> bool:
    """Instrument ``cls`` so its ``guarded_by`` declarations are enforced
    at runtime: wrap the locks its ``__init__`` creates in
    :class:`TrackedLock` and intercept attribute access on declared
    attributes.  Idempotent; returns ``True`` if instrumentation was
    installed."""
    if "_repro_sanitized" in vars(cls):
        return False
    specs = _collect_specs(cls)
    if not specs:
        return False
    lock_attrs = sorted({spec.lock for spec in specs.values()})

    original_init = cls.__init__
    original_getattribute = cls.__getattribute__
    original_setattr = cls.__setattr__
    original_delattr = cls.__delattr__

    def __init__(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        for lock_attr in lock_attrs:
            lock = _lock_of(self, lock_attr)
            if lock is not None and not isinstance(lock, TrackedLock):
                object.__setattr__(
                    self,
                    lock_attr,
                    wrap_lock(
                        lock,
                        f"{type(self).__name__}.{lock_attr}",
                        owner=(cls.__name__, lock_attr),
                    ),
                )
        with _REGISTRY:
            _STATE.constructed.add(id(self))

    def __getattribute__(self, name):
        spec = specs.get(name)
        if spec is not None:
            _check_access(self, cls, name, spec, write=False)
        return original_getattribute(self, name)

    def __setattr__(self, name, value):
        spec = specs.get(name)
        if spec is not None:
            _check_access(self, cls, name, spec, write=True)
        original_setattr(self, name, value)

    def __delattr__(self, name):
        spec = specs.get(name)
        if spec is not None:
            _check_access(self, cls, name, spec, write=True)
        original_delattr(self, name)

    __init__.__wrapped__ = original_init
    cls.__init__ = __init__
    cls.__getattribute__ = __getattribute__
    cls.__setattr__ = __setattr__
    cls.__delattr__ = __delattr__
    cls._repro_sanitized = True
    return True
