"""A sorted-array index over one column.

Functionally a read-optimized B-tree: O(log n) lookups of the row ids
whose key equals a value or falls in a range.  The executor uses it for
index seeks; the optimizer charges random I/O per qualifying row.
"""

from __future__ import annotations

import numpy as np


class SortedIndex:
    """Immutable snapshot index over a key array.

    Args:
        keys: the column's stored values (encoded domain).
        name: cosmetic identifier.
    """

    def __init__(self, keys: np.ndarray, name: str = "") -> None:
        keys = np.asarray(keys)
        self.name = name
        self._order = np.argsort(keys, kind="stable")
        self._sorted = keys[self._order]

    def __len__(self) -> int:
        return int(self._sorted.shape[0])

    def lookup_equal(self, value) -> np.ndarray:
        """Row ids with key == value (ascending row order)."""
        left = np.searchsorted(self._sorted, value, side="left")
        right = np.searchsorted(self._sorted, value, side="right")
        rows = self._order[left:right]
        return np.sort(rows)

    def lookup_range(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row ids with key in the given (possibly half-open) interval."""
        left = 0
        right = self._sorted.shape[0]
        if low is not None:
            side = "left" if low_inclusive else "right"
            left = np.searchsorted(self._sorted, low, side=side)
        if high is not None:
            side = "right" if high_inclusive else "left"
            right = np.searchsorted(self._sorted, high, side=side)
        if right <= left:
            return np.empty(0, dtype=self._order.dtype)
        rows = self._order[left:right]
        return np.sort(rows)

    def lookup_in(self, values) -> np.ndarray:
        """Row ids whose key is any of ``values``."""
        pieces = [self.lookup_equal(v) for v in values]
        if not pieces:
            return np.empty(0, dtype=self._order.dtype)
        return np.unique(np.concatenate(pieces))
