"""The 13-index "tuned TPC-D" configuration of the intro experiment.

The paper's introduction describes "a tuned TPC-D 1GB database ... with 13
indexes".  The exact index list is not given, so we use the natural tuned
set: primary keys of the eight tables (leading column) plus the high-value
foreign keys that the 17 benchmark queries join on.
"""

from __future__ import annotations

from repro.catalog import ColumnRef

TUNED_TPCD_INDEX_COLUMNS = (
    ColumnRef("region", "r_regionkey"),
    ColumnRef("nation", "n_nationkey"),
    ColumnRef("supplier", "s_suppkey"),
    ColumnRef("customer", "c_custkey"),
    ColumnRef("part", "p_partkey"),
    ColumnRef("partsupp", "ps_partkey"),
    ColumnRef("orders", "o_orderkey"),
    ColumnRef("lineitem", "l_orderkey"),
    # high-value foreign keys
    ColumnRef("orders", "o_custkey"),
    ColumnRef("lineitem", "l_partkey"),
    ColumnRef("lineitem", "l_suppkey"),
    ColumnRef("customer", "c_nationkey"),
    ColumnRef("supplier", "s_nationkey"),
)
"""The 13 indexed columns."""


def tuned_tpcd_indexes():
    """The 13 index definitions as ``(name, ColumnRef)`` pairs."""
    return [
        (f"idx_{ref.table}_{ref.column}", ref)
        for ref in TUNED_TPCD_INDEX_COLUMNS
    ]


def apply_tuned_tpcd_indexes(database) -> list:
    """Create the 13 tuned indexes on ``database``; returns definitions."""
    created = []
    for name, ref in tuned_tpcd_indexes():
        created.append(database.indexes.create_index(name, ref))
    return created
