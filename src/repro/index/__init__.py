"""Secondary indexes.

Indexes matter to the reproduction for one reason the paper states in its
introduction: SQL Server automatically keeps statistics on *indexed*
columns, so the intro experiment's baseline is "statistics on indexed
columns only".  We provide sorted-array indexes (the moral equivalent of a
read-only B-tree), an index manager, and the 13-index "tuned TPC-D"
configuration.

Public API::

    from repro.index import SortedIndex, IndexManager, tuned_tpcd_indexes
"""

from repro.index.sorted_index import SortedIndex
from repro.index.manager import IndexDefinition, IndexManager
from repro.index.tuned_tpcd import tuned_tpcd_indexes, apply_tuned_tpcd_indexes

__all__ = [
    "SortedIndex",
    "IndexDefinition",
    "IndexManager",
    "tuned_tpcd_indexes",
    "apply_tuned_tpcd_indexes",
]
