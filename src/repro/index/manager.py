"""Index catalog and lifecycle for one database."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.catalog import ColumnRef
from repro.errors import CatalogError
from repro.index.sorted_index import SortedIndex


@dataclass(frozen=True)
class IndexDefinition:
    """Declared index: a name and the (single) key column.

    Composite index keys are modeled as an index on the leading column —
    enough for the access-path decisions our optimizer makes, and mirrors
    how SQL Server 7.0's histograms attach to the leading index column.
    """

    name: str
    column: ColumnRef

    def __str__(self) -> str:
        return f"{self.name}({self.column})"


class IndexManager:
    """Owns the indexes of one :class:`~repro.storage.Database`.

    Index *structures* are built lazily and invalidated on DML; the
    *definitions* are the catalog the optimizer consults.
    """

    def __init__(self, database) -> None:
        self._db = database
        self._definitions: Dict[str, IndexDefinition] = {}
        self._built: Dict[str, SortedIndex] = {}

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def create_index(self, name: str, column: ColumnRef) -> IndexDefinition:
        """Declare an index on ``column``.

        Raises:
            CatalogError: if the name is taken or the column doesn't exist.
        """
        if name in self._definitions:
            raise CatalogError(f"index {name!r} already exists")
        self._db.schema.column(column)  # validates
        definition = IndexDefinition(name, column)
        self._definitions[name] = definition
        return definition

    def drop_index(self, name: str) -> None:
        if name not in self._definitions:
            raise CatalogError(f"no index named {name!r}")
        del self._definitions[name]
        self._built.pop(name, None)

    def definitions(self) -> List[IndexDefinition]:
        return list(self._definitions.values())

    def index_on(self, column: ColumnRef) -> Optional[IndexDefinition]:
        """The first declared index keyed on ``column``, if any."""
        for definition in self._definitions.values():
            if definition.column == column:
                return definition
        return None

    def indexed_columns(self) -> List[ColumnRef]:
        """All distinct indexed columns (the intro experiment's baseline
        statistics are exactly the statistics on these columns)."""
        seen = []
        for definition in self._definitions.values():
            if definition.column not in seen:
                seen.append(definition.column)
        return seen

    # ------------------------------------------------------------------
    # structures
    # ------------------------------------------------------------------

    def structure(self, name: str) -> SortedIndex:
        """The built index structure, constructing it on first use."""
        if name not in self._definitions:
            raise CatalogError(f"no index named {name!r}")
        if name not in self._built:
            definition = self._definitions[name]
            keys = self._db.table(definition.column.table).column_array(
                definition.column.column
            )
            self._built[name] = SortedIndex(keys, name=name)
        return self._built[name]

    def invalidate(self, table_name: str) -> None:
        """Drop built structures over a table after DML (rebuilt lazily)."""
        stale = [
            name
            for name, definition in self._definitions.items()
            if definition.column.table == table_name
        ]
        for name in stale:
            self._built.pop(name, None)
