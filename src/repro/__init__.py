"""repro — reproduction of *Automating Statistics Management for Query
Optimizers* (Chaudhuri & Narasayya, ICDE 2000).

Quickstart::

    from repro import (
        make_tpcd_database, Optimizer, OptimizationRequest, PlanCache,
        Executor, mnsa_for_query, candidate_statistics, parse_and_bind,
    )

    db = make_tpcd_database(scale=0.005, z=2.0)
    optimizer = Optimizer(db, cache=PlanCache())
    backend = MemoryBackend(db, optimizer)
    query = parse_and_bind("SELECT ... FROM ...", db.schema)
    result = mnsa_for_query(backend, query)   # builds what matters
    plan = optimizer.optimize_request(OptimizationRequest(query))

See README.md for the architecture overview and DESIGN.md for the mapping
from paper sections to modules.
"""

from repro.backends import (
    BACKEND_NAMES,
    Backend,
    MemoryBackend,
    SqliteBackend,
    backend_from_name,
)
from repro.catalog import (
    Column,
    ColumnRef,
    ColumnType,
    ForeignKey,
    Schema,
    TableSchema,
)
from repro.config import (
    CostModelConfig,
    DEFAULT_CONFIG,
    MagicNumbers,
    OptimizerConfig,
    RefreshPolicy,
    ServiceConfig,
)
from repro.core import (
    AgingPolicy,
    AutoDropPolicy,
    CandidateMode,
    CreationPolicy,
    EquivalenceCriterion,
    ExecutionTreeEquivalence,
    MnsaConfig,
    MnsaResult,
    MnsadResult,
    OptimizerCostEquivalence,
    ShrinkingSetResult,
    StatisticsAdvisor,
    TOptimizerCostEquivalence,
    WorkloadDriver,
    candidate_statistics,
    find_minimal_essential_set,
    find_next_stat_to_build,
    is_essential_set,
    mnsa_for_query,
    mnsa_for_workload,
    mnsad_for_query,
    mnsad_for_workload,
    shrinking_set,
    workload_candidate_statistics,
)
from repro.errors import (
    ReproDeprecationWarning,
    ReproError,
    ServiceRejectedError,
)
from repro.datagen import (
    SkewSpec,
    TpcdGenerator,
    make_tpcd_database,
    tpcd_schema,
)
from repro.executor import ExecutionResult, Executor
from repro.feedback import (
    FeedbackKey,
    FeedbackPolicy,
    FeedbackStore,
    OperatorObservation,
    PlanInstrumenter,
    QErrorTracker,
    q_error,
    worst_plan_q_error,
)
from repro.index import apply_tuned_tpcd_indexes
from repro.learned import (
    BucketRegressor,
    CorrectionModel,
    CorrectionStore,
    MultiplicativeCorrection,
    SketchJoinEstimator,
)
from repro.optimizer import (
    OptimizationRequest,
    OptimizationResult,
    Optimizer,
    PlanCache,
    plan_signature,
)
from repro.service import (
    CaptureLog,
    MetricsRegistry,
    QueryEvent,
    ServiceRequest,
    ServiceResponse,
    Session,
    StalenessMonitor,
    StatsService,
)
from repro.sql import Query, QueryBuilder, bind, parse_statement
from repro.sql.binder import parse_and_bind
from repro.stats import ShardRouter, StatKey, Statistic, StatisticsManager
from repro.storage import Database
from repro.workload import (
    RagsConfig,
    Workload,
    generate_workload,
    tpcd_queries,
)

__version__ = "1.0.0"

__all__ = [
    # engine backends
    "BACKEND_NAMES",
    "Backend",
    "MemoryBackend",
    "SqliteBackend",
    "backend_from_name",
    # catalog / storage
    "Column",
    "ColumnRef",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "TableSchema",
    "Database",
    # config
    "MagicNumbers",
    "CostModelConfig",
    "OptimizerConfig",
    "ServiceConfig",
    "RefreshPolicy",
    "DEFAULT_CONFIG",
    # data generation
    "SkewSpec",
    "TpcdGenerator",
    "make_tpcd_database",
    "tpcd_schema",
    # sql
    "Query",
    "QueryBuilder",
    "parse_statement",
    "bind",
    "parse_and_bind",
    # statistics
    "StatKey",
    "Statistic",
    "StatisticsManager",
    # optimizer / executor
    "Optimizer",
    "OptimizationRequest",
    "OptimizationResult",
    "PlanCache",
    "plan_signature",
    "Executor",
    "ExecutionResult",
    # execution feedback
    "q_error",
    "worst_plan_q_error",
    "FeedbackKey",
    "FeedbackPolicy",
    "FeedbackStore",
    "OperatorObservation",
    "PlanInstrumenter",
    "QErrorTracker",
    # learned corrections
    "BucketRegressor",
    "CorrectionModel",
    "CorrectionStore",
    "MultiplicativeCorrection",
    "SketchJoinEstimator",
    # indexes
    "apply_tuned_tpcd_indexes",
    # core algorithms
    "CandidateMode",
    "candidate_statistics",
    "workload_candidate_statistics",
    "EquivalenceCriterion",
    "ExecutionTreeEquivalence",
    "OptimizerCostEquivalence",
    "TOptimizerCostEquivalence",
    "is_essential_set",
    "find_minimal_essential_set",
    "find_next_stat_to_build",
    "MnsaConfig",
    "MnsaResult",
    "mnsa_for_query",
    "mnsa_for_workload",
    "MnsadResult",
    "mnsad_for_query",
    "mnsad_for_workload",
    "ShrinkingSetResult",
    "shrinking_set",
    "AgingPolicy",
    "AutoDropPolicy",
    "CreationPolicy",
    "StatisticsAdvisor",
    "WorkloadDriver",
    # errors
    "ReproError",
    "ReproDeprecationWarning",
    "ServiceRejectedError",
    # online service
    "StatsService",
    "Session",
    "ServiceRequest",
    "ServiceResponse",
    "ShardRouter",
    "CaptureLog",
    "QueryEvent",
    "StalenessMonitor",
    "MetricsRegistry",
    # workloads
    "Workload",
    "RagsConfig",
    "generate_workload",
    "tpcd_queries",
]
