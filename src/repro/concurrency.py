"""Concurrency annotations consumed by the ``repro.analysis`` lint suite.

The service layer (PR 1) made correctness depend on invisible
conventions: which lock guards which attribute, and in which order locks
may be acquired.  :func:`guarded_by` turns the first convention into a
machine-checkable declaration.  A class states, in its body, which lock
guards an attribute::

    class CaptureLog:
        _events = guarded_by("_cond")
        _closed = guarded_by("_cond")

        def __init__(self) -> None:
            self._cond = threading.Condition()
            self._events = collections.deque()
            self._closed = False

``repro lint`` (rule R001) then verifies that every ``self._events`` /
``self._closed`` access in the class body happens lexically inside a
``with self._cond:`` block.  ``__init__`` is exempt — the object is not
shared before construction completes.

``mutations_only=True`` declares a single-writer attribute: mutations
must hold the lock, bare reads may be lock-free.  ``TableData._columns``
uses this — column arrays are replaced atomically, never resized in
place, so unlocked single-column reads are safe by design.

At runtime the marker is inert: it is a class attribute that the
instance attribute assigned in ``__init__`` shadows.  Reading it before
``__init__`` runs would be a bug regardless of locking, and the marker's
``__repr__`` makes such a bug easy to spot.
"""

from __future__ import annotations


class GuardedBy:
    """Class-body marker: the named lock guards this attribute.

    Attributes:
        lock: attribute name of the guarding lock on the same instance
            (e.g. ``"_lock"`` for a lock stored as ``self._lock``).
        mutations_only: if True, only writes (attribute assignment,
            augmented assignment, ``self.attr[...] = ...``, ``del``)
            require the lock; reads are declared lock-free.
    """

    __slots__ = ("lock", "mutations_only")

    def __init__(self, lock: str, mutations_only: bool = False) -> None:
        if not lock or not isinstance(lock, str):
            raise ValueError(f"guarded_by needs a lock attribute name, got {lock!r}")
        self.lock = lock
        self.mutations_only = mutations_only

    def __repr__(self) -> str:
        extra = ", mutations_only=True" if self.mutations_only else ""
        return f"guarded_by({self.lock!r}{extra})"


def guarded_by(lock: str, *, mutations_only: bool = False) -> GuardedBy:
    """Declare that ``lock`` (an attribute of the same instance) guards
    the annotated attribute.  See the module docstring for semantics and
    :mod:`repro.analysis` rule R001 for the checker."""
    return GuardedBy(lock, mutations_only=mutations_only)


class PlanSource:
    """Class-body marker: this attribute feeds plan choice and exposes a
    monotone version.

    Attributes:
        prop: name of the version property on the attribute's value
            (default ``"version"``; ``CorrectionStore.version`` and
            ``SketchJoinEstimator.version`` are the canonical examples).

    Rule R009 requires that the declared version is read somewhere on
    the optimize path and folded into every request handed to the plan
    cache — otherwise corrected and uncorrected plans could alias one
    cache entry.  Like :class:`GuardedBy` the marker is runtime-inert:
    the instance attribute assigned in ``__init__`` shadows it.
    """

    __slots__ = ("prop",)

    def __init__(self, prop: str = "version") -> None:
        if not prop or not isinstance(prop, str):
            raise ValueError(f"plan_source needs a property name, got {prop!r}")
        self.prop = prop

    def __repr__(self) -> str:
        return f"plan_source({self.prop!r})"


def plan_source(prop: str = "version") -> PlanSource:
    """Declare that the annotated attribute is a versioned plan-relevant
    source whose ``prop`` must be folded into the plan-cache key.  See
    :mod:`repro.analysis` rule R009 for the checker."""
    return PlanSource(prop)


class LifecycleProtocol:
    """Class-body marker: instances of this class follow a typestate
    protocol.

    A protocol is a tiny state machine — named states, an initial state,
    and operations (method names) that move an object between states or
    are only legal in some states.  The declaration is consumed by the
    interprocedural typestate engine (:mod:`repro.analysis.typestate`)
    which drives rules R012–R015; see ``docs/analysis.md`` for the spec
    grammar and per-rule semantics of each keyword.  Like
    :class:`GuardedBy` the marker is runtime-inert.
    """

    __slots__ = (
        "name",
        "rule",
        "states",
        "initial",
        "transitions",
        "allowed",
        "operations",
        "final",
        "requires",
        "carrier",
        "store",
        "guarded",
        "reads",
        "visibility",
        "drains",
        "requires_before",
        "delegate",
    )

    def __init__(
        self,
        name: str,
        rule: str,
        states: "tuple[str, ...]",
        initial: str,
        transitions: "dict[str, tuple[str, str]] | None" = None,
        allowed: "dict[str, tuple[str, ...]] | None" = None,
        operations: "tuple[str, ...]" = (),
        final: "str | None" = None,
        requires: "tuple[str, ...]" = (),
        carrier: "str | None" = None,
        store: "str | None" = None,
        guarded: "tuple[str, ...]" = (),
        reads: "tuple[str, ...]" = (),
        visibility: "str | None" = None,
        drains: "dict[str, tuple[str, ...]] | None" = None,
        requires_before: "dict[str, str] | None" = None,
        delegate: "str | None" = None,
    ) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"protocol needs a name, got {name!r}")
        if not (
            isinstance(rule, str)
            and len(rule) == 4
            and rule.startswith("R")
            and rule[1:].isdigit()
        ):
            raise ValueError(f"protocol rule must look like 'R012', got {rule!r}")
        if not states or not all(isinstance(s, str) and s for s in states):
            raise ValueError(f"protocol states must be non-empty names, got {states!r}")
        if initial not in states:
            raise ValueError(f"initial state {initial!r} is not one of {states!r}")
        transitions = dict(transitions or {})
        for op, edge in transitions.items():
            if not (isinstance(edge, tuple) and len(edge) == 2):
                raise ValueError(
                    f"transition for {op!r} must be a (from, to) pair, got {edge!r}"
                )
            if edge[0] not in states or edge[1] not in states:
                raise ValueError(
                    f"transition for {op!r} uses undeclared states: {edge!r}"
                )
        allowed = dict(allowed or {})
        for state in allowed:
            if state not in states:
                raise ValueError(f"allowed-map state {state!r} not in {states!r}")
        if final is not None and final not in states:
            raise ValueError(f"final state {final!r} is not one of {states!r}")
        self.name = name
        self.rule = rule
        self.states = tuple(states)
        self.initial = initial
        self.transitions = transitions
        self.allowed = {state: tuple(ops) for state, ops in allowed.items()}
        self.operations = tuple(operations)
        self.final = final
        self.requires = tuple(requires)
        self.carrier = carrier
        self.store = store
        self.guarded = tuple(guarded)
        self.reads = tuple(reads)
        self.visibility = visibility
        self.drains = {op: tuple(via) for op, via in (drains or {}).items()}
        self.requires_before = dict(requires_before or {})
        self.delegate = delegate

    def __repr__(self) -> str:
        return f"protocol({self.name!r}, rule={self.rule!r}, states={self.states!r})"


def protocol(
    name: str,
    *,
    rule: str,
    states: "tuple[str, ...]",
    initial: str,
    transitions: "dict[str, tuple[str, str]] | None" = None,
    allowed: "dict[str, tuple[str, ...]] | None" = None,
    operations: "tuple[str, ...]" = (),
    final: "str | None" = None,
    requires: "tuple[str, ...]" = (),
    carrier: "str | None" = None,
    store: "str | None" = None,
    guarded: "tuple[str, ...]" = (),
    reads: "tuple[str, ...]" = (),
    visibility: "str | None" = None,
    drains: "dict[str, tuple[str, ...]] | None" = None,
    requires_before: "dict[str, str] | None" = None,
    delegate: "str | None" = None,
) -> LifecycleProtocol:
    """Declare a lifecycle protocol for instances of the enclosing class.

    The keyword surface is the full spec grammar (states, transitions,
    per-state allowed operations, guard/visibility/drain obligations);
    rules R012–R015 each claim the protocols declared with their
    ``rule=`` id.  See :mod:`repro.analysis.typestate` for the engine and
    ``docs/analysis.md`` for worked examples."""
    return LifecycleProtocol(
        name,
        rule,
        states,
        initial,
        transitions=transitions,
        allowed=allowed,
        operations=operations,
        final=final,
        requires=requires,
        carrier=carrier,
        store=store,
        guarded=guarded,
        reads=reads,
        visibility=visibility,
        drains=drains,
        requires_before=requires_before,
        delegate=delegate,
    )
