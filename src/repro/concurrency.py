"""Concurrency annotations consumed by the ``repro.analysis`` lint suite.

The service layer (PR 1) made correctness depend on invisible
conventions: which lock guards which attribute, and in which order locks
may be acquired.  :func:`guarded_by` turns the first convention into a
machine-checkable declaration.  A class states, in its body, which lock
guards an attribute::

    class CaptureLog:
        _events = guarded_by("_cond")
        _closed = guarded_by("_cond")

        def __init__(self) -> None:
            self._cond = threading.Condition()
            self._events = collections.deque()
            self._closed = False

``repro lint`` (rule R001) then verifies that every ``self._events`` /
``self._closed`` access in the class body happens lexically inside a
``with self._cond:`` block.  ``__init__`` is exempt — the object is not
shared before construction completes.

``mutations_only=True`` declares a single-writer attribute: mutations
must hold the lock, bare reads may be lock-free.  ``TableData._columns``
uses this — column arrays are replaced atomically, never resized in
place, so unlocked single-column reads are safe by design.

At runtime the marker is inert: it is a class attribute that the
instance attribute assigned in ``__init__`` shadows.  Reading it before
``__init__`` runs would be a bug regardless of locking, and the marker's
``__repr__`` makes such a bug easy to spot.
"""

from __future__ import annotations


class GuardedBy:
    """Class-body marker: the named lock guards this attribute.

    Attributes:
        lock: attribute name of the guarding lock on the same instance
            (e.g. ``"_lock"`` for a lock stored as ``self._lock``).
        mutations_only: if True, only writes (attribute assignment,
            augmented assignment, ``self.attr[...] = ...``, ``del``)
            require the lock; reads are declared lock-free.
    """

    __slots__ = ("lock", "mutations_only")

    def __init__(self, lock: str, mutations_only: bool = False) -> None:
        if not lock or not isinstance(lock, str):
            raise ValueError(f"guarded_by needs a lock attribute name, got {lock!r}")
        self.lock = lock
        self.mutations_only = mutations_only

    def __repr__(self) -> str:
        extra = ", mutations_only=True" if self.mutations_only else ""
        return f"guarded_by({self.lock!r}{extra})"


def guarded_by(lock: str, *, mutations_only: bool = False) -> GuardedBy:
    """Declare that ``lock`` (an attribute of the same instance) guards
    the annotated attribute.  See the module docstring for semantics and
    :mod:`repro.analysis` rule R001 for the checker."""
    return GuardedBy(lock, mutations_only=mutations_only)


class PlanSource:
    """Class-body marker: this attribute feeds plan choice and exposes a
    monotone version.

    Attributes:
        prop: name of the version property on the attribute's value
            (default ``"version"``; ``CorrectionStore.version`` and
            ``SketchJoinEstimator.version`` are the canonical examples).

    Rule R009 requires that the declared version is read somewhere on
    the optimize path and folded into every request handed to the plan
    cache — otherwise corrected and uncorrected plans could alias one
    cache entry.  Like :class:`GuardedBy` the marker is runtime-inert:
    the instance attribute assigned in ``__init__`` shadows it.
    """

    __slots__ = ("prop",)

    def __init__(self, prop: str = "version") -> None:
        if not prop or not isinstance(prop, str):
            raise ValueError(f"plan_source needs a property name, got {prop!r}")
        self.prop = prop

    def __repr__(self) -> str:
        return f"plan_source({self.prop!r})"


def plan_source(prop: str = "version") -> PlanSource:
    """Declare that the annotated attribute is a versioned plan-relevant
    source whose ``prop`` must be folded into the plan-cache key.  See
    :mod:`repro.analysis` rule R009 for the checker."""
    return PlanSource(prop)
