"""Learned cardinality-correction subsystem.

Closes the loop PR 4's feedback subsystem opened: instead of only
*scheduling* refreshes from observed (estimate, actual) pairs, maintain
online correction models and apply them inside selectivity estimation
before plan choice.  See ``docs/learned.md`` for the model classes,
invalidation semantics, and the sketch A/B harness.
"""

from repro.learned.model import (
    BucketRegressor,
    CorrectionModel,
    MultiplicativeCorrection,
    build_model,
)
from repro.learned.sketch import SketchJoinEstimator
from repro.learned.store import CorrectionStore

__all__ = [
    "BucketRegressor",
    "CorrectionModel",
    "CorrectionStore",
    "MultiplicativeCorrection",
    "SketchJoinEstimator",
    "build_model",
]
