"""Thread-safe store of learned selectivity corrections.

The :class:`CorrectionStore` is the one learned-subsystem object shared
across threads: the service's query path folds
:class:`~repro.feedback.observation.OperatorObservation` records into it
after execution, every optimizer consults it during selectivity
estimation, and the staleness monitor / advisor workers invalidate table
slices when a statistics rebuild lands.

Versioning contract (what the plan cache depends on): ``version`` is a
monotone counter that moves exactly when the store's *visible* behavior
can change — a published factor moved, an entry was evicted, or a table
was invalidated.  :meth:`~repro.optimizer.optimizer.Optimizer` folds the
version into the plan-cache key, so a cached plan is only reused while
the corrections that shaped it still stand.  Observation churn that does
not move a published factor deliberately does not bump the version;
hysteresis in the model layer is what keeps the cache warm.

Invalidation semantics: corrections are dropped when the owning table's
statistics are rebuilt or refreshed (a rebuilt histogram starts from
trust-the-stats), *not* on DML — data churn between refreshes is exactly
when a learned correction earns its keep.
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.concurrency import guarded_by
from repro.errors import ServiceError
from repro.feedback.observation import (
    MIN_CARDINALITY,
    FeedbackKey,
    OperatorObservation,
)
from repro.learned.model import CorrectionModel, build_model

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.service.metrics import MetricsRegistry

__all__ = ["CorrectionStore"]

#: Plan-operator kinds that feed a correction model, and the model kind
#: each maps to.  ``having`` and ``sort`` operators carry no targets.
_OPERATOR_KINDS = {
    "scan": "filter",
    "seek": "filter",
    "join": "join",
    "aggregate": "group",
}


def _clamp_unit(value: float) -> float:
    return min(1.0, max(0.0, value))


class CorrectionStore:
    """Online per-(table, column-set) selectivity corrections.

    Parameters
    ----------
    model:
        Model class name: ``"multiplicative"`` (exact targets) or
        ``"bucket"`` (hashed predicate features).
    capacity:
        Maximum tracked factor entries; least-recently-observed entries
        are evicted beyond it.
    decay:
        EWMA decay applied per observation (closer to 1 = slower).
    max_factor:
        Corrections are bounded to ``[1/max_factor, max_factor]`` both
        when absorbing ratios and when applied to an estimate.
    """

    # repro-lint: optimize-path
    # repro-lint: versioned-by=_model:_epoch

    _model = guarded_by("_lock")
    _epoch = guarded_by("_lock")
    observations_total = guarded_by("_lock")
    hits_total = guarded_by("_lock")
    misses_total = guarded_by("_lock")
    invalidations_total = guarded_by("_lock")
    evictions_total = guarded_by("_lock")

    def __init__(
        self,
        model: str = "multiplicative",
        capacity: int = 512,
        decay: float = 0.8,
        max_factor: float = 32.0,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if max_factor <= 1.0:
            raise ServiceError(f"max_factor must be > 1, got {max_factor}")
        self.model_name = model
        self.capacity = capacity
        self.decay = decay
        self.max_factor = max_factor
        self._metrics = metrics
        self._lock = threading.Lock()
        self._model: CorrectionModel = build_model(model, decay=decay)
        self._epoch = 0
        self.observations_total = 0
        self.hits_total = 0
        self.misses_total = 0
        self.invalidations_total = 0
        self.evictions_total = 0

    # -- feeding --------------------------------------------------------

    def observe(self, observation: OperatorObservation) -> bool:
        # repro-lint: epoch-exempt=the version moves only when a published factor drifts; per-observation counter churn must not thrash the plan cache
        """Fold one operator observation; returns ``True`` iff the
        correction-model version moved."""
        kind = _OPERATOR_KINDS.get(observation.operator)
        if kind is None or not observation.targets:
            return False
        estimated = max(MIN_CARDINALITY, float(observation.estimated_rows))
        actual = max(MIN_CARDINALITY, float(observation.actual_rows))
        cap = math.log(self.max_factor)
        log_ratio = max(-cap, min(cap, math.log(actual / estimated)))
        with self._lock:
            self.observations_total += 1
            published = False
            for key in observation.targets:
                published = self._model.absorb(key, kind, log_ratio) or published
            evicted = self._model.trim(self.capacity)
            if evicted:
                self.evictions_total += evicted
            if published or evicted:
                self._epoch += 1
            bumped = published or bool(evicted)
        self._publish_metrics()
        return bumped

    def observe_all(self, observations: Iterable[OperatorObservation]) -> int:
        """Fold a batch of observations; returns how many version bumps
        they caused."""
        return sum(1 for obs in observations if self.observe(obs))

    # -- correcting -----------------------------------------------------

    def correct_filter(
        self, table: str, columns: Iterable[str], selectivity: float
    ) -> float:
        # repro-lint: epoch-exempt=hit/miss counters are observability, not planner-visible state
        """Corrected filter selectivity for predicates on ``columns``."""
        key = FeedbackKey.of(table, columns)
        if not key.columns:
            return _clamp_unit(selectivity)
        with self._lock:
            factor = self._model.factor(key, "filter")
            if factor is None:
                self.misses_total += 1
            else:
                self.hits_total += 1
        return self._apply(selectivity, factor)

    def correct_join(
        self,
        left_table: str,
        left_columns: Iterable[str],
        right_table: str,
        right_columns: Iterable[str],
        selectivity: float,
    ) -> float:
        # repro-lint: epoch-exempt=hit/miss counters are observability, not planner-visible state
        """Corrected join selectivity.

        The instrumenter records a join misestimate against *both* sides'
        keys, so the applied factor is the geometric mean of whatever the
        two sides have learned; a single known side is used alone.
        """
        left_key = FeedbackKey.of(left_table, left_columns)
        right_key = FeedbackKey.of(right_table, right_columns)
        with self._lock:
            left = self._model.factor(left_key, "join")
            right = self._model.factor(right_key, "join")
            if left is None and right is None:
                self.misses_total += 1
            else:
                self.hits_total += 1
        if left is None and right is None:
            return _clamp_unit(selectivity)
        if left is None:
            factor = right
        elif right is None:
            factor = left
        else:
            factor = math.sqrt(left * right)
        return self._apply(selectivity, factor)

    def correct_group(
        self, table: str, columns: Iterable[str], fraction: float
    ) -> float:
        # repro-lint: epoch-exempt=hit/miss counters are observability, not planner-visible state
        """Corrected group-by distinct fraction."""
        key = FeedbackKey.of(table, columns)
        if not key.columns:
            return _clamp_unit(fraction)
        with self._lock:
            factor = self._model.factor(key, "group")
            if factor is None:
                self.misses_total += 1
            else:
                self.hits_total += 1
        return self._apply(fraction, factor)

    def _apply(self, value: float, factor: Optional[float]) -> float:
        if factor is None:
            return _clamp_unit(value)
        factor = min(self.max_factor, max(1.0 / self.max_factor, factor))
        return _clamp_unit(value * factor)

    # -- invalidation ---------------------------------------------------

    def invalidate_table(self, table: str) -> int:
        """Drop every correction learned for ``table``.

        Called when the table's statistics are rebuilt or refreshed; the
        version bump is unconditional so any cached plan shaped by the
        dropped corrections is re-optimized.
        """
        with self._lock:
            dropped = self._model.drop_table(table)
            self.invalidations_total += dropped
            self._epoch += 1
        self._publish_metrics()
        return dropped

    def clear(self) -> None:
        """Forget everything (corrections and counters stay separate:
        lifetime counters are preserved)."""
        with self._lock:
            self._model = build_model(self.model_name, decay=self.decay)
            self._epoch += 1
        self._publish_metrics()

    # -- introspection --------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone correction-model version (plan-cache key component)."""
        with self._lock:
            return self._epoch

    def __len__(self) -> int:
        with self._lock:
            return self._model.size()

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "observations": self.observations_total,
                "hits": self.hits_total,
                "misses": self.misses_total,
                "invalidations": self.invalidations_total,
                "evictions": self.evictions_total,
                "tracked": self._model.size(),
                "version": self._epoch,
            }

    def snapshot(self) -> List[Tuple[str, str, Dict[str, float]]]:
        """``(target_label, kind, aggregates)`` rows, strongest first."""
        with self._lock:
            return self._model.snapshot_rows()

    def _publish_metrics(self) -> None:
        metrics = self._metrics
        if metrics is None:
            return
        with self._lock:
            observations = self.observations_total
            hits = self.hits_total
            misses = self.misses_total
            invalidations = self.invalidations_total
            evictions = self.evictions_total
            tracked = self._model.size()
            version = self._epoch
        metrics.gauge("correction.observations", float(observations))
        metrics.gauge("correction.hits", float(hits))
        metrics.gauge("correction.misses", float(misses))
        metrics.gauge("correction.invalidations", float(invalidations))
        metrics.gauge("correction.evictions", float(evictions))
        metrics.gauge("correction.tracked_models", float(tracked))
        metrics.gauge("correction.version", float(version))
