"""AGMS-style sketch estimator for equijoin sizes.

The A/B alternative to learned multiplicative corrections: instead of
adjusting the optimizer's join estimate after the fact, estimate the
join size directly from data sketches (Alon-Gibbons-Matias-Szegedy
atomic sketches, the technique Online Sketch-based Query Optimization
builds on).  For each join column the estimator keeps ``depth``
counter-weighted random-sign sums; the expected product of two columns'
sketches equals their equijoin size, and averaging within groups then
taking the median across groups bounds the variance.

Only foreign-key endpoint columns with value-comparable storage (INT or
DATE) are sketched: those are the columns equijoins actually use, and
string columns store per-table dictionary codes that are not comparable
across tables.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.catalog.column import ColumnRef
from repro.catalog.types import ColumnType
from repro.concurrency import guarded_by
from repro.errors import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.storage.database import Database

__all__ = ["SketchJoinEstimator"]

#: Sketch depth must split evenly into this many median groups.
_MEDIAN_GROUPS = 8

#: splitmix64 mixing constants (Steele et al.), vectorized over uint64.
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)

_SKETCHABLE_TYPES = (ColumnType.INT, ColumnType.DATE)


def _signs(values: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic ±1 sign per value, independent across seeds."""
    x = values.astype(np.uint64) + np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    x = (x + _SPLITMIX_GAMMA) * _SPLITMIX_M1
    x ^= x >> np.uint64(30)
    x *= _SPLITMIX_M2
    x ^= x >> np.uint64(27)
    x *= _SPLITMIX_M1
    x ^= x >> np.uint64(31)
    return np.where(x & np.uint64(1), 1.0, -1.0)


class SketchJoinEstimator:
    """Per-column AGMS sketches over a database's foreign-key columns.

    The estimator carries its own monotone ``version`` so an optimizer
    that consults it can fold sketch freshness into the plan-cache key
    exactly like the correction-store version.
    """

    # repro-lint: optimize-path
    # repro-lint: versioned-by=_sketches:_version
    # repro-lint: versioned-by=_rows:_version

    _sketches = guarded_by("_lock")
    _rows = guarded_by("_lock")
    _version = guarded_by("_lock")

    def __init__(
        self, database: "Database", depth: int = 64, seed: int = 17
    ) -> None:
        if depth < _MEDIAN_GROUPS or depth % _MEDIAN_GROUPS:
            raise ServiceError(
                f"depth must be a positive multiple of {_MEDIAN_GROUPS}, "
                f"got {depth}"
            )
        self._db = database
        self.depth = depth
        self._seed = seed
        self._lock = threading.Lock()
        self._sketches: Dict[Tuple[str, str], np.ndarray] = {}
        self._rows: Dict[str, int] = {}
        self._version = 0
        self.rebuild()

    # -- building -------------------------------------------------------

    def _join_columns(self) -> List[Tuple[str, str]]:
        """FK endpoint columns whose values compare across tables."""
        refs = set()
        for fk in self._db.schema.foreign_keys():
            for column in fk.child_columns:
                refs.add((fk.child_table, column))
            for column in fk.parent_columns:
                refs.add((fk.parent_table, column))
        schema = self._db.schema
        return sorted(
            (table, column)
            for table, column in refs
            if schema.column(ColumnRef(table, column)).type
            in _SKETCHABLE_TYPES
        )

    def _build_sketch(self, table: str, column: str) -> np.ndarray:
        values, counts = np.unique(
            self._db.table(table).column_array(column), return_counts=True
        )
        weights = counts.astype(np.float64)
        sketch = np.empty(self.depth, dtype=np.float64)
        for d in range(self.depth):
            sketch[d] = float(weights @ _signs(values, self._seed + d))
        return sketch

    def rebuild(self) -> None:
        """(Re)build sketches for every foreign-key column."""
        built = {
            (table, column): self._build_sketch(table, column)
            for table, column in self._join_columns()
        }
        rows = {table: self._db.row_count(table) for table, _ in built}
        with self._lock:
            self._sketches = built
            self._rows = rows
            self._version += 1

    def refresh(self, table: str) -> int:
        """Re-sketch one table's columns (e.g. after heavy churn);
        returns how many sketches were rebuilt."""
        built = {
            (owner, column): self._build_sketch(owner, column)
            for owner, column in self._join_columns()
            if owner == table
        }
        # read the cardinality before taking our lock: row_count may
        # itself lock the backing engine, and holding both inverts the
        # order used by planning paths
        row_total = self._db.row_count(table) if built else 0
        with self._lock:
            self._sketches.update(built)
            if built:
                self._rows[table] = row_total
            self._version += 1
        return len(built)

    # -- estimating -----------------------------------------------------

    def join_selectivity(
        self, left: ColumnRef, right: ColumnRef
    ) -> Optional[float]:
        """Estimated selectivity of ``left = right``, or ``None`` when
        either side is unsketched or the estimate is unusable."""
        with self._lock:
            left_sketch = self._sketches.get((left.table, left.column))
            right_sketch = self._sketches.get((right.table, right.column))
            left_rows = self._rows.get(left.table, 0)
            right_rows = self._rows.get(right.table, 0)
        if left_sketch is None or right_sketch is None:
            return None
        if left_rows <= 0 or right_rows <= 0:
            return None
        products = (left_sketch * right_sketch).reshape(_MEDIAN_GROUPS, -1)
        join_size = float(np.median(products.mean(axis=1)))
        if join_size <= 0.0:
            return None
        return min(1.0, join_size / (left_rows * right_rows))

    # -- introspection --------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone sketch version (plan-cache key component)."""
        with self._lock:
            return self._version

    def sketched_columns(self) -> List[Tuple[str, str]]:
        with self._lock:
            return sorted(self._sketches)
