"""Online correction models for cardinality estimates.

A correction model maps a feedback target (a :class:`FeedbackKey` plus
an observation *kind*) to a multiplicative factor that the optimizer
applies to its own selectivity estimate before plan choice.  Models are
fed log-space estimate/actual ratios harvested from executed plans and
must generalize cheaply: the service folds one observation per plan
operator on the query path.

Two model classes live behind the :class:`CorrectionModel` protocol:

``MultiplicativeCorrection``
    One exponentially-decayed factor per exact (table, column-set, kind)
    target — precise, but only corrects targets it has seen verbatim.

``BucketRegressor``
    Hashes each target's predicate features (kind + column names) into a
    small per-table bucket space, so unseen column-sets inherit the
    correction learned from colliding neighbours — coarser, but it
    generalizes across a table's predicates.

Both publish factors with hysteresis: the internally tracked estimate
moves on every observation, but the *published* factor (the one the
optimizer reads) only moves once the estimate has drifted far enough in
log space.  The owning :class:`~repro.learned.store.CorrectionStore`
turns publishes into version bumps, so hysteresis is what keeps the plan
cache from thrashing on observation noise.
"""

from __future__ import annotations

import math
import zlib
from collections import OrderedDict
from typing import Dict, List, Optional, Protocol, Tuple

from repro.errors import ServiceError
from repro.feedback.observation import FeedbackKey

__all__ = [
    "CorrectionModel",
    "MultiplicativeCorrection",
    "BucketRegressor",
    "build_model",
]

#: Observation kinds a model distinguishes; a join misestimate must never
#: bleed into filter corrections for the same columns.
KINDS = ("filter", "join", "group")

#: Default hysteresis band (log space) before a factor is re-published.
#: exp(0.22) ~ 1.25: the estimate must move ~25% to change plans.
DEFAULT_DRIFT = 0.22

#: Default bucket count per (table, kind) for the hashed regressor.
DEFAULT_BUCKETS = 64

#: splitmix64 mixing constants, used to derive deterministic bucket
#: labels that are stable across processes (unlike ``hash``).
_CRC_SEED = 0x9E3779B9


class CorrectionModel(Protocol):
    """What the :class:`~repro.learned.store.CorrectionStore` needs from
    a model class.

    Implementations are *not* thread-safe on their own; the store
    serializes access under its lock.
    """

    name: str

    def absorb(self, key: FeedbackKey, kind: str, log_ratio: float) -> bool:
        """Absorb one log(actual/estimated) ratio for ``key``.

        Returns ``True`` iff a *published* factor moved — the signal the
        store turns into a correction-model version bump.
        """

    def factor(self, key: FeedbackKey, kind: str) -> Optional[float]:
        """The published multiplicative correction, or ``None`` if this
        model has nothing to say about ``key``."""

    def drop_table(self, table: str) -> int:
        """Drop every factor learned for ``table``; returns the count."""

    def trim(self, capacity: int) -> int:
        """Evict least-recently-observed entries down to ``capacity``;
        returns the number evicted."""

    def size(self) -> int:
        """Number of tracked factor entries."""

    def snapshot_rows(self) -> List[Tuple[str, str, Dict[str, float]]]:
        """``(target_label, kind, aggregates)`` rows, strongest first."""


class _EwmaFactor:
    """Debiased exponentially-weighted estimate of a log correction.

    ``log_raw`` is the running EWMA of observed log ratios and
    ``weight`` its bias correction (the EWMA of 1s), so the effective
    estimate ``log_raw / weight`` equals the first observation exactly
    instead of being shrunk toward zero.  ``log_published`` is the value
    readers see; it snaps to the effective estimate only when the two
    diverge by more than the drift band.
    """

    __slots__ = ("log_raw", "weight", "log_published", "count")

    def __init__(self) -> None:
        self.log_raw = 0.0
        self.weight = 0.0
        self.log_published = 0.0
        self.count = 0

    def absorb(self, log_ratio: float, decay: float, drift: float) -> bool:
        self.log_raw = decay * self.log_raw + (1.0 - decay) * log_ratio
        self.weight = decay * self.weight + (1.0 - decay)
        self.count += 1
        effective = self.log_raw / self.weight
        if abs(effective - self.log_published) > drift:
            self.log_published = effective
            return True
        return False


class _SlottedEwmaModel:
    """Shared machinery: an LRU map of slots to EWMA factors.

    Subclasses choose the slot layout — the tuple always starts with the
    table name so per-table invalidation stays a linear sweep.
    """

    name = "abstract"

    def __init__(self, decay: float, drift: float) -> None:
        if not 0.0 < decay < 1.0:
            raise ServiceError(f"decay must be in (0, 1), got {decay}")
        if drift < 0.0:
            raise ServiceError(f"drift must be >= 0, got {drift}")
        self._decay = decay
        self._drift = drift
        self._entries: "OrderedDict[Tuple[str, str, object], _EwmaFactor]" = (
            OrderedDict()
        )

    # -- slot layout ---------------------------------------------------

    def _slot(self, key: FeedbackKey, kind: str) -> Tuple[str, str, object]:
        raise NotImplementedError

    def _label(self, slot: Tuple[str, str, object]) -> str:
        raise NotImplementedError

    # -- CorrectionModel -----------------------------------------------

    def absorb(self, key: FeedbackKey, kind: str, log_ratio: float) -> bool:
        slot = self._slot(key, kind)
        state = self._entries.get(slot)
        if state is None:
            state = _EwmaFactor()
            self._entries[slot] = state
        else:
            self._entries.move_to_end(slot)
        return state.absorb(log_ratio, self._decay, self._drift)

    def factor(self, key: FeedbackKey, kind: str) -> Optional[float]:
        state = self._entries.get(self._slot(key, kind))
        if state is None:
            return None
        return math.exp(state.log_published)

    def drop_table(self, table: str) -> int:
        stale = [slot for slot in self._entries if slot[0] == table]
        for slot in stale:
            del self._entries[slot]
        return len(stale)

    def trim(self, capacity: int) -> int:
        evicted = 0
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def size(self) -> int:
        return len(self._entries)

    def snapshot_rows(self) -> List[Tuple[str, str, Dict[str, float]]]:
        rows = [
            (
                self._label(slot),
                slot[1],
                {
                    "factor": math.exp(state.log_published),
                    "count": float(state.count),
                },
            )
            for slot, state in self._entries.items()
        ]
        rows.sort(key=lambda row: abs(math.log(row[2]["factor"])), reverse=True)
        return rows


class MultiplicativeCorrection(_SlottedEwmaModel):
    """Exact per-(table, column-set, kind) decayed multiplicative factors."""

    name = "multiplicative"

    def __init__(
        self, decay: float = 0.8, drift: float = DEFAULT_DRIFT
    ) -> None:
        super().__init__(decay, drift)

    def _slot(self, key: FeedbackKey, kind: str) -> Tuple[str, str, object]:
        return (key.table, kind, key.columns)

    def _label(self, slot: Tuple[str, str, object]) -> str:
        table, _kind, columns = slot
        return str(FeedbackKey(table, columns))  # type: ignore[arg-type]


class BucketRegressor(_SlottedEwmaModel):
    """Hash-bucketed predicate-feature regressor.

    Targets are reduced to ``(table, kind, bucket)`` where the bucket
    hashes the sorted column names; column-sets that collide share a
    factor, trading precision for generalization within a table.  The
    hash is CRC32-based so bucket assignment is stable across runs.
    """

    name = "bucket"

    def __init__(
        self,
        decay: float = 0.8,
        drift: float = DEFAULT_DRIFT,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(decay, drift)
        if buckets < 1:
            raise ServiceError(f"buckets must be >= 1, got {buckets}")
        self._buckets = buckets

    def _slot(self, key: FeedbackKey, kind: str) -> Tuple[str, str, object]:
        feature = f"{kind}|{','.join(key.columns)}".encode()
        return (key.table, kind, zlib.crc32(feature, _CRC_SEED) % self._buckets)

    def _label(self, slot: Tuple[str, str, object]) -> str:
        table, _kind, bucket = slot
        return f"{table}[b{bucket:02d}]"


def build_model(
    name: str, decay: float, drift: float = DEFAULT_DRIFT
) -> CorrectionModel:
    """Instantiate a model class by its config name."""
    if name == "multiplicative":
        return MultiplicativeCorrection(decay=decay, drift=drift)
    if name == "bucket":
        return BucketRegressor(decay=decay, drift=drift)
    raise ServiceError(
        f"unknown correction model {name!r}; expected 'multiplicative' or 'bucket'"
    )
