"""DATE columns are stored as integer day numbers.

Day 0 is 1992-01-01 (the start of the TPC-D order-date range); the helpers
here convert between ISO date strings and day numbers so that queries can
be written with readable literals.
"""

from __future__ import annotations

import datetime

EPOCH = datetime.date(1992, 1, 1)
"""Day number 0."""

TPCD_DATE_MIN = 0
"""First order date in generated data (1992-01-01)."""

TPCD_DATE_MAX = (datetime.date(1998, 12, 31) - EPOCH).days
"""Last date in generated data (1998-12-31)."""


def date_to_daynum(iso_date: str) -> int:
    """Convert an ISO ``YYYY-MM-DD`` string to a day number.

    Raises:
        ValueError: if the string is not a valid ISO date.
    """
    parsed = datetime.date.fromisoformat(iso_date)
    return (parsed - EPOCH).days


def daynum_to_date(daynum: int) -> str:
    """Convert a day number back to an ISO date string."""
    return (EPOCH + datetime.timedelta(days=int(daynum))).isoformat()
