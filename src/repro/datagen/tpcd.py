"""The TPC-D schema (paper Sec 8.1).

TPC-D is the decision-support benchmark the paper evaluates on (the direct
ancestor of TPC-H): eight tables connected by foreign keys.  Cardinalities
scale linearly with the scale factor except the two fixed dimension tables
REGION (5 rows) and NATION (25 rows).
"""

from __future__ import annotations

from repro.catalog import Column, ColumnType, ForeignKey, Schema, TableSchema

I = ColumnType.INT
F = ColumnType.FLOAT
S = ColumnType.STRING
D = ColumnType.DATE

TPCD_TABLE_CARDINALITIES = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}
"""Base cardinalities at scale factor 1.0 (the paper uses SF=1, 1 GB)."""


def _table(name, cols, pk):
    return TableSchema(
        name, [Column(cname, ctype) for cname, ctype in cols], primary_key=pk
    )


def tpcd_schema() -> Schema:
    """Build the TPC-D schema with all foreign keys registered."""
    region = _table(
        "region",
        [("r_regionkey", I), ("r_name", S), ("r_comment", S)],
        ("r_regionkey",),
    )
    nation = _table(
        "nation",
        [
            ("n_nationkey", I),
            ("n_name", S),
            ("n_regionkey", I),
            ("n_comment", S),
        ],
        ("n_nationkey",),
    )
    supplier = _table(
        "supplier",
        [
            ("s_suppkey", I),
            ("s_name", S),
            ("s_address", S),
            ("s_nationkey", I),
            ("s_phone", S),
            ("s_acctbal", F),
            ("s_comment", S),
        ],
        ("s_suppkey",),
    )
    customer = _table(
        "customer",
        [
            ("c_custkey", I),
            ("c_name", S),
            ("c_address", S),
            ("c_nationkey", I),
            ("c_phone", S),
            ("c_acctbal", F),
            ("c_mktsegment", S),
            ("c_comment", S),
        ],
        ("c_custkey",),
    )
    part = _table(
        "part",
        [
            ("p_partkey", I),
            ("p_name", S),
            ("p_mfgr", S),
            ("p_brand", S),
            ("p_type", S),
            ("p_size", I),
            ("p_container", S),
            ("p_retailprice", F),
            ("p_comment", S),
        ],
        ("p_partkey",),
    )
    partsupp = _table(
        "partsupp",
        [
            ("ps_partkey", I),
            ("ps_suppkey", I),
            ("ps_availqty", I),
            ("ps_supplycost", F),
            ("ps_comment", S),
        ],
        ("ps_partkey", "ps_suppkey"),
    )
    orders = _table(
        "orders",
        [
            ("o_orderkey", I),
            ("o_custkey", I),
            ("o_orderstatus", S),
            ("o_totalprice", F),
            ("o_orderdate", D),
            ("o_orderpriority", S),
            ("o_clerk", S),
            ("o_shippriority", I),
            ("o_comment", S),
        ],
        ("o_orderkey",),
    )
    lineitem = _table(
        "lineitem",
        [
            ("l_orderkey", I),
            ("l_partkey", I),
            ("l_suppkey", I),
            ("l_linenumber", I),
            ("l_quantity", I),
            ("l_extendedprice", F),
            ("l_discount", F),
            ("l_tax", F),
            ("l_returnflag", S),
            ("l_linestatus", S),
            ("l_shipdate", D),
            ("l_commitdate", D),
            ("l_receiptdate", D),
            ("l_shipinstruct", S),
            ("l_shipmode", S),
            ("l_comment", S),
        ],
        ("l_orderkey", "l_linenumber"),
    )

    fks = [
        ForeignKey("nation", ("n_regionkey",), "region", ("r_regionkey",)),
        ForeignKey("supplier", ("s_nationkey",), "nation", ("n_nationkey",)),
        ForeignKey("customer", ("c_nationkey",), "nation", ("n_nationkey",)),
        ForeignKey("partsupp", ("ps_partkey",), "part", ("p_partkey",)),
        ForeignKey("partsupp", ("ps_suppkey",), "supplier", ("s_suppkey",)),
        ForeignKey("orders", ("o_custkey",), "customer", ("c_custkey",)),
        ForeignKey("lineitem", ("l_orderkey",), "orders", ("o_orderkey",)),
        ForeignKey("lineitem", ("l_partkey",), "part", ("p_partkey",)),
        ForeignKey("lineitem", ("l_suppkey",), "supplier", ("s_suppkey",)),
        ForeignKey(
            "lineitem",
            ("l_partkey", "l_suppkey"),
            "partsupp",
            ("ps_partkey", "ps_suppkey"),
        ),
    ]
    return Schema(
        [
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        ],
        fks,
    )


REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATION_NAMES = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
    "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
    "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
]

# region of each nation, aligned with NATION_NAMES
NATION_REGIONS = [
    0, 1, 1, 1, 4,
    0, 3, 3, 2, 2,
    4, 4, 2, 4, 0,
    0, 0, 1, 2, 3,
    4, 2, 3, 3, 1,
]

MARKET_SEGMENTS = [
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD",
]

ORDER_STATUSES = ["F", "O", "P"]

ORDER_PRIORITIES = [
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW",
]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]

RETURN_FLAGS = ["R", "A", "N"]

LINE_STATUSES = ["O", "F"]

PART_TYPES = [
    f"{size} {finish} {material}"
    for size in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for finish in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for material in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]

PART_CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]

PART_BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]

MANUFACTURERS = [f"Manufacturer#{m}" for m in range(1, 6)]
