"""Content checksums over generated databases.

``make_tpcd_database`` output must be a pure function of ``(scale, skew,
seed)`` — independent of dict-iteration order or platform hashing — so
every backend loads byte-identical data.  ``database_checksum`` pins
that: the digest is computed over decoded row values (strings decoded,
numerics as plain Python objects), so an in-memory
:class:`~repro.storage.Database` and its SQLite copy
(:meth:`~repro.backends.sqlite.SqliteBackend.checksum`) hash identically
when — and only when — their contents match row for row.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple


def _canonical(value) -> str:
    """Stable text form of one cell value across storage engines."""
    if hasattr(value, "item"):  # numpy scalar
        value = value.item()
    if isinstance(value, float):
        if value.is_integer():
            return f"{value:.1f}"
        return repr(value)
    return repr(value)


def rows_digest(tables: Iterable[Tuple[str, Iterable[tuple]]]) -> str:
    """SHA-256 over ``(table, rows)`` pairs, in the given order.

    Row *content* must already be in a canonical order (generated tables
    are; callers stream tables sorted by name).
    """
    digest = hashlib.sha256()
    for table, rows in tables:
        digest.update(f"table:{table}\n".encode())
        for row in rows:
            line = "|".join(_canonical(value) for value in row)
            digest.update(line.encode())
            digest.update(b"\n")
    return digest.hexdigest()


def database_checksum(database) -> str:
    """Content digest of a :class:`~repro.storage.Database`.

    Comparable with ``SqliteBackend.checksum()`` over the same data.
    """

    def iter_tables():
        for table in sorted(database.table_names()):
            data = database.table(table)
            names = data.schema.column_names()
            columns = [data.decoded_column(name) for name in names]
            yield table, zip(*columns) if columns else iter(())

    return rows_digest(iter_tables())
