"""Zipfian sampling over finite domains.

The paper's skewed TPC-D generator draws each column from a Zipfian
distribution: the i-th most frequent of D distinct values has probability
proportional to ``1 / i**z``.  ``z = 0`` degenerates to uniform; the paper
varies z in [0, 4].
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataGenerationError


def zipf_probabilities(domain_size: int, z: float) -> np.ndarray:
    """Probability vector of a Zipfian distribution over ``domain_size`` ranks.

    ``p[i] ∝ 1 / (i + 1) ** z`` for ranks i = 0 .. domain_size - 1.

    Raises:
        DataGenerationError: if ``domain_size < 1`` or ``z < 0``.
    """
    if domain_size < 1:
        raise DataGenerationError(
            f"domain_size must be >= 1, got {domain_size}"
        )
    if z < 0:
        raise DataGenerationError(f"zipf parameter z must be >= 0, got {z}")
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks ** (-z)
    return weights / weights.sum()


def zipf_sample(
    domain: np.ndarray,
    size: int,
    z: float,
    rng: np.random.Generator,
    shuffle_ranks: bool = True,
) -> np.ndarray:
    """Draw ``size`` values from ``domain`` with Zipfian frequencies.

    Args:
        domain: the distinct values to draw from (any dtype).
        size: number of samples.
        z: skew parameter; 0 gives uniform sampling.
        rng: numpy random generator (callers own the seed).
        shuffle_ranks: if True, which domain value gets which frequency rank
            is randomized (so the most frequent value is not always the
            smallest), matching how real data skew is value-agnostic.

    Returns:
        Array of ``size`` sampled values with the dtype of ``domain``.
    """
    domain = np.asarray(domain)
    if size < 0:
        raise DataGenerationError(f"size must be >= 0, got {size}")
    if size == 0:
        return domain[:0].copy()
    if z == 0.0:
        idx = rng.integers(0, domain.shape[0], size=size)
        return domain[idx]
    probs = zipf_probabilities(domain.shape[0], z)
    ranked = domain
    if shuffle_ranks:
        ranked = rng.permutation(domain)
    idx = rng.choice(domain.shape[0], size=size, p=probs)
    return ranked[idx]


def zipf_frequencies(
    domain_size: int, total: int, z: float
) -> np.ndarray:
    """Deterministic integer frequency vector (largest-remainder rounding).

    Useful for tests that need exact Zipfian counts rather than a random
    sample: the result sums to ``total`` exactly.
    """
    if total < 0:
        raise DataGenerationError(f"total must be >= 0, got {total}")
    probs = zipf_probabilities(domain_size, z)
    raw = probs * total
    counts = np.floor(raw).astype(np.int64)
    shortfall = total - int(counts.sum())
    if shortfall > 0:
        remainders = raw - counts
        top = np.argsort(-remainders)[:shortfall]
        counts[top] += 1
    return counts


def skew_of_column(values: np.ndarray) -> float:
    """Crude skew diagnostic: fraction of rows holding the modal value.

    Not part of the paper; used by tests and examples to sanity-check that
    generated data has the requested skew ordering (z=4 data is more skewed
    than z=0 data).
    """
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    _, counts = np.unique(values, return_counts=True)
    return float(counts.max()) / float(values.size)
