"""Skewed TPC-D data generator (reimplementation of the paper's tool [17]).

Every generated attribute is drawn from a Zipfian distribution whose
parameter ``z`` is controlled by a :class:`SkewSpec`:

* ``SkewSpec(z=0.0)`` — uniform data, the standard TPC-D requirement;
* ``SkewSpec(z=2.0)`` — every column skewed with z = 2 (the paper's TPCD_2);
* ``SkewSpec.mixed(seed)`` — each column gets an independent random z in
  [0, 4], the paper's TPCD_MIX mode;
* per-column overrides via ``SkewSpec(z=1.0, overrides={"orders.o_totalprice": 3.0})``.

Primary keys stay sequential (they are join targets, not skewable values);
foreign keys are drawn Zipfian *over the parent keys*, which is what makes
join cardinalities skewed and statistics on join columns matter.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.datagen import tpcd
from repro.datagen.dates import TPCD_DATE_MAX, TPCD_DATE_MIN
from repro.datagen.zipf import zipf_sample
from repro.errors import DataGenerationError
from repro.storage import Database

MIX = "mix"
"""Sentinel for the per-column random-z mode (the paper's TPCD_MIX)."""

_MIX_Z_RANGE = (0.0, 4.0)


@dataclass(frozen=True)
class SkewSpec:
    """How skewed each generated column should be.

    Attributes:
        z: the default Zipfian parameter for every column, or the string
            ``"mix"`` to draw an independent z per column from [0, 4].
        overrides: optional per-column parameters keyed by
            ``"table.column"``; overrides beat the default (and beat MIX).
        mix_seed: seed for the per-column z draw in MIX mode.
    """

    z: object = 0.0
    overrides: Dict[str, float] = field(default_factory=dict)
    mix_seed: int = 0

    def __post_init__(self) -> None:
        if self.z != MIX:
            if not isinstance(self.z, (int, float)):
                raise DataGenerationError(
                    f"skew z must be a number or 'mix', got {self.z!r}"
                )
            if not 0.0 <= float(self.z) <= 4.0:
                raise DataGenerationError(
                    f"skew z must be in [0, 4], got {self.z}"
                )
        for key, value in self.overrides.items():
            if not 0.0 <= float(value) <= 4.0:
                raise DataGenerationError(
                    f"override z for {key!r} must be in [0, 4], got {value}"
                )

    @classmethod
    def mixed(cls, seed: int = 0) -> "SkewSpec":
        """The paper's TPCD_MIX: random z in [0, 4] per column."""
        return cls(z=MIX, mix_seed=seed)

    def z_for(self, table: str, column: str) -> float:
        """Resolve the Zipfian parameter for one column."""
        key = f"{table}.{column}"
        if key in self.overrides:
            return float(self.overrides[key])
        if self.z == MIX:
            # Stable per-column draw (zlib.crc32 is process-independent,
            # unlike built-in str hashing).
            seed = zlib.crc32(f"{self.mix_seed}:{key}".encode("utf-8"))
            rng = np.random.default_rng(seed)
            low, high = _MIX_Z_RANGE
            return float(rng.uniform(low, high))
        return float(self.z)


class TpcdGenerator:
    """Generates a skewed TPC-D :class:`~repro.storage.Database`.

    Args:
        scale: TPC-D scale factor.  1.0 is the paper's 1 GB database;
            laptop-scale experiments use 0.002–0.02.
        skew: the :class:`SkewSpec` (default: uniform).
        seed: master random seed; generation is fully deterministic.
    """

    #: Minimum rows per table so every FK has at least a few parents.
    _MIN_ROWS = {
        "supplier": 10,
        "customer": 30,
        "part": 40,
        "partsupp": 80,
        "orders": 150,
        "lineitem": 300,
    }

    def __init__(
        self,
        scale: float = 0.01,
        skew: Optional[SkewSpec] = None,
        seed: int = 42,
    ) -> None:
        if scale <= 0:
            raise DataGenerationError(f"scale must be > 0, got {scale}")
        self.scale = scale
        self.skew = skew if skew is not None else SkewSpec()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def cardinality(self, table: str) -> int:
        """Row count of ``table`` at this scale factor."""
        base = tpcd.TPCD_TABLE_CARDINALITIES[table]
        if table in ("region", "nation"):
            return base
        return max(self._MIN_ROWS.get(table, 1), int(round(base * self.scale)))

    def generate(self, name: Optional[str] = None) -> Database:
        """Generate the full eight-table database."""
        db = Database(tpcd.tpcd_schema(), name=name or self._default_name())
        self._gen_region(db)
        self._gen_nation(db)
        self._gen_supplier(db)
        self._gen_customer(db)
        self._gen_part(db)
        self._gen_partsupp(db)
        self._gen_orders(db)
        self._gen_lineitem(db)
        return db

    def _default_name(self) -> str:
        if self.skew.z == MIX:
            return "TPCD_MIX"
        return f"TPCD_{self.skew.z:g}"

    # ------------------------------------------------------------------
    # per-column draw helpers
    # ------------------------------------------------------------------

    def _draw(self, table: str, column: str, domain, size: int) -> np.ndarray:
        """Zipfian draw of ``size`` values from ``domain`` for a column."""
        z = self.skew.z_for(table, column)
        return zipf_sample(np.asarray(domain), size, z, self._rng)

    def _draw_strings(self, table, column, choices, size):
        codes = self._draw(table, column, np.arange(len(choices)), size)
        return [choices[int(c)] for c in codes]

    def _comment_domain(self, size: int) -> list:
        """Bounded domain of synthetic comment strings."""
        n = max(4, min(500, size // 4 + 4))
        return [f"synthetic comment text {i}" for i in range(n)]

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------

    def _gen_region(self, db: Database) -> None:
        n = self.cardinality("region")
        db.load_table(
            "region",
            {
                "r_regionkey": np.arange(n, dtype=np.int64),
                "r_name": tpcd.REGION_NAMES[:n],
                "r_comment": self._draw_strings(
                    "region", "r_comment", self._comment_domain(n), n
                ),
            },
        )

    def _gen_nation(self, db: Database) -> None:
        n = self.cardinality("nation")
        db.load_table(
            "nation",
            {
                "n_nationkey": np.arange(n, dtype=np.int64),
                "n_name": tpcd.NATION_NAMES[:n],
                "n_regionkey": np.asarray(
                    tpcd.NATION_REGIONS[:n], dtype=np.int64
                ),
                "n_comment": self._draw_strings(
                    "nation", "n_comment", self._comment_domain(n), n
                ),
            },
        )

    def _gen_supplier(self, db: Database) -> None:
        n = self.cardinality("supplier")
        nations = db.table("nation").column_array("n_nationkey")
        db.load_table(
            "supplier",
            {
                "s_suppkey": np.arange(1, n + 1, dtype=np.int64),
                "s_name": [f"Supplier#{i:09d}" for i in range(1, n + 1)],
                "s_address": self._draw_strings(
                    "supplier",
                    "s_address",
                    [f"address {i}" for i in range(max(4, n // 2))],
                    n,
                ),
                "s_nationkey": self._draw(
                    "supplier", "s_nationkey", nations, n
                ),
                "s_phone": [f"{i % 34 + 10}-{i:07d}" for i in range(n)],
                "s_acctbal": self._money(
                    "supplier", "s_acctbal", n, -999.99, 9999.99
                ),
                "s_comment": self._draw_strings(
                    "supplier", "s_comment", self._comment_domain(n), n
                ),
            },
        )

    def _gen_customer(self, db: Database) -> None:
        n = self.cardinality("customer")
        nations = db.table("nation").column_array("n_nationkey")
        db.load_table(
            "customer",
            {
                "c_custkey": np.arange(1, n + 1, dtype=np.int64),
                "c_name": [f"Customer#{i:09d}" for i in range(1, n + 1)],
                "c_address": self._draw_strings(
                    "customer",
                    "c_address",
                    [f"address {i}" for i in range(max(4, n // 2))],
                    n,
                ),
                "c_nationkey": self._draw(
                    "customer", "c_nationkey", nations, n
                ),
                "c_phone": [f"{i % 34 + 10}-{i:07d}" for i in range(n)],
                "c_acctbal": self._money(
                    "customer", "c_acctbal", n, -999.99, 9999.99
                ),
                "c_mktsegment": self._draw_strings(
                    "customer", "c_mktsegment", tpcd.MARKET_SEGMENTS, n
                ),
                "c_comment": self._draw_strings(
                    "customer", "c_comment", self._comment_domain(n), n
                ),
            },
        )

    def _gen_part(self, db: Database) -> None:
        n = self.cardinality("part")
        name_words = [
            "almond", "azure", "blue", "chiffon", "coral", "forest",
            "ghost", "honey", "ivory", "lemon", "linen", "mint",
            "navy", "olive", "plum", "rose", "saddle", "thistle",
        ]
        names = [
            f"{name_words[i % len(name_words)]} "
            f"{name_words[(i * 7 + 3) % len(name_words)]} part"
            for i in range(n)
        ]
        db.load_table(
            "part",
            {
                "p_partkey": np.arange(1, n + 1, dtype=np.int64),
                "p_name": names,
                "p_mfgr": self._draw_strings(
                    "part", "p_mfgr", tpcd.MANUFACTURERS, n
                ),
                "p_brand": self._draw_strings(
                    "part", "p_brand", tpcd.PART_BRANDS, n
                ),
                "p_type": self._draw_strings(
                    "part", "p_type", tpcd.PART_TYPES, n
                ),
                "p_size": self._draw(
                    "part", "p_size", np.arange(1, 51, dtype=np.int64), n
                ),
                "p_container": self._draw_strings(
                    "part", "p_container", tpcd.PART_CONTAINERS, n
                ),
                "p_retailprice": self._money(
                    "part", "p_retailprice", n, 900.0, 2000.0
                ),
                "p_comment": self._draw_strings(
                    "part", "p_comment", self._comment_domain(n), n
                ),
            },
        )

    def _gen_partsupp(self, db: Database) -> None:
        n_part = self.cardinality("part")
        n_supp = self.cardinality("supplier")
        per_part = max(1, min(4, n_supp))
        partkeys = np.repeat(
            np.arange(1, n_part + 1, dtype=np.int64), per_part
        )
        offsets = np.tile(np.arange(per_part, dtype=np.int64), n_part)
        suppkeys = (
            (partkeys - 1 + offsets * max(1, n_supp // per_part)) % n_supp
        ) + 1
        n = partkeys.shape[0]
        db.load_table(
            "partsupp",
            {
                "ps_partkey": partkeys,
                "ps_suppkey": suppkeys,
                "ps_availqty": self._draw(
                    "partsupp",
                    "ps_availqty",
                    np.arange(1, 10_000, dtype=np.int64),
                    n,
                ),
                "ps_supplycost": self._money(
                    "partsupp", "ps_supplycost", n, 1.0, 1000.0
                ),
                "ps_comment": self._draw_strings(
                    "partsupp", "ps_comment", self._comment_domain(n), n
                ),
            },
        )

    def _gen_orders(self, db: Database) -> None:
        n = self.cardinality("orders")
        custkeys = db.table("customer").column_array("c_custkey")
        dates = np.arange(TPCD_DATE_MIN, TPCD_DATE_MAX - 150, dtype=np.int64)
        n_clerks = max(2, n // 100)
        db.load_table(
            "orders",
            {
                "o_orderkey": np.arange(1, n + 1, dtype=np.int64),
                "o_custkey": self._draw("orders", "o_custkey", custkeys, n),
                "o_orderstatus": self._draw_strings(
                    "orders", "o_orderstatus", tpcd.ORDER_STATUSES, n
                ),
                "o_totalprice": self._money(
                    "orders", "o_totalprice", n, 800.0, 500_000.0
                ),
                "o_orderdate": self._draw(
                    "orders", "o_orderdate", dates, n
                ),
                "o_orderpriority": self._draw_strings(
                    "orders", "o_orderpriority", tpcd.ORDER_PRIORITIES, n
                ),
                "o_clerk": self._draw_strings(
                    "orders",
                    "o_clerk",
                    [f"Clerk#{i:09d}" for i in range(n_clerks)],
                    n,
                ),
                "o_shippriority": np.zeros(n, dtype=np.int64),
                "o_comment": self._draw_strings(
                    "orders", "o_comment", self._comment_domain(n), n
                ),
            },
        )

    def _gen_lineitem(self, db: Database) -> None:
        n = self.cardinality("lineitem")
        orderkeys = db.table("orders").column_array("o_orderkey")
        orderdates = db.table("orders").column_array("o_orderdate")
        partkeys = db.table("part").column_array("p_partkey")
        suppkeys = db.table("supplier").column_array("s_suppkey")

        l_orderkey = self._draw("lineitem", "l_orderkey", orderkeys, n)
        # deterministic per-order line numbers
        order = np.argsort(l_orderkey, kind="stable")
        sorted_keys = l_orderkey[order]
        linenumbers = np.empty(n, dtype=np.int64)
        counter = np.ones(n, dtype=np.int64)
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate([[0], boundaries])
        for start, stop in zip(starts, np.concatenate([boundaries, [n]])):
            counter[start:stop] = np.arange(1, stop - start + 1)
        linenumbers[order] = counter

        # ship/commit/receipt dates follow the parent order's date;
        # o_orderkey is np.arange(1, n+1) so a vectorized sorted lookup
        # replaces the dict (whose iteration order is construction-order
        # dependent) and keeps row content a pure function of the seed
        base_dates = orderdates[
            np.searchsorted(orderkeys, l_orderkey)
        ].astype(np.int64)
        ship_lag = self._draw(
            "lineitem", "l_shipdate", np.arange(1, 122, dtype=np.int64), n
        )
        commit_lag = self._draw(
            "lineitem", "l_commitdate", np.arange(30, 91, dtype=np.int64), n
        )
        receipt_lag = self._draw(
            "lineitem", "l_receiptdate", np.arange(1, 31, dtype=np.int64), n
        )

        db.load_table(
            "lineitem",
            {
                "l_orderkey": l_orderkey,
                "l_partkey": self._draw(
                    "lineitem", "l_partkey", partkeys, n
                ),
                "l_suppkey": self._draw(
                    "lineitem", "l_suppkey", suppkeys, n
                ),
                "l_linenumber": linenumbers,
                "l_quantity": self._draw(
                    "lineitem",
                    "l_quantity",
                    np.arange(1, 51, dtype=np.int64),
                    n,
                ),
                "l_extendedprice": self._money(
                    "lineitem", "l_extendedprice", n, 900.0, 100_000.0
                ),
                "l_discount": self._draw(
                    "lineitem",
                    "l_discount",
                    np.round(np.arange(0.0, 0.11, 0.01), 2),
                    n,
                ),
                "l_tax": self._draw(
                    "lineitem",
                    "l_tax",
                    np.round(np.arange(0.0, 0.09, 0.01), 2),
                    n,
                ),
                "l_returnflag": self._draw_strings(
                    "lineitem", "l_returnflag", tpcd.RETURN_FLAGS, n
                ),
                "l_linestatus": self._draw_strings(
                    "lineitem", "l_linestatus", tpcd.LINE_STATUSES, n
                ),
                "l_shipdate": base_dates + ship_lag,
                "l_commitdate": base_dates + commit_lag,
                "l_receiptdate": base_dates + ship_lag + receipt_lag,
                "l_shipinstruct": self._draw_strings(
                    "lineitem",
                    "l_shipinstruct",
                    tpcd.SHIP_INSTRUCTIONS,
                    n,
                ),
                "l_shipmode": self._draw_strings(
                    "lineitem", "l_shipmode", tpcd.SHIP_MODES, n
                ),
                "l_comment": self._draw_strings(
                    "lineitem", "l_comment", self._comment_domain(n), n
                ),
            },
        )

    def _money(self, table, column, size, low, high):
        """Zipfian draw over a discretized currency domain."""
        domain = np.round(np.linspace(low, high, num=2001), 2)
        return self._draw(table, column, domain, size)


def make_tpcd_database(
    scale: float = 0.01, z: object = 0.0, seed: int = 42
) -> Database:
    """One-call constructor for the paper's four experiment databases.

    ``z`` may be 0, 2, 4 (TPCD_0 / TPCD_2 / TPCD_4) or the string ``"mix"``
    (TPCD_MIX).
    """
    skew = SkewSpec.mixed(seed) if z == MIX else SkewSpec(z=z)
    return TpcdGenerator(scale=scale, skew=skew, seed=seed).generate()
