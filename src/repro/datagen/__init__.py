"""Skewed TPC-D data generation.

Reimplements the authors' downloadable "TPC-D data generation with skew"
tool (paper Sec 8.1 and reference [17]): the standard 8-table TPC-D schema,
with every generated column drawn from a Zipfian distribution whose
parameter z ranges from 0 (uniform) to 4 (highly skewed), and a MIX mode
that assigns each column a random z in [0, 4].

Public API::

    from repro.datagen import (
        zipf_probabilities, zipf_sample, SkewSpec,
        tpcd_schema, TpcdGenerator, make_tpcd_database,
        date_to_daynum, daynum_to_date,
    )
"""

from repro.datagen.zipf import zipf_probabilities, zipf_sample
from repro.datagen.dates import date_to_daynum, daynum_to_date
from repro.datagen.tpcd import tpcd_schema, TPCD_TABLE_CARDINALITIES
from repro.datagen.generator import SkewSpec, TpcdGenerator, make_tpcd_database

__all__ = [
    "zipf_probabilities",
    "zipf_sample",
    "SkewSpec",
    "tpcd_schema",
    "TPCD_TABLE_CARDINALITIES",
    "TpcdGenerator",
    "make_tpcd_database",
    "date_to_daynum",
    "daynum_to_date",
]
