"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to discriminate the usual failure
modes (bad schema, bad SQL, missing statistics, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """A schema or catalog object is missing, duplicated, or malformed."""


class StorageError(ReproError):
    """A table's stored data is inconsistent with its schema."""


class DataGenerationError(ReproError):
    """Invalid parameters were passed to the data generator."""


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class SqlLexError(SqlError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class SqlParseError(SqlError):
    """The token stream does not form a query in the supported subset."""


class SqlBindError(SqlError):
    """A parsed query references tables or columns not in the catalog."""


class StatisticsError(ReproError):
    """A statistic could not be built, found, or updated."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a query."""


class ExecutionError(ReproError):
    """A physical plan failed while being executed."""


class WorkloadError(ReproError):
    """Invalid workload specification or generation parameters."""


class PolicyError(ReproError):
    """A statistics-management policy was configured inconsistently."""


class ServiceError(ReproError):
    """The statistics-management service was misused or misconfigured."""


class ServiceRejectedError(ServiceError):
    """The service refused a request under load (admission control).

    Raised on the submit path when the admission queue is past its
    high-water mark or the session exceeded its rate limit.  Carries a
    ``retry_after`` hint in seconds: the client should back off at least
    that long before resubmitting.

    Attributes:
        retry_after: suggested client back-off in seconds (> 0).
        reason: short machine-readable cause (``"queue_full"`` or
            ``"rate_limited"``).
    """

    def __init__(self, message: str, retry_after: float, reason: str) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.reason = reason


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated repro API was used.

    Distinct from the built-in :class:`DeprecationWarning` so the test
    suite can escalate *first-party* deprecations to errors without being
    derailed by third-party libraries deprecating their own internals.
    """
