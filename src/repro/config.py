"""Tunable constants for the optimizer, statistics, and MNSA algorithms.

The paper treats several values as system-wide constants of the database
engine (Sec 4.1: "Magic numbers are system wide constants between 0 and 1
that are predetermined for various kinds of predicates").  We gather them
here so experiments can vary them explicitly instead of monkey-patching.

Four config dataclasses exist:

* :class:`MagicNumbers` — the default selectivities an optimizer falls back
  to when no statistic covers a predicate.
* :class:`CostModelConfig` — per-row / per-page constants of the physical
  cost model, plus statistics build/update cost constants.
* :class:`OptimizerConfig` — everything the optimizer needs, including the
  two above plus histogram resolution and sampling defaults.
* :class:`ServiceConfig` — knobs of the online statistics-management
  service (:mod:`repro.service`): capture-log capacity, advisor worker
  pool, staleness-monitor cadence and refresh budget.

``MnsaConfig`` (the paper's epsilon and t) lives in :mod:`repro.core.mnsa`
next to the algorithm it parameterizes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RefreshPolicy(enum.Enum):
    """What triggers a statistics refresh in the staleness monitor.

    * ``CHURN`` — the SQL Server 7.0 baseline: a table is refreshed once
      its row-modification counter reaches ``staleness_fraction`` of its
      row count, regardless of whether estimates actually degraded.
    * ``QERROR`` — execution feedback: a table is refreshed once the
      decayed observed q-error on any of its feedback targets reaches
      ``qerror_refresh_threshold``; churn counters are ignored.
    * ``HYBRID`` — union of both triggers, feedback-flagged tables first.

    ``QERROR`` and ``HYBRID`` require ``feedback_enabled=True`` — without
    a :class:`~repro.feedback.store.FeedbackStore` there is no error
    signal to act on.
    """

    CHURN = "churn"
    QERROR = "qerror"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class MagicNumbers:
    """Default selectivities used when no applicable statistic exists.

    These follow the System-R lineage the paper alludes to (it quotes 0.30
    for a range predicate in Sec 4.1).  All values are fractions in (0, 1).

    Attributes:
        equality: selectivity of ``col = const`` without statistics.
        range_: selectivity of ``col < const`` / ``col > const`` etc.
        between: selectivity of ``col BETWEEN lo AND hi``.
        inequality: selectivity of ``col <> const``.
        in_list_per_item: per-item selectivity for ``col IN (...)``; the
            predicate selectivity is ``min(1, n_items * in_list_per_item)``.
        join: selectivity of an equijoin predicate with no statistics on
            either side (fraction of the cross product retained).
        group_by_fraction: assumed fraction of rows that are distinct in the
            grouping column(s) — the paper's Sec 4.1 example uses 0.01.
        like: selectivity of a LIKE pattern predicate.
    """

    equality: float = 0.10
    range_: float = 0.30
    between: float = 0.25
    inequality: float = 0.90
    in_list_per_item: float = 0.10
    join: float = 0.10
    group_by_fraction: float = 0.01
    like: float = 0.10

    def __post_init__(self) -> None:
        for name in (
            "equality",
            "range_",
            "between",
            "inequality",
            "in_list_per_item",
            "join",
            "group_by_fraction",
            "like",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"magic number {name!r} must be in (0, 1], got {value}"
                )


@dataclass(frozen=True)
class CostModelConfig:
    """Constants of the physical cost model (arbitrary "work units").

    The absolute scale is meaningless; only ratios matter, exactly as in a
    real optimizer.  Statistics build/update costs use the same units so the
    Figure 3/4 and Table 1 reductions are directly comparable.

    Attributes:
        page_size_bytes: bytes per page for I/O cost computation.
        io_page_cost: cost to read or write one page sequentially.
        random_io_factor: multiplier for a random page access (index lookup).
        cpu_tuple_cost: cost to process one tuple through an operator.
        cpu_compare_cost: cost of one comparison (sorting, probing).
        hash_build_cost: per-tuple cost of inserting into a hash table.
        hash_probe_cost: per-tuple cost of probing a hash table.
        sort_constant: multiplier on ``n * log2(n)`` comparisons for sorts.
        stat_scan_cost_per_row: per-row cost of scanning a table to build a
            statistic (per column included in the statistic).
        stat_sort_constant: multiplier on ``n * log2(n)`` for the sort that
            histogram construction performs.
        stat_fixed_cost: fixed per-statistic overhead (catalog writes etc.).
        optimizer_call_cost: cost charged for one optimizer invocation; MNSA
            pays three of these per statistic created (Sec 4.3).
        stat_incremental_cost_per_row: per-inserted-row cost of folding a
            value into an existing histogram (incremental maintenance,
            paper ref [8]); orders of magnitude below a full rebuild.
    """

    page_size_bytes: int = 8192
    io_page_cost: float = 1.0
    random_io_factor: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_compare_cost: float = 0.005
    hash_build_cost: float = 0.02
    hash_probe_cost: float = 0.01
    sort_constant: float = 0.012
    stat_scan_cost_per_row: float = 0.02
    stat_sort_constant: float = 0.01
    stat_fixed_cost: float = 50.0
    optimizer_call_cost: float = 5.0
    stat_incremental_cost_per_row: float = 0.002


@dataclass(frozen=True)
class OptimizerConfig:
    """Aggregate configuration handed to :class:`repro.optimizer.Optimizer`.

    Attributes:
        magic: the magic-number table.
        cost: the cost-model constants.
        histogram_buckets: number of buckets built per histogram.
        sample_rows: if not ``None``, statistics are built from a random
            sample of at most this many rows instead of a full scan.
        max_in_list_items: IN lists longer than this are estimated as a
            range predicate rather than a union of equalities.
        enable_index_paths: whether index access paths are considered.
        enable_merge_join: whether sort-merge joins are considered.
        enable_hash_join: whether hash joins are considered.
        enable_bushy_joins: whether bushy join trees are enumerated in
            addition to left-deep ones (System R's default is left-deep;
            bushy enlarges the plan space at extra optimization cost).
        enable_joint_histograms: build a 2-D joint histogram (paper
            Sec 3's Phased strategy) inside every two-column statistic,
            improving range-conjunction estimates on correlated columns.
            Off by default: SQL Server 7.0's statistics carry only
            prefix densities, and fidelity to it is the baseline.
        joint_histogram_cells: cell budget per joint histogram.
        joint_histogram_kind: construction strategy, ``"mhist"`` or
            ``"phased"`` (paper Sec 3's two named strategies).
        enable_histogram_join_estimation: estimate single-column equijoin
            selectivity by aligning the two sides' histograms (exact on
            disjoint/partially-overlapping domains) instead of the global
            ``1 / max(ndv)`` containment rule.  Off by default: the ndv
            rule is the baseline the paper's experiments imply, and the
            reproduction benches are calibrated against it.
    """

    magic: MagicNumbers = field(default_factory=MagicNumbers)
    cost: CostModelConfig = field(default_factory=CostModelConfig)
    histogram_buckets: int = 50
    sample_rows: int | None = None
    max_in_list_items: int = 16
    enable_index_paths: bool = True
    enable_merge_join: bool = True
    enable_hash_join: bool = True
    enable_bushy_joins: bool = False
    enable_joint_histograms: bool = False
    joint_histogram_cells: int = 256
    joint_histogram_kind: str = "mhist"
    enable_histogram_join_estimation: bool = False


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the online statistics-management service.

    Attributes:
        capture_capacity: ring-buffer capacity of the workload capture
            log.  When full, the oldest unprocessed event is evicted (and
            counted in the ``capture.dropped`` metric) — capture must
            never block or fail the query path.
        advisor_workers: number of background advisor worker threads
            draining the capture log.
        advisor_batch_size: maximum events one worker drains per wakeup.
        advisor_poll_seconds: how long an idle worker blocks waiting for
            new capture events before re-checking for shutdown.
        creation_policy: ``"mnsa"`` or ``"mnsad"`` — which analysis the
            advisor workers run per captured query (MNSA/D additionally
            drop-lists statistics that never changed a plan, Sec 5.1).
        staleness_fraction: the SQL Server 7.0 refresh trigger — a table
            is stale once its row-modification counter reaches this
            fraction of its row count (see
            :meth:`repro.stats.manager.StatisticsManager.tables_needing_refresh`).
        staleness_poll_seconds: cadence of the staleness monitor.
        refresh_budget_per_cycle: maximum refresh work units the monitor
            spends per wakeup; remaining stale tables are deferred to the
            next cycle (``monitor.deferred`` metric).  ``None`` means
            unbounded.
        purge_drop_list_before_refresh: physically delete drop-listed
            statistics on a table before refreshing it — the paper's
            Sec 6 observation that refreshing hidden statistics is
            exactly the waste the drop-list exists to avoid.
        execute_queries: execute query plans (True) or stop after
            optimization (False, plan-only service).
        plan_cache_size: capacity of the shared
            :class:`~repro.optimizer.cache.PlanCache` the service's
            session optimizer and advisor workers consult; ``0``
            disables plan caching entirely.
        feedback_enabled: collect per-operator estimated-vs-actual
            cardinality observations into a
            :class:`~repro.feedback.store.FeedbackStore` and let the
            feedback policy drive refresh/re-tune decisions.  Off by
            default: the paper's experiments predate execution feedback
            and must stay byte-identical.
        feedback_capacity: maximum (table, column-set) targets the
            feedback store tracks before least-recently-observed
            eviction.
        refresh_policy: which trigger drives the staleness monitor
            (:class:`RefreshPolicy`; a plain ``"churn"`` / ``"qerror"``
            / ``"hybrid"`` string is accepted and coerced).
        qerror_refresh_threshold: decayed q-error at which a table
            becomes due for refresh under ``qerror`` / ``hybrid``.
        qerror_retune_threshold: worst per-plan q-error at which the
            service queues an MNSA re-tune for the offending query.
        learned_enabled: maintain a
            :class:`~repro.learned.CorrectionStore` of online selectivity
            corrections fed from execution feedback, and apply it inside
            the service optimizers' selectivity estimation.  Requires
            ``feedback_enabled`` (the corrections are fed by the same
            operator observations).
        learned_model: correction-model class — ``"multiplicative"``
            (exact per-target factors) or ``"bucket"`` (hashed
            predicate-feature regressor).
        learned_decay: EWMA decay of the correction models, in (0, 1).
        learned_max_factor: corrections are bounded to
            ``[1/learned_max_factor, learned_max_factor]``.
        learned_capacity: maximum tracked correction entries before
            least-recently-observed eviction.
        shards: number of service/statistics shards.  Each shard owns the
            statistics, capture-log segment, advisor workers, and
            staleness monitor of the tables routed to it (see
            :class:`~repro.stats.router.ShardRouter`), with its own
            statement lock and epoch, so one tenant's churn cannot
            serialize — or invalidate cached plans of — queries over
            other shards' tables.  ``1`` reproduces the pre-sharding
            single-lock service exactly.
        service_workers: request worker threads draining the admission
            queue.  ``0`` (the default) keeps the submit path
            synchronous — requests execute on the caller's thread with
            no queueing, exactly the pre-async behaviour.
        queue_capacity: hard bound of the admission queue (async mode).
        queue_high_water: backpressure threshold — once the queue holds
            this many requests, new submissions are rejected with a
            :class:`~repro.errors.ServiceRejectedError` carrying a
            retry-after hint.  ``None`` means ``queue_capacity`` (reject
            only when full).
        retry_after_seconds: the retry-after hint attached to
            queue-full / rate-limit rejections.
        session_rate_limit: per-session sustained request rate in
            requests/second, enforced with a token bucket; ``None``
            (default) disables per-session rate limiting.
        session_rate_burst: token-bucket burst size — a session may
            submit this many requests back-to-back before the sustained
            rate applies.
        degraded_backlog_high: graceful-degradation trigger — when the
            total advisor backlog (captured events awaiting analysis
            across all shards) reaches this threshold, new queries are
            planned with magic-number selectivities only (no statistics
            locks taken; counted in ``service.degraded``) instead of
            piling more work onto the advisor.  ``None`` (default)
            disables degradation.
        degraded_backlog_low: hysteresis release — degradation stays
            engaged until the backlog falls back to this level.  Must be
            below ``degraded_backlog_high``.
        starvation_cycles: staleness-monitor fairness bound — a due
            table deferred by the refresh budget for this many
            consecutive cycles counts as starved (``monitor.starved``);
            the monitor refreshes longest-waiting tables first so the
            counter stays at zero under any steady-state budget.
        backend: the engine the advisor workers run their analyses
            against — a name from
            :data:`repro.backends.base.BACKEND_NAMES` (``"memory"``,
            the default, or ``"sqlite"``).  With a foreign engine the
            service shares one backend instance across workers, replays
            DML into it, and mirrors creation/drop decisions into
            ``database.stats`` (``backend.*`` metrics).
    """

    capture_capacity: int = 1024
    advisor_workers: int = 2
    advisor_batch_size: int = 16
    advisor_poll_seconds: float = 0.05
    creation_policy: str = "mnsad"
    staleness_fraction: float = 0.2
    staleness_poll_seconds: float = 0.25
    refresh_budget_per_cycle: float | None = None
    purge_drop_list_before_refresh: bool = False
    execute_queries: bool = True
    plan_cache_size: int = 256
    feedback_enabled: bool = False
    feedback_capacity: int = 512
    refresh_policy: RefreshPolicy = RefreshPolicy.CHURN
    qerror_refresh_threshold: float = 4.0
    qerror_retune_threshold: float = 10.0
    learned_enabled: bool = False
    learned_model: str = "multiplicative"
    learned_decay: float = 0.8
    learned_max_factor: float = 32.0
    learned_capacity: int = 512
    shards: int = 1
    service_workers: int = 0
    queue_capacity: int = 256
    queue_high_water: int | None = None
    retry_after_seconds: float = 0.05
    session_rate_limit: float | None = None
    session_rate_burst: int = 16
    degraded_backlog_high: int | None = None
    degraded_backlog_low: int = 0
    starvation_cycles: int = 8
    backend: str = "memory"

    def __post_init__(self) -> None:
        if self.capture_capacity < 1:
            raise ValueError(
                f"capture_capacity must be >= 1, got {self.capture_capacity}"
            )
        if self.advisor_workers < 0:
            raise ValueError(
                f"advisor_workers must be >= 0, got {self.advisor_workers}"
            )
        if self.advisor_batch_size < 1:
            raise ValueError(
                f"advisor_batch_size must be >= 1, got "
                f"{self.advisor_batch_size}"
            )
        if self.advisor_poll_seconds <= 0:
            raise ValueError("advisor_poll_seconds must be > 0")
        if self.creation_policy not in ("mnsa", "mnsad"):
            raise ValueError(
                f"creation_policy must be 'mnsa' or 'mnsad', got "
                f"{self.creation_policy!r}"
            )
        if not 0.0 < self.staleness_fraction <= 1.0:
            raise ValueError(
                f"staleness_fraction must be in (0, 1], got "
                f"{self.staleness_fraction}"
            )
        if self.staleness_poll_seconds <= 0:
            raise ValueError("staleness_poll_seconds must be > 0")
        if (
            self.refresh_budget_per_cycle is not None
            and self.refresh_budget_per_cycle <= 0
        ):
            raise ValueError(
                "refresh_budget_per_cycle must be > 0 or None, got "
                f"{self.refresh_budget_per_cycle}"
            )
        if self.plan_cache_size < 0:
            raise ValueError(
                f"plan_cache_size must be >= 0 (0 disables caching), got "
                f"{self.plan_cache_size}"
            )
        # frozen dataclass: coerce the string spelling in place
        object.__setattr__(
            self, "refresh_policy", RefreshPolicy(self.refresh_policy)
        )
        if self.feedback_capacity < 1:
            raise ValueError(
                f"feedback_capacity must be >= 1, got "
                f"{self.feedback_capacity}"
            )
        if self.qerror_refresh_threshold < 1.0:
            raise ValueError(
                f"qerror_refresh_threshold must be >= 1, got "
                f"{self.qerror_refresh_threshold}"
            )
        if self.qerror_retune_threshold < self.qerror_refresh_threshold:
            raise ValueError(
                "qerror_retune_threshold must be >= "
                "qerror_refresh_threshold, got "
                f"{self.qerror_retune_threshold} < "
                f"{self.qerror_refresh_threshold}"
            )
        if (
            self.refresh_policy is not RefreshPolicy.CHURN
            and not self.feedback_enabled
        ):
            raise ValueError(
                f"refresh_policy {self.refresh_policy.value!r} requires "
                "feedback_enabled=True"
            )
        if self.learned_model not in ("multiplicative", "bucket"):
            raise ValueError(
                f"learned_model must be 'multiplicative' or 'bucket', got "
                f"{self.learned_model!r}"
            )
        if not 0.0 < self.learned_decay < 1.0:
            raise ValueError(
                f"learned_decay must be in (0, 1), got {self.learned_decay}"
            )
        if self.learned_max_factor <= 1.0:
            raise ValueError(
                f"learned_max_factor must be > 1, got "
                f"{self.learned_max_factor}"
            )
        if self.learned_capacity < 1:
            raise ValueError(
                f"learned_capacity must be >= 1, got {self.learned_capacity}"
            )
        if self.learned_enabled and not self.feedback_enabled:
            raise ValueError(
                "learned_enabled=True requires feedback_enabled=True "
                "(corrections are fed by execution feedback)"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.service_workers < 0:
            raise ValueError(
                f"service_workers must be >= 0, got {self.service_workers}"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.queue_high_water is not None and not (
            1 <= self.queue_high_water <= self.queue_capacity
        ):
            raise ValueError(
                "queue_high_water must be in [1, queue_capacity], got "
                f"{self.queue_high_water} (capacity {self.queue_capacity})"
            )
        if self.retry_after_seconds <= 0:
            raise ValueError(
                f"retry_after_seconds must be > 0, got "
                f"{self.retry_after_seconds}"
            )
        if (
            self.session_rate_limit is not None
            and self.session_rate_limit <= 0
        ):
            raise ValueError(
                "session_rate_limit must be > 0 or None, got "
                f"{self.session_rate_limit}"
            )
        if self.session_rate_burst < 1:
            raise ValueError(
                f"session_rate_burst must be >= 1, got "
                f"{self.session_rate_burst}"
            )
        if self.degraded_backlog_high is not None:
            if self.degraded_backlog_high < 1:
                raise ValueError(
                    "degraded_backlog_high must be >= 1 or None, got "
                    f"{self.degraded_backlog_high}"
                )
            if not 0 <= self.degraded_backlog_low < self.degraded_backlog_high:
                raise ValueError(
                    "degraded_backlog_low must be in "
                    "[0, degraded_backlog_high), got "
                    f"{self.degraded_backlog_low} (high "
                    f"{self.degraded_backlog_high})"
                )
        elif self.degraded_backlog_low != 0:
            raise ValueError(
                "degraded_backlog_low requires degraded_backlog_high"
            )
        if self.starvation_cycles < 1:
            raise ValueError(
                f"starvation_cycles must be >= 1, got "
                f"{self.starvation_cycles}"
            )
        # local import: repro.backends.sqlite imports this module
        from repro.backends.base import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {', '.join(BACKEND_NAMES)}, "
                f"got {self.backend!r}"
            )


DEFAULT_CONFIG = OptimizerConfig()
"""Shared default configuration; treat as immutable."""
