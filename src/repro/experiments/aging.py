"""The aging experiment (paper Sec 6, details deferred to its ref [5]).

"The basic idea behind aging is that statistics with high creation/update
cost that have been dropped after being found non-essential for a
workload should not be recreated immediately if the same (or similar)
workload repeats on the server."

Scenario: an update-heavy workload runs twice through the online advisor
with an aggressive drop policy in between, so statistics found
non-essential get physically dropped.  Without aging the repeat run
rebuilds them immediately; with aging the rebuilds are dampened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.advisor import StatisticsAdvisor
from repro.core.mnsa import MnsaConfig
from repro.core.policy import AgingPolicy, AutoDropPolicy, CreationPolicy
from repro.workload import generate_workload


@dataclass
class AgingRow:
    """One arm (with or without aging) of the repeat-workload scenario."""

    aging_enabled: bool
    statistics_created: int
    creation_cost: float
    execution_cost: float
    statistics_dropped: int


def run_aging_experiment(
    database_factory: Callable,
    z,
    workload_name: str = "U50-S-100",
    repeats: int = 2,
    aging_window: int = 500,
    expensive_query_cost: float = float("inf"),
):
    """Run the repeat-workload scenario with and without aging.

    Returns ``(without_aging, with_aging)`` :class:`AgingRow` pairs.
    """
    rows = []
    for aging in (None, AgingPolicy(
        window=aging_window, expensive_query_cost=expensive_query_cost
    )):
        db = database_factory(z)
        workload = generate_workload(db, workload_name)
        advisor = StatisticsAdvisor(
            db,
            creation_policy=CreationPolicy.MNSAD,
            mnsa_config=MnsaConfig(),
            drop_policy=AutoDropPolicy(
                refresh_fraction=0.05,
                max_updates_before_drop=1,
                drop_list_only=True,
            ),
            aging=aging,
        )
        for _ in range(repeats):
            advisor.run_workload(workload.statements)
        rows.append(
            AgingRow(
                aging_enabled=aging is not None,
                statistics_created=len(advisor.report.created),
                creation_cost=advisor.report.creation_cost,
                execution_cost=advisor.report.execution_cost,
                statistics_dropped=len(advisor.report.dropped),
            )
        )
    return tuple(rows)
