"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's reported numbers and probe *why* the
algorithms behave as they do:

* :func:`run_threshold_sweep` — sensitivity of MNSA to the t threshold
  (the paper fixes t = 20% and calls it conservative; the sweep shows the
  creation-cost / plan-quality trade-off directly).
* :func:`run_next_stat_ablation` — the Sec 4.2 costliest-operator
  heuristic vs. building candidates in arbitrary (candidate-list) order.
* :func:`run_shrinking_ablation` — MNSA followed by Shrinking Set vs.
  MNSA/D: retained statistics, update cost, optimizer calls.
* :func:`run_equivalence_ablation` — Shrinking Set under execution-tree
  vs. t-Optimizer-Cost equivalence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.backends.memory import MemoryBackend
from repro.core.candidates import candidate_statistics
from repro.core.equivalence import (
    ExecutionTreeEquivalence,
    TOptimizerCostEquivalence,
)
from repro.core.mnsa import MnsaConfig, mnsa_for_query, mnsa_for_workload
from repro.core.mnsad import mnsad_for_workload
from repro.core.next_stat import find_next_stat_to_build
from repro.core.shrinking import shrinking_set
from repro.experiments.common import workload_execution_cost
from repro.optimizer import OptimizationRequest, Optimizer
from repro.workload import generate_workload


@dataclass
class ThresholdSweepRow:
    """One t value of the threshold sweep."""

    t_percent: float
    created_count: int
    creation_cost: float
    execution_cost: float


def run_threshold_sweep(
    database_factory: Callable,
    z,
    t_values=(5.0, 10.0, 20.0, 40.0, 80.0),
    workload_name: str = "U0-S-100",
    max_queries: int = 25,
) -> List[ThresholdSweepRow]:
    """MNSA at several t thresholds over identical databases/workloads."""
    rows = []
    for t in t_values:
        db = database_factory(z)
        queries = generate_workload(db, workload_name).queries()[:max_queries]
        backend = MemoryBackend(db, Optimizer(db))
        result = mnsa_for_workload(
            backend, queries, config=MnsaConfig(t_percent=t)
        )
        rows.append(
            ThresholdSweepRow(
                t_percent=t,
                created_count=len(result.created),
                creation_cost=result.creation_cost,
                execution_cost=workload_execution_cost(db, queries),
            )
        )
    return rows


@dataclass
class NextStatAblationResult:
    """Costliest-operator heuristic vs. arbitrary creation order."""

    heuristic_created: int
    heuristic_creation_cost: float
    arbitrary_created: int
    arbitrary_creation_cost: float


def _mnsa_arbitrary_order(db, optimizer, query, config, rng):
    """Figure 1 with FindNextStatToBuild replaced by a shuffled picker."""
    from repro.core.equivalence import TOptimizerCostEquivalence

    criterion = TOptimizerCostEquivalence(config.t_percent)
    remaining = [
        key
        for key in candidate_statistics(query, config.candidate_mode)
        if not db.stats.is_visible(key)
    ]
    rng.shuffle(remaining)
    created = []
    for _ in range(len(remaining) + 1):
        missing = optimizer.magic_variables(query)
        if not missing:
            break
        low = optimizer.optimize_request(
            OptimizationRequest(
                query, {v: config.epsilon for v in missing}
            )
        )
        high = optimizer.optimize_request(
            OptimizationRequest(
                query, {v: 1 - config.epsilon for v in missing}
            )
        )
        if criterion.costs_equivalent(low.cost, high.cost):
            break
        if not remaining:
            break
        key = remaining.pop(0)
        db.stats.create(key)
        created.append(key)
        optimizer.optimize(query)
    return created


def run_next_stat_ablation(
    database_factory: Callable,
    z,
    workload_name: str = "U0-S-100",
    max_queries: int = 25,
    seed: int = 3,
) -> NextStatAblationResult:
    """Compare statistic-pick strategies under identical budgets."""
    config = MnsaConfig()

    db_h = database_factory(z)
    queries = generate_workload(db_h, workload_name).queries()[:max_queries]
    backend_h = MemoryBackend(db_h, Optimizer(db_h))
    heuristic_created = 0
    for query in queries:
        heuristic_created += len(
            mnsa_for_query(backend_h, query, config=config).created
        )
    heuristic_cost = db_h.stats.creation_cost_total

    db_a = database_factory(z)
    queries_a = generate_workload(db_a, workload_name).queries()[:max_queries]
    opt_a = Optimizer(db_a)
    rng = random.Random(seed)
    arbitrary_created = 0
    for query in queries_a:
        arbitrary_created += len(
            _mnsa_arbitrary_order(db_a, opt_a, query, config, rng)
        )
    arbitrary_cost = db_a.stats.creation_cost_total

    return NextStatAblationResult(
        heuristic_created=heuristic_created,
        heuristic_creation_cost=heuristic_cost,
        arbitrary_created=arbitrary_created,
        arbitrary_creation_cost=arbitrary_cost,
    )


@dataclass
class ShrinkingAblationResult:
    """MNSA + Shrinking Set vs. MNSA/D."""

    mnsa_retained: int
    shrink_retained: int
    mnsad_retained: int
    shrink_update_cost: float
    mnsad_update_cost: float
    shrink_optimizer_calls: int
    mnsad_optimizer_calls: int
    shrink_execution_cost: float
    mnsad_execution_cost: float


def run_shrinking_ablation(
    database_factory: Callable,
    z,
    workload_name: str = "U25-S-100",
    max_queries: int = 25,
) -> ShrinkingAblationResult:
    """The Sec 5 trade-off: guaranteed-minimal vs. cheap-and-greedy."""
    # arm 1: MNSA then Shrinking Set (guaranteed essential set)
    db_s = database_factory(z)
    queries = generate_workload(db_s, workload_name).queries()[:max_queries]
    backend_s = MemoryBackend(db_s, Optimizer(db_s))
    mnsa_for_workload(backend_s, queries)
    mnsa_retained = len(db_s.stats.visible_keys())
    shrink = shrinking_set(backend_s, queries)
    shrink_update = db_s.stats.update_cost_of_keys(shrink.essential)
    shrink_exec = workload_execution_cost(db_s, queries)

    # arm 2: MNSA/D
    db_d = database_factory(z)
    queries_d = generate_workload(db_d, workload_name).queries()[:max_queries]
    backend_d = MemoryBackend(db_d, Optimizer(db_d))
    mnsad = mnsad_for_workload(backend_d, queries_d)
    db_d.stats.purge_drop_list()
    mnsad_update = db_d.stats.update_cost_of_keys(db_d.stats.visible_keys())
    mnsad_exec = workload_execution_cost(db_d, queries_d)

    return ShrinkingAblationResult(
        mnsa_retained=mnsa_retained,
        shrink_retained=len(shrink.essential),
        mnsad_retained=len(db_d.stats.visible_keys()),
        shrink_update_cost=shrink_update,
        mnsad_update_cost=mnsad_update,
        shrink_optimizer_calls=shrink.optimizer_calls,
        mnsad_optimizer_calls=mnsad.optimizer_calls,
        shrink_execution_cost=shrink_exec,
        mnsad_execution_cost=mnsad_exec,
    )


@dataclass
class EquivalenceAblationRow:
    """Shrinking Set under one equivalence criterion."""

    criterion: str
    retained: int
    update_cost: float
    execution_cost: float


def run_equivalence_ablation(
    database_factory: Callable,
    z,
    workload_name: str = "U0-S-100",
    max_queries: int = 20,
    t_values=(5.0, 20.0, 50.0),
) -> List[EquivalenceAblationRow]:
    """Execution-tree vs. t-cost equivalence in the Shrinking Set."""
    rows = []
    criteria = [("execution_tree", ExecutionTreeEquivalence())]
    criteria += [
        (f"t_cost_{t:g}", TOptimizerCostEquivalence(t)) for t in t_values
    ]
    for name, criterion in criteria:
        db = database_factory(z)
        queries = generate_workload(db, workload_name).queries()[:max_queries]
        backend = MemoryBackend(db, Optimizer(db))
        mnsa_for_workload(backend, queries, config=MnsaConfig(t_percent=1e-9))
        result = shrinking_set(backend, queries, criterion=criterion)
        rows.append(
            EquivalenceAblationRow(
                criterion=name,
                retained=len(result.essential),
                update_cost=db.stats.update_cost_of_keys(result.essential),
                execution_cost=workload_execution_cost(db, queries),
            )
        )
    return rows
