"""Figure 3: Candidate Statistics algorithm vs. Exhaustive (paper Sec 8.2).

For each database × workload: build every *exhaustive* candidate
statistic vs. the Sec 7.1 heuristic candidates; compare statistics
creation cost and workload execution cost.  The paper reports 50-80%
creation-time reduction with execution-cost increase never above 3%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.candidates import (
    CandidateMode,
    workload_candidate_statistics,
)
from repro.experiments.common import (
    percent_increase,
    percent_reduction,
    workload_execution_cost,
)
from repro.workload import generate_workload


@dataclass
class Figure3Result:
    """One bar of Figure 3 (one database × workload combination).

    Attributes:
        database: e.g. "TPCD_2".
        workload: e.g. "U25-S-100".
        exhaustive_count / heuristic_count: statistics built per arm.
        exhaustive_creation_cost / heuristic_creation_cost: work units.
        creation_reduction_percent: the Figure 3 bar (paper: 50-80%).
        execution_increase_percent: quality loss (paper: <= 3%).
    """

    database: str
    workload: str
    exhaustive_count: int
    heuristic_count: int
    exhaustive_creation_cost: float
    heuristic_creation_cost: float
    exhaustive_execution_cost: float
    heuristic_execution_cost: float

    @property
    def creation_reduction_percent(self) -> float:
        return percent_reduction(
            self.exhaustive_creation_cost, self.heuristic_creation_cost
        )

    @property
    def execution_increase_percent(self) -> float:
        return percent_increase(
            self.exhaustive_execution_cost, self.heuristic_execution_cost
        )


def run_figure3(
    database_factory: Callable,
    z,
    workload_name: str = "U25-S-100",
    max_queries: int = 40,
    workload_seed: int = 7,
) -> Figure3Result:
    """Run one Figure 3 bar.

    Args:
        database_factory: callable ``factory(z) -> Database`` producing
            identical fresh databases for both arms.
        z: skew setting (0, 2, 4, or "mix").
        workload_name: the paper's U<pct>-<S|C>-<n> naming.
        max_queries: cap on the number of workload queries analyzed
            (keeps the laptop-scale run fast; statistically immaterial).
    """
    arms = {}
    for mode in (CandidateMode.EXHAUSTIVE, CandidateMode.HEURISTIC):
        db = database_factory(z)
        workload = generate_workload(db, workload_name, seed=workload_seed)
        queries = workload.queries()[:max_queries]
        candidates = workload_candidate_statistics(queries, mode)
        for key in candidates:
            db.stats.create(key)
        arms[mode] = {
            "count": len(candidates),
            "creation": db.stats.creation_cost_total,
            "execution": workload_execution_cost(db, queries),
            "name": db.name,
        }
    exhaustive = arms[CandidateMode.EXHAUSTIVE]
    heuristic = arms[CandidateMode.HEURISTIC]
    return Figure3Result(
        database=heuristic["name"],
        workload=workload_name,
        exhaustive_count=exhaustive["count"],
        heuristic_count=heuristic["count"],
        exhaustive_creation_cost=exhaustive["creation"],
        heuristic_creation_cost=heuristic["creation"],
        exhaustive_execution_cost=exhaustive["execution"],
        heuristic_execution_cost=heuristic["execution"],
    )
