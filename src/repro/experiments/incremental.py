"""Incremental histogram maintenance vs counter-triggered full refresh.

Paper Sec 2 cites the approximate-maintenance line of work ([8]); this
experiment quantifies the trade-off in our substrate: a stream of insert
batches (drawn from a *shifted* distribution, so the data distribution
really drifts) maintained either by SQL Server-style full refreshes when
the modification counter trips, or by folding values into the existing
histograms and rebuilding only on degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.catalog import ColumnRef
from repro.experiments.accuracy import q_error
from repro.stats.statistic import StatKey


@dataclass
class MaintenanceRow:
    """One (strategy, insert-distribution) outcome."""

    strategy: str
    scenario: str  # "stationary" or "drift"
    maintenance_cost: float
    full_rebuilds: int
    q_error_geomean: float


def _insert_batch(db, rng, batch_rows: int, drift: bool) -> None:
    """Insert rows cloned from orders, optionally with drifted values."""
    data = db.table("orders")
    names = data.schema.column_names()
    n = data.row_count
    rows = []
    for _ in range(batch_rows):
        idx = int(rng.integers(0, n))
        row = {}
        for name in names:
            ref = ColumnRef("orders", name)
            raw = data.column_array(name)[idx]
            ctype = db.schema.column(ref).type.value
            if ctype == "string":
                row[name] = data.string_dictionary(name).decode(int(raw))
            elif ctype == "float":
                row[name] = float(raw)
            else:
                row[name] = int(raw)
        if drift:
            # new orders are systematically pricier and later
            row["o_totalprice"] = float(row["o_totalprice"]) * 1.8
            row["o_orderdate"] = int(row["o_orderdate"]) + 300
        rows.append(row)
    db.insert("orders", rows)


def _accuracy(db, rng, probes: int = 20) -> float:
    """Geometric-mean q-error of range estimates on o_totalprice."""
    import math

    values = db.table("orders").column_array("o_totalprice")
    hist = db.stats.get(StatKey("orders", ("o_totalprice",))).histogram
    errors = []
    for _ in range(probes):
        pivot = float(rng.choice(values))
        true = float((values <= pivot).mean())
        estimate = hist.selectivity_range(high=pivot)
        errors.append(
            q_error(estimate * values.shape[0], true * values.shape[0])
        )
    return math.exp(sum(math.log(e) for e in errors) / len(errors))


def run_incremental_maintenance_experiment(
    database_factory: Callable,
    z,
    batches: int = 15,
    batch_rows: int = 100,
    refresh_fraction: float = 0.2,
    seed: int = 9,
) -> List[MaintenanceRow]:
    """Compare the two maintenance strategies under insert drift."""
    stat_columns = ("o_totalprice", "o_orderdate")
    rows = []
    for scenario, drift in (("stationary", False), ("drift", True)):
        for strategy in ("full_refresh", "incremental"):
            db = database_factory(z)
            for column in stat_columns:
                db.stats.create(ColumnRef("orders", column))
            db.stats.update_cost_total = 0.0
            rng = np.random.default_rng(seed)
            rebuilds = 0
            for _ in range(batches):
                before = db.row_count("orders")
                _insert_batch(db, rng, batch_rows, drift)
                if strategy == "full_refresh":
                    data = db.table("orders")
                    threshold = refresh_fraction * before
                    if data.rows_modified_since_stats >= threshold:
                        db.stats.refresh_table("orders")
                        rebuilds += 1
                else:
                    inserted = {
                        column: db.table("orders").column_array(column)[
                            before:
                        ]
                        for column in stat_columns
                    }
                    db.stats.apply_incremental_inserts("orders", inserted)
                    for key in db.stats.keys_needing_rebuild("orders"):
                        db.stats.rebuild(key)
                        rebuilds += 1
            rows.append(
                MaintenanceRow(
                    strategy=strategy,
                    scenario=scenario,
                    maintenance_cost=db.stats.update_cost_total,
                    full_rebuilds=rebuilds,
                    q_error_geomean=_accuracy(db, rng),
                )
            )
    return rows
