"""Ablations over the statistics *representation* (orthogonal to the
paper's selection problem, Sec 2: "There is a large body of work that
studies representation of statistics ... we have studied the orthogonal
problem of deciding which column to build statistics on").

* :func:`run_histogram_kind_ablation` — MaxDiff vs equi-depth histograms:
  cardinality accuracy (q-error) and workload execution cost when every
  workload-relevant statistic is built with each kind.
* :func:`run_sampling_ablation` — full-scan vs sampled statistics
  construction: build cost vs accuracy, the trade-off motivating the
  sampling literature the paper cites ([3, 8, 9, 12, 14]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import OptimizerConfig
from repro.core.candidates import workload_candidate_statistics
from repro.experiments.accuracy import estimation_accuracy
from repro.experiments.common import workload_execution_cost
from repro.stats.histogram import HistogramKind
from repro.workload import generate_workload


@dataclass
class HistogramKindRow:
    kind: str
    q_error_geomean: float
    q_error_max: float
    execution_cost: float


def run_histogram_kind_ablation(
    database_factory: Callable,
    z,
    workload_name: str = "U0-S-100",
    max_queries: int = 20,
) -> List[HistogramKindRow]:
    """Build all workload candidates with each histogram kind."""
    rows = []
    for kind in (HistogramKind.MAXDIFF, HistogramKind.EQUI_DEPTH):
        db = database_factory(z)
        queries = generate_workload(db, workload_name).queries()[:max_queries]
        for key in workload_candidate_statistics(queries):
            db.stats.create(key, histogram_kind=kind)
        accuracy = estimation_accuracy(db, queries)
        rows.append(
            HistogramKindRow(
                kind=kind.value,
                q_error_geomean=accuracy.geometric_mean,
                q_error_max=accuracy.max_error,
                execution_cost=workload_execution_cost(db, queries),
            )
        )
    return rows


@dataclass
class JointHistogramRow:
    configuration: str
    q_error_geomean: float
    q_error_max: float


def _correlated_date_queries(db, count: int = 12):
    """Range-conjunction queries over lineitem's correlated date columns.

    l_commitdate and l_receiptdate both track l_shipdate by construction
    (generator adds bounded lags), so independence-based estimates of
    conjunctive ranges over them are systematically wrong.
    """
    import numpy as np

    from repro.sql.builder import QueryBuilder

    ship = db.table("lineitem").column_array("l_shipdate")
    rng = np.random.default_rng(5)
    queries = []
    for _ in range(count):
        pivot = int(rng.choice(ship))
        width = int(rng.integers(30, 200))
        queries.append(
            QueryBuilder(db.schema)
            .table("lineitem")
            .between("lineitem.l_shipdate", pivot - width, pivot + width)
            .between(
                "lineitem.l_commitdate", pivot - width, pivot + width
            )
            .select("lineitem.l_orderkey")
            .build()
        )
    return queries


def run_joint_histogram_ablation(
    database_factory: Callable, z, query_count: int = 12
) -> List[JointHistogramRow]:
    """Prefix densities only vs 2-D joint histograms, on queries with
    correlated range conjunctions (paper Sec 3's multi-dimensional
    histogram motivation)."""
    from repro.catalog import ColumnRef
    from repro.stats.statistic import StatKey

    rows = []
    for label, enabled in (("density only", False), ("joint 2-D", True)):
        db = database_factory(z)
        db.stats.config = OptimizerConfig(enable_joint_histograms=enabled)
        queries = _correlated_date_queries(db, query_count)
        db.stats.create(
            StatKey("lineitem", ("l_shipdate", "l_commitdate"))
        )
        db.stats.create(ColumnRef("lineitem", "l_commitdate"))
        accuracy = estimation_accuracy(db, queries)
        rows.append(
            JointHistogramRow(
                configuration=label,
                q_error_geomean=accuracy.geometric_mean,
                q_error_max=accuracy.max_error,
            )
        )
    return rows


@dataclass
class JoinEstimationRow:
    configuration: str
    q_error_geomean: float
    q_error_max: float


def run_join_estimation_ablation(
    database_factory: Callable, z, query_count: int = 10
) -> List[JoinEstimationRow]:
    """ndv containment rule vs histogram-aligned join estimation.

    The scenario where they differ: a fact table referencing only part
    of a dimension's key domain.  Deleting the suppliers below the
    median key leaves roughly half of lineitem's supplier references
    dangling — the ndv rule never notices the shrunken overlap, while
    histogram alignment accounts for it.
    """
    import math

    import numpy as np

    from repro.experiments.accuracy import q_error
    from repro.sql.builder import QueryBuilder
    from repro.stats.statistic import StatKey

    rows = []
    for label, enabled in (("1/max(ndv) rule", False), ("histogram join", True)):
        db = database_factory(z)
        # create a partial-overlap join domain: drop half the suppliers
        suppkeys = db.table("supplier").column_array("s_suppkey")
        median = float(np.median(suppkeys))
        db.delete("supplier", suppkeys < median)
        db.stats.config = OptimizerConfig(
            enable_histogram_join_estimation=enabled
        )
        db.stats.create(StatKey("lineitem", ("l_suppkey",)))
        db.stats.create(StatKey("supplier", ("s_suppkey",)))
        db.stats.create(StatKey("lineitem", ("l_quantity",)))

        from repro.config import OptimizerConfig as OC
        from repro.executor import Executor
        from repro.optimizer import Optimizer

        config = OC(enable_histogram_join_estimation=enabled)
        optimizer = Optimizer(db, config)
        executor = Executor(db, config)
        errors = []
        rng = np.random.default_rng(3)
        quantities = rng.integers(1, 51, size=query_count)
        for quantity in quantities:
            query = (
                QueryBuilder(db.schema)
                .join("lineitem.l_suppkey", "supplier.s_suppkey")
                .where("lineitem.l_quantity", "<=", int(quantity))
                .select("lineitem.l_orderkey")
                .build()
            )
            result = optimizer.optimize(query)
            executed = executor.execute(result.plan, query)
            errors.append(q_error(result.rows, executed.row_count))
        geomean = math.exp(sum(math.log(e) for e in errors) / len(errors))
        rows.append(
            JoinEstimationRow(
                configuration=label,
                q_error_geomean=geomean,
                q_error_max=max(errors),
            )
        )
    return rows


@dataclass
class SamplingRow:
    sample_rows: Optional[int]
    creation_cost: float
    q_error_geomean: float
    execution_cost: float


def run_sampling_ablation(
    database_factory: Callable,
    z,
    sample_settings=(None, 2000, 500, 100),
    workload_name: str = "U0-S-100",
    max_queries: int = 20,
) -> List[SamplingRow]:
    """Full scan vs row-sampled statistics construction."""
    rows = []
    for sample in sample_settings:
        db = database_factory(z)
        db.stats.config = OptimizerConfig(sample_rows=sample)
        queries = generate_workload(db, workload_name).queries()[:max_queries]
        for key in workload_candidate_statistics(queries):
            db.stats.create(key)
        accuracy = estimation_accuracy(db, queries)
        rows.append(
            SamplingRow(
                sample_rows=sample,
                creation_cost=db.stats.creation_cost_total,
                q_error_geomean=accuracy.geometric_mean,
                execution_cost=workload_execution_cost(db, queries),
            )
        )
    return rows
