"""Table 1: reduction in statistics update cost, MNSA/D vs MNSA.

Paper Sec 8.2, "Quality of MNSA/D": on the U25-C-100 workload the update
cost of the statistics left behind by MNSA/D is 30-34% lower than MNSA's
across TPCD_0 / TPCD_2 / TPCD_4 / TPCD_MIX, and re-running the workload
after dropping raises execution cost by at most 6% (TPCD_4 worst).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.backends.memory import MemoryBackend
from repro.core.mnsa import MnsaConfig, mnsa_for_workload
from repro.core.mnsad import mnsad_for_workload
from repro.experiments.common import (
    percent_increase,
    percent_reduction,
    workload_execution_cost,
)
from repro.optimizer import Optimizer
from repro.workload import generate_workload


@dataclass
class Table1Result:
    """One cell (database column) of Table 1.

    Attributes:
        database / workload: the combination run.
        mnsa_stat_count / mnsad_stat_count: retained (visible) statistics.
        mnsa_update_cost / mnsad_update_cost: work units to refresh the
            retained statistics set once.
        mnsa_execution_cost / mnsad_execution_cost: execution cost of
            re-running the workload queries with each retained set.
    """

    database: str
    workload: str
    mnsa_stat_count: int
    mnsad_stat_count: int
    mnsa_update_cost: float
    mnsad_update_cost: float
    mnsa_execution_cost: float
    mnsad_execution_cost: float

    @property
    def update_cost_reduction_percent(self) -> float:
        """The Table 1 number (paper: 30-34%)."""
        return percent_reduction(
            self.mnsa_update_cost, self.mnsad_update_cost
        )

    @property
    def execution_increase_percent(self) -> float:
        """The re-run penalty (paper: <= 6%)."""
        return percent_increase(
            self.mnsa_execution_cost, self.mnsad_execution_cost
        )


def run_table1(
    database_factory: Callable,
    z,
    workload_name: str = "U25-C-100",
    max_queries: int = 40,
    config: MnsaConfig = MnsaConfig(),
    workload_seed: int = 7,
) -> Table1Result:
    """Run one Table 1 cell."""
    # arm (a): MNSA keeps everything it creates
    db_a = database_factory(z)
    workload_a = generate_workload(db_a, workload_name, seed=workload_seed)
    queries_a = workload_a.queries()[:max_queries]
    mnsa_for_workload(MemoryBackend(db_a, Optimizer(db_a)), queries_a, config=config)
    mnsa_keys = db_a.stats.visible_keys()
    mnsa_update = db_a.stats.update_cost_of_keys(mnsa_keys)
    mnsa_execution = workload_execution_cost(db_a, queries_a)

    # arm (b): MNSA/D drop-lists plan-preserving statistics
    db_b = database_factory(z)
    workload_b = generate_workload(db_b, workload_name, seed=workload_seed)
    queries_b = workload_b.queries()[:max_queries]
    mnsad_for_workload(MemoryBackend(db_b, Optimizer(db_b)), queries_b, config=config)
    db_b.stats.purge_drop_list()
    mnsad_keys = db_b.stats.visible_keys()
    mnsad_update = db_b.stats.update_cost_of_keys(mnsad_keys)
    mnsad_execution = workload_execution_cost(db_b, queries_b)

    return Table1Result(
        database=db_b.name,
        workload=workload_name,
        mnsa_stat_count=len(mnsa_keys),
        mnsad_stat_count=len(mnsad_keys),
        mnsa_update_cost=mnsa_update,
        mnsad_update_cost=mnsad_update,
        mnsa_execution_cost=mnsa_execution,
        mnsad_execution_cost=mnsad_execution,
    )
