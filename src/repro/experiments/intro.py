"""The introduction experiment (paper Sec 1).

Tuned TPC-D (13 indexes, statistics on indexed columns only) + the 17
benchmark queries.  Adding the relevant column statistics changed the
plan of 15 of 17 queries on SQL Server 7.0, always improving execution
cost.  We reproduce: per-query plan-changed flags and the execution-cost
delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.candidates import candidate_statistics
from repro.executor import Executor
from repro.index import apply_tuned_tpcd_indexes
from repro.optimizer import Optimizer
from repro.stats.manager import ensure_index_statistics
from repro.workload.tpcd_queries import TPCD_QUERY_SQL, tpcd_queries


@dataclass
class IntroResult:
    """Per-query plan changes from adding column statistics.

    Attributes:
        query_ids: "Q1" .. "Q17".
        plan_changed: aligned booleans — did the execution tree change?
        cost_before / cost_after: actual execution cost of each query's
            chosen plan before/after the additional statistics.
    """

    query_ids: List[str] = field(default_factory=list)
    plan_changed: List[bool] = field(default_factory=list)
    cost_before: List[float] = field(default_factory=list)
    cost_after: List[float] = field(default_factory=list)

    @property
    def changed_count(self) -> int:
        return sum(self.plan_changed)

    @property
    def total_cost_before(self) -> float:
        return sum(self.cost_before)

    @property
    def total_cost_after(self) -> float:
        return sum(self.cost_after)


def run_intro_experiment(database) -> IntroResult:
    """Run the Sec 1 experiment on a fresh TPC-D database.

    The database must NOT have indexes or statistics yet; this function
    applies the tuned 13-index configuration and the index-column
    statistics baseline itself.
    """
    apply_tuned_tpcd_indexes(database)
    ensure_index_statistics(database)
    optimizer = Optimizer(database)
    executor = Executor(database)
    queries = tpcd_queries(database.schema)

    result = IntroResult()
    baseline = []
    for (qid, _), query in zip(TPCD_QUERY_SQL, queries):
        optimized = optimizer.optimize(query)
        executed = executor.execute(optimized.plan, query)
        baseline.append(optimized.signature)
        result.query_ids.append(qid)
        result.cost_before.append(executed.actual_cost)

    # "we then created a set of relevant statistics for the workload"
    for query in queries:
        for key in candidate_statistics(query):
            if not database.stats.has(key):
                database.stats.create(key)

    for signature, query in zip(baseline, queries):
        optimized = optimizer.optimize(query)
        executed = executor.execute(optimized.plan, query)
        result.plan_changed.append(optimized.signature != signature)
        result.cost_after.append(executed.actual_cost)
    return result
