"""Cardinality-estimation accuracy metrics (q-error).

Not a paper table, but the mechanism *behind* every paper table: better
statistics means estimated cardinalities closer to actual ones, which is
what flips plans.  The q-error of an estimate e against actual a is
``max(e, a) / min(e, a)`` (>= 1, 1 is perfect); we report the geometric
mean over a workload, the standard metric in the cardinality-estimation
literature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from repro.executor import Executor
from repro.optimizer import Optimizer
from repro.sql.query import Query


def q_error(estimated: float, actual: float) -> float:
    """``max(e, a) / min(e, a)`` with a floor of one row on both sides."""
    estimated = max(1.0, float(estimated))
    actual = max(1.0, float(actual))
    return max(estimated, actual) / min(estimated, actual)


@dataclass
class AccuracyReport:
    """Cardinality accuracy of root-operator estimates over a workload.

    Attributes:
        q_errors: per-query q-error of the final operator's row estimate.
        geometric_mean: the headline number (1.0 = perfect).
        max_error: the worst query.
    """

    q_errors: List[float]

    @property
    def geometric_mean(self) -> float:
        if not self.q_errors:
            return 1.0
        return math.exp(
            sum(math.log(q) for q in self.q_errors) / len(self.q_errors)
        )

    @property
    def max_error(self) -> float:
        return max(self.q_errors) if self.q_errors else 1.0


def estimation_accuracy(
    database, queries: Iterable[Query]
) -> AccuracyReport:
    """Q-errors of root cardinality estimates under current statistics."""
    optimizer = Optimizer(database)
    executor = Executor(database)
    errors = []
    for query in queries:
        result = optimizer.optimize(query)
        executed = executor.execute(result.plan, query)
        errors.append(q_error(result.rows, executed.row_count))
    return AccuracyReport(q_errors=errors)
