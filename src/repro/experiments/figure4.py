"""Figure 4: MNSA vs. create-all-candidates (paper Sec 8.2).

Arm (a): create every statistic proposed by the Candidate Statistics
algorithm.  Arm (b): run MNSA (t = 20%, ε = 0.0005) over the same
candidates, charging the 3-optimizer-calls-per-statistic overhead to the
creation cost.  The paper reports 30-45% creation-time reduction with
execution-cost increase never above 2%.

``run_single_column_mnsa`` is the Sec 8.2 companion experiment where the
candidate set is restricted to single-column statistics (reduction above
30% in all cases).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.backends.memory import MemoryBackend
from repro.core.candidates import (
    CandidateMode,
    workload_candidate_statistics,
)
from repro.core.mnsa import MnsaConfig, mnsa_for_workload, resolve_config
from repro.experiments.common import (
    percent_increase,
    percent_reduction,
    workload_execution_cost,
)
from repro.optimizer import Optimizer
from repro.workload import generate_workload


@dataclass
class Figure4Result:
    """One bar of Figure 4.

    Attributes:
        database / workload: the combination run.
        candidate_count: statistics the Candidate algorithm proposed.
        mnsa_created_count: how many MNSA actually built.
        all_creation_cost / mnsa_creation_cost: work units (MNSA's
            includes its optimizer-call overhead, as in the paper).
        all_execution_cost / mnsa_execution_cost: workload execution cost.
    """

    database: str
    workload: str
    candidate_count: int
    mnsa_created_count: int
    all_creation_cost: float
    mnsa_creation_cost: float
    all_execution_cost: float
    mnsa_execution_cost: float

    @property
    def creation_reduction_percent(self) -> float:
        return percent_reduction(
            self.all_creation_cost, self.mnsa_creation_cost
        )

    @property
    def execution_increase_percent(self) -> float:
        return percent_increase(
            self.all_execution_cost, self.mnsa_execution_cost
        )


def _run(
    database_factory: Callable,
    z,
    workload_name: str,
    candidate_mode: CandidateMode,
    max_queries: int,
    mnsa_config: MnsaConfig,
    workload_seed: int = 7,
) -> Figure4Result:
    # arm (a): create all candidates
    db_all = database_factory(z)
    workload = generate_workload(db_all, workload_name, seed=workload_seed)
    queries = workload.queries()[:max_queries]
    candidates = workload_candidate_statistics(queries, candidate_mode)
    for key in candidates:
        db_all.stats.create(key)
    all_creation = db_all.stats.creation_cost_total
    all_execution = workload_execution_cost(db_all, queries)

    # arm (b): MNSA
    db_mnsa = database_factory(z)
    workload_b = generate_workload(
        db_mnsa, workload_name, seed=workload_seed
    )
    queries_b = workload_b.queries()[:max_queries]
    backend = MemoryBackend(db_mnsa, Optimizer(db_mnsa))
    result = mnsa_for_workload(backend, queries_b, config=mnsa_config)
    mnsa_execution = workload_execution_cost(db_mnsa, queries_b)

    return Figure4Result(
        database=db_mnsa.name,
        workload=workload_name,
        candidate_count=len(candidates),
        mnsa_created_count=len(result.created),
        all_creation_cost=all_creation,
        mnsa_creation_cost=result.creation_cost,
        all_execution_cost=all_execution,
        mnsa_execution_cost=mnsa_execution,
    )


def run_figure4(
    database_factory: Callable,
    z,
    workload_name: str = "U25-S-100",
    max_queries: int = 40,
    t_percent: Optional[float] = None,
    epsilon: Optional[float] = None,
    workload_seed: int = 7,
    config: Optional[MnsaConfig] = None,
) -> Figure4Result:
    """Run one Figure 4 bar (heuristic candidates, MNSA defaults).

    .. deprecated::
        ``t_percent`` / ``epsilon`` are aliases for the corresponding
        :class:`~repro.core.mnsa.MnsaConfig` fields; pass ``config``.
    """
    config = resolve_config(
        config, "run_figure4", t_percent=t_percent, epsilon=epsilon
    )
    config = replace(config, candidate_mode=CandidateMode.HEURISTIC)
    return _run(
        database_factory,
        z,
        workload_name,
        CandidateMode.HEURISTIC,
        max_queries,
        config,
        workload_seed,
    )


def run_single_column_mnsa(
    database_factory: Callable,
    z,
    workload_name: str = "U25-S-100",
    max_queries: int = 40,
    workload_seed: int = 7,
) -> Figure4Result:
    """The Sec 8.2 single-column-candidates variant of Figure 4."""
    config = MnsaConfig(candidate_mode=CandidateMode.SINGLE_COLUMN)
    return _run(
        database_factory,
        z,
        workload_name,
        CandidateMode.SINGLE_COLUMN,
        max_queries,
        config,
        workload_seed,
    )
