"""Experiment runners reproducing every table and figure of the paper.

Each runner is a pure function over freshly built databases (supplied via
a factory, because statistics accumulate), returning a result dataclass
whose fields mirror the metric the paper reports.  The benchmark harness
(``benchmarks/``) and the examples both call into this package; see
EXPERIMENTS.md for the paper-vs-measured record.

| Paper artifact | Runner |
|---|---|
| Intro experiment (Sec 1)   | :func:`run_intro_experiment` |
| Figure 3                   | :func:`run_figure3` |
| Figure 4                   | :func:`run_figure4` |
| Sec 8.2 single-column MNSA | :func:`run_single_column_mnsa` |
| Table 1                    | :func:`run_table1` |

Ablations and extensions (see DESIGN.md §5b):
:func:`run_threshold_sweep`, :func:`run_next_stat_ablation`,
:func:`run_shrinking_ablation`, :func:`run_equivalence_ablation`,
:func:`run_histogram_kind_ablation`, :func:`run_sampling_ablation`,
:func:`run_joint_histogram_ablation`, :func:`run_aging_experiment`,
:func:`run_incremental_maintenance_experiment`, and the q-error
instrumentation in :mod:`repro.experiments.accuracy`.
"""

from repro.experiments.common import (
    ExperimentDatabases,
    default_database_factory,
    workload_execution_cost,
)
from repro.experiments.intro import IntroResult, run_intro_experiment
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import (
    Figure4Result,
    run_figure4,
    run_single_column_mnsa,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.ablations import (
    EquivalenceAblationRow,
    NextStatAblationResult,
    ShrinkingAblationResult,
    ThresholdSweepRow,
    run_equivalence_ablation,
    run_next_stat_ablation,
    run_shrinking_ablation,
    run_threshold_sweep,
)

from repro.experiments.accuracy import (
    AccuracyReport,
    estimation_accuracy,
    q_error,
)
from repro.experiments.statistics_ablations import (
    HistogramKindRow,
    JoinEstimationRow,
    JointHistogramRow,
    SamplingRow,
    run_histogram_kind_ablation,
    run_join_estimation_ablation,
    run_joint_histogram_ablation,
    run_sampling_ablation,
)
from repro.experiments.aging import AgingRow, run_aging_experiment
from repro.experiments.incremental import (
    MaintenanceRow,
    run_incremental_maintenance_experiment,
)

__all__ = [
    "AccuracyReport",
    "estimation_accuracy",
    "q_error",
    "HistogramKindRow",
    "run_histogram_kind_ablation",
    "JointHistogramRow",
    "run_joint_histogram_ablation",
    "JoinEstimationRow",
    "run_join_estimation_ablation",
    "SamplingRow",
    "run_sampling_ablation",
    "AgingRow",
    "run_aging_experiment",
    "MaintenanceRow",
    "run_incremental_maintenance_experiment",
    "ThresholdSweepRow",
    "run_threshold_sweep",
    "NextStatAblationResult",
    "run_next_stat_ablation",
    "ShrinkingAblationResult",
    "run_shrinking_ablation",
    "EquivalenceAblationRow",
    "run_equivalence_ablation",
    "ExperimentDatabases",
    "default_database_factory",
    "workload_execution_cost",
    "IntroResult",
    "run_intro_experiment",
    "Figure3Result",
    "run_figure3",
    "Figure4Result",
    "run_figure4",
    "run_single_column_mnsa",
    "Table1Result",
    "run_table1",
]
