"""Shared plumbing for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List

from repro.datagen import make_tpcd_database
from repro.executor import Executor
from repro.optimizer import Optimizer
from repro.sql.query import Query

#: The paper's four experiment databases (Sec 8.1).
DATABASE_SPECS = (
    ("TPCD_0", 0.0),
    ("TPCD_2", 2.0),
    ("TPCD_4", 4.0),
    ("TPCD_MIX", "mix"),
)


def default_database_factory(
    scale: float = 0.002, seed: int = 42
) -> Callable[[object], object]:
    """A factory building fresh skewed TPC-D databases.

    Experiments need *fresh* databases per experimental arm because
    statistics accumulate; the factory closes over scale and seed so that
    both arms see identical data.
    """

    def build(z):
        return make_tpcd_database(scale=scale, z=z, seed=seed)

    return build


@dataclass
class ExperimentDatabases:
    """Convenience bundle: a factory plus the paper's four z settings."""

    factory: Callable
    specs: tuple = DATABASE_SPECS

    def fresh(self, z):
        return self.factory(z)


def workload_execution_cost(database, queries: Iterable[Query]) -> float:
    """Total actual cost of optimizing and executing ``queries``.

    This is the experiments' "execution cost of the workload": each query
    is optimized against the database's current statistics and its chosen
    plan is executed for real (DESIGN.md §2).
    """
    optimizer = Optimizer(database)
    executor = Executor(database)
    total = 0.0
    for query in queries:
        result = optimizer.optimize(query)
        total += executor.execute(result.plan, query).actual_cost
    return total


def percent_reduction(baseline: float, improved: float) -> float:
    """``100 * (1 - improved / baseline)``, guarded against zero."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - improved / baseline)


def percent_increase(baseline: float, changed: float) -> float:
    """``100 * (changed - baseline) / baseline``, guarded against zero."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (changed - baseline) / baseline


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Plain-text table used by the benchmark reports."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(v).ljust(w) for v, w in zip(row, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
