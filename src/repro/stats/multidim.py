"""Two-dimensional (joint) histograms over column pairs.

Paper Sec 3: "Multi-dimensional histogram structures can be constructed
using Phased or MHIST-p [14] strategy over the joint distribution of
multiple columns of a relation."  SQL Server 7.0's multi-column
statistics carry only prefix densities (Sec 7.1), which answer equality
conjunctions; a joint histogram additionally answers *range* conjunctions
over correlated column pairs, where the independence assumption fails.

Two construction strategies, both from Poosala & Ioannidis:

* **Phased** — bucket the first dimension with a 1-D MaxDiff histogram,
  then bucket the second dimension independently *within* each first-
  dimension bucket.
* **MHIST-2** — greedy binary splits: repeatedly pick the cell whose
  marginal frequency distribution has the largest MaxDiff jump along
  either dimension and split it there.

Estimation assumes uniformity within each cell, as in 1-D.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import StatisticsError


class JointHistogramKind(enum.Enum):
    PHASED = "phased"
    MHIST = "mhist"


@dataclass
class _Cell:
    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float
    count: float


class JointHistogram:
    """A bag of disjoint rectangular cells covering the joint domain."""

    def __init__(self, cells: List[_Cell], row_count: int, kind) -> None:
        self.cells = cells
        self.row_count = int(row_count)
        self.kind = kind

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    def selectivity_box(
        self,
        x_lo: Optional[float] = None,
        x_hi: Optional[float] = None,
        y_lo: Optional[float] = None,
        y_hi: Optional[float] = None,
    ) -> float:
        """Fraction of rows with (x, y) inside the closed query box.

        ``None`` bounds are unbounded; within partially-overlapped cells
        the covered fraction is interpolated per dimension independently.
        """
        if self.row_count == 0:
            return 0.0
        total = 0.0
        for cell in self.cells:
            fraction = _overlap_1d(
                cell.x_lo, cell.x_hi, x_lo, x_hi
            ) * _overlap_1d(cell.y_lo, cell.y_hi, y_lo, y_hi)
            total += cell.count * fraction
        return float(min(1.0, max(0.0, total / self.row_count)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JointHistogram({self.kind.value}, cells={self.cell_count}, "
            f"rows={self.row_count})"
        )


def _overlap_1d(lo, hi, q_lo, q_hi) -> float:
    """Covered fraction of interval [lo, hi] by query range [q_lo, q_hi]."""
    effective_lo = lo if q_lo is None else max(lo, q_lo)
    effective_hi = hi if q_hi is None else min(hi, q_hi)
    if effective_lo > effective_hi:
        return 0.0
    width = hi - lo
    if width <= 0:
        return 1.0
    return (effective_hi - effective_lo) / width


def _maxdiff_boundaries(values: np.ndarray, buckets: int) -> np.ndarray:
    """Start indexes of MaxDiff buckets over the distinct values."""
    distinct, freqs = np.unique(values, return_counts=True)
    buckets = max(1, min(buckets, distinct.shape[0]))
    if buckets == 1 or distinct.shape[0] == 1:
        return distinct, np.asarray([0])
    diffs = np.abs(np.diff(freqs.astype(np.float64)))
    top = np.argsort(-diffs, kind="stable")[: buckets - 1]
    starts = np.asarray([0] + sorted(int(i) + 1 for i in top))
    return distinct, starts


def build_phased(
    x: np.ndarray, y: np.ndarray, buckets_per_dim: int = 8
) -> JointHistogram:
    """Phased construction: MaxDiff on x, then MaxDiff on y per x-slice."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise StatisticsError("joint histogram inputs must align")
    if x.shape[0] == 0:
        return JointHistogram([], 0, JointHistogramKind.PHASED)
    distinct_x, starts = _maxdiff_boundaries(x, buckets_per_dim)
    boundaries = list(starts) + [distinct_x.shape[0]]
    cells: List[_Cell] = []
    for begin, end in zip(boundaries[:-1], boundaries[1:]):
        if begin >= end:
            continue
        x_lo, x_hi = distinct_x[begin], distinct_x[end - 1]
        in_slice = (x >= x_lo) & (x <= x_hi)
        ys = y[in_slice]
        if ys.shape[0] == 0:
            continue
        distinct_y, y_starts = _maxdiff_boundaries(ys, buckets_per_dim)
        y_bounds = list(y_starts) + [distinct_y.shape[0]]
        for y_begin, y_end in zip(y_bounds[:-1], y_bounds[1:]):
            if y_begin >= y_end:
                continue
            y_lo, y_hi = distinct_y[y_begin], distinct_y[y_end - 1]
            count = float(((ys >= y_lo) & (ys <= y_hi)).sum())
            cells.append(_Cell(x_lo, x_hi, y_lo, y_hi, count))
    return JointHistogram(cells, x.shape[0], JointHistogramKind.PHASED)


def build_mhist(
    x: np.ndarray, y: np.ndarray, max_cells: int = 64
) -> JointHistogram:
    """MHIST-2 construction: greedy binary splits on the worst marginal."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise StatisticsError("joint histogram inputs must align")
    n = x.shape[0]
    if n == 0:
        return JointHistogram([], 0, JointHistogramKind.MHIST)

    # each working cell holds its member indexes for exact refinement
    @dataclass
    class _Work:
        rows: np.ndarray

        def bounds(self):
            xs, ys = x[self.rows], y[self.rows]
            return xs.min(), xs.max(), ys.min(), ys.max()

    def best_split(work: _Work):
        """(score, dimension, split_value) of the largest marginal jump."""
        best = (0.0, None, None)
        for dimension, values in (("x", x[work.rows]), ("y", y[work.rows])):
            distinct, freqs = np.unique(values, return_counts=True)
            if distinct.shape[0] < 2:
                continue
            diffs = np.abs(np.diff(freqs.astype(np.float64)))
            idx = int(np.argmax(diffs))
            score = float(diffs[idx])
            if score > best[0]:
                # split between distinct[idx] and distinct[idx + 1]
                best = (score, dimension, float(distinct[idx]))
        return best

    working = [_Work(np.arange(n))]
    while len(working) < max_cells:
        candidates = [(best_split(w), i) for i, w in enumerate(working)]
        candidates = [
            (score, dim, value, i)
            for (score, dim, value), i in candidates
            if dim is not None
        ]
        if not candidates:
            break
        score, dim, value, i = max(candidates, key=lambda c: c[0])
        if score <= 0:
            break
        work = working.pop(i)
        values = x[work.rows] if dim == "x" else y[work.rows]
        left_mask = values <= value
        left = _Work(work.rows[left_mask])
        right = _Work(work.rows[~left_mask])
        if left.rows.shape[0] == 0 or right.rows.shape[0] == 0:
            working.insert(i, work)
            break
        working.extend([left, right])

    cells = []
    for work in working:
        x_lo, x_hi, y_lo, y_hi = work.bounds()
        cells.append(
            _Cell(x_lo, x_hi, y_lo, y_hi, float(work.rows.shape[0]))
        )
    return JointHistogram(cells, n, JointHistogramKind.MHIST)


def build_joint_histogram(
    x: np.ndarray,
    y: np.ndarray,
    kind: JointHistogramKind = JointHistogramKind.PHASED,
    budget: int = 64,
) -> JointHistogram:
    """Build a joint histogram with roughly ``budget`` cells."""
    if kind == JointHistogramKind.PHASED:
        per_dim = max(2, int(budget ** 0.5))
        return build_phased(x, y, buckets_per_dim=per_dim)
    if kind == JointHistogramKind.MHIST:
        return build_mhist(x, y, max_cells=budget)
    raise StatisticsError(f"unknown joint histogram kind {kind!r}")
