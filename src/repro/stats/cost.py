"""Deterministic cost model for building and refreshing statistics.

The paper's Figures 3/4 and Table 1 report statistics creation/update
*time*; we use a machine-independent work-unit model instead (DESIGN.md §2):
a build scans the table once per statistic (cost proportional to rows ×
column count) and sorts the scanned values (``n log2 n``), plus a fixed
catalog overhead.  Refreshing a statistic costs the same as building it —
both are full-scan operations in SQL Server 7.0.

Sampling (``sample_rows``) reduces the scan and sort terms to the sample
size, mirroring the sampling-based construction literature the paper cites
([3, 8, 9, 12, 14]).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.config import CostModelConfig
from repro.stats.statistic import StatKey


def statistic_build_cost(
    row_count: int,
    key: StatKey,
    cost: CostModelConfig,
    sample_rows: Optional[int] = None,
) -> float:
    """Work units to build one statistic on a table of ``row_count`` rows."""
    rows = row_count
    if sample_rows is not None:
        rows = min(rows, sample_rows)
    n_columns = len(key.columns)
    scan = rows * cost.stat_scan_cost_per_row * n_columns
    sort = cost.stat_sort_constant * rows * math.log2(rows + 2)
    return cost.stat_fixed_cost + scan + sort


def statistic_update_cost(
    row_count: int,
    key: StatKey,
    cost: CostModelConfig,
    sample_rows: Optional[int] = None,
) -> float:
    """Work units to refresh one statistic (same as a rebuild)."""
    return statistic_build_cost(row_count, key, cost, sample_rows)
