"""Statistic identity (:class:`StatKey`) and contents (:class:`Statistic`).

A statistic over columns ``(a, b, c)`` of table ``T`` carries, mirroring
SQL Server 7.0 (paper Sec 7.1):

* a histogram over the leading column ``a``;
* densities over the leading prefixes ``(a)``, ``(a, b)``, ``(a, b, c)``,
  where density = 1 / (number of distinct prefix tuples).

Column order therefore matters: ``(a, b)`` and ``(b, a)`` are *different*
statistics.  The paper's notation ``{R1.a, (R2.c, R2.d)}`` maps to a set of
``StatKey`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.catalog import ColumnRef
from repro.errors import StatisticsError
from repro.stats.histogram import Histogram


@dataclass(frozen=True, order=True)
class StatKey:
    """Identity of a statistic: table plus ordered column names."""

    table: str
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise StatisticsError("a statistic needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise StatisticsError(
                f"duplicate column in statistic key: {self.columns}"
            )

    @classmethod
    def of(cls, refs) -> "StatKey":
        """Build a key from an ordered iterable of :class:`ColumnRef`.

        Raises:
            StatisticsError: if the refs span multiple tables.
        """
        refs = list(refs)
        if not refs:
            raise StatisticsError("a statistic needs at least one column")
        tables = {ref.table for ref in refs}
        if len(tables) != 1:
            raise StatisticsError(
                f"a statistic must cover a single table, got {tables}"
            )
        return cls(refs[0].table, tuple(ref.column for ref in refs))

    @classmethod
    def single(cls, ref: ColumnRef) -> "StatKey":
        return cls(ref.table, (ref.column,))

    @property
    def is_multi_column(self) -> bool:
        return len(self.columns) > 1

    @property
    def leading_column(self) -> ColumnRef:
        return ColumnRef(self.table, self.columns[0])

    def column_refs(self) -> Tuple[ColumnRef, ...]:
        return tuple(ColumnRef(self.table, c) for c in self.columns)

    def prefixes(self) -> Tuple[Tuple[str, ...], ...]:
        """All leading prefixes, shortest first."""
        return tuple(
            self.columns[: i + 1] for i in range(len(self.columns))
        )

    def __str__(self) -> str:
        if self.is_multi_column:
            return f"{self.table}.({', '.join(self.columns)})"
        return f"{self.table}.{self.columns[0]}"


def as_stat_key(key_or_refs) -> StatKey:
    """Coerce a :class:`StatKey`, a single :class:`ColumnRef`, or an
    ordered iterable of refs into a :class:`StatKey`.

    This is the canonical identity conversion used by the statistics
    manager and by :class:`~repro.optimizer.cache.OptimizationRequest`,
    so the same statistic always hashes identically regardless of how a
    caller spelled it.
    """
    if isinstance(key_or_refs, StatKey):
        return key_or_refs
    if isinstance(key_or_refs, ColumnRef):
        return StatKey.single(key_or_refs)
    return StatKey.of(key_or_refs)


class Statistic:
    """A built statistic: leading-column histogram + prefix densities.

    Attributes:
        key: the :class:`StatKey`.
        histogram: histogram over the leading column.
        prefix_densities: tuple aligned with ``key.prefixes()``;
            ``prefix_densities[i] = 1 / ndv(prefix_{i+1})``.
        row_count: table rows at build time.
        build_cost: work units charged for the build (cost model).
        update_count: number of times this statistic has been refreshed
            (drives the SQL Server drop-after-N-updates policy, Sec 6).
    """

    def __init__(
        self,
        key: StatKey,
        histogram: Histogram,
        prefix_densities: Tuple[float, ...],
        row_count: int,
        build_cost: float = 0.0,
        joint_histogram=None,
    ) -> None:
        if len(prefix_densities) != len(key.columns):
            raise StatisticsError(
                f"expected {len(key.columns)} prefix densities, "
                f"got {len(prefix_densities)}"
            )
        for density in prefix_densities:
            if not 0.0 <= density <= 1.0:
                raise StatisticsError(
                    f"density must be in [0, 1], got {density}"
                )
        self.key = key
        self.histogram = histogram
        self.prefix_densities = tuple(prefix_densities)
        self.row_count = int(row_count)
        self.build_cost = float(build_cost)
        self.update_count = 0
        #: optional :class:`~repro.stats.multidim.JointHistogram` over the
        #: first two columns (built when ``enable_joint_histograms`` is on)
        self.joint_histogram = joint_histogram

    # ------------------------------------------------------------------
    # estimation accessors
    # ------------------------------------------------------------------

    def density_for_prefix(self, columns: Tuple[str, ...]) -> Optional[float]:
        """Density for an exact leading prefix, or None if not a prefix.

        The asymmetry of SQL Server statistics: a statistic on (a, b, c)
        answers for (a), (a, b), (a, b, c) but not (b) or (a, c).
        """
        for i, prefix in enumerate(self.key.prefixes()):
            if prefix == tuple(columns):
                return self.prefix_densities[i]
        return None

    def distinct_for_prefix(self, columns: Tuple[str, ...]) -> Optional[float]:
        """Estimated distinct prefix tuples (1 / density)."""
        density = self.density_for_prefix(columns)
        if density is None or density <= 0:
            return None
        return 1.0 / density

    @property
    def leading_distinct(self) -> float:
        """Distinct values of the leading column."""
        return self.histogram.distinct_count

    def covers_column(self, ref: ColumnRef) -> bool:
        """True if ``ref`` is the *leading* column (histogram applies)."""
        return self.key.leading_column == ref

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Statistic({self.key}, rows={self.row_count})"
