"""Construction of :class:`~repro.stats.statistic.Statistic` objects from data."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import OptimizerConfig
from repro.stats.cost import statistic_build_cost
from repro.stats.histogram import HistogramKind, build_histogram
from repro.stats.statistic import StatKey, Statistic
from repro.storage.table_data import TableData


def _prefix_density(arrays) -> float:
    """1 / (number of distinct tuples) over the given parallel arrays."""
    if not arrays or arrays[0].shape[0] == 0:
        return 1.0
    stacked = np.stack([np.asarray(a, dtype=np.float64) for a in arrays])
    distinct = np.unique(stacked, axis=1).shape[1]
    return 1.0 / max(1, distinct)


def build_statistic(
    table: TableData,
    key: StatKey,
    config: OptimizerConfig,
    histogram_kind: HistogramKind = HistogramKind.MAXDIFF,
    rng: Optional[np.random.Generator] = None,
) -> Statistic:
    """Build a statistic over ``key``'s columns from the stored data.

    If ``config.sample_rows`` is set, the histogram and densities come
    from a uniform row sample (scaled back to the full table), otherwise
    from a full scan.

    The returned statistic's ``build_cost`` is the work-unit charge from
    :func:`~repro.stats.cost.statistic_build_cost`.
    """
    row_count = table.row_count
    if config.sample_rows is not None and row_count > config.sample_rows:
        sampled = table.sample_rows(config.sample_rows, rng=rng)
        arrays = [sampled[name] for name in key.columns]
        scale = row_count / max(1, arrays[0].shape[0])
    else:
        arrays = [table.column_array(name) for name in key.columns]
        scale = 1.0

    histogram = build_histogram(
        arrays[0], config.histogram_buckets, kind=histogram_kind
    )
    if scale != 1.0:
        # scale bucket counts back up to full-table cardinality
        histogram.counts = histogram.counts * scale
        histogram.row_count = row_count

    densities = tuple(
        _prefix_density(arrays[: i + 1]) for i in range(len(arrays))
    )
    joint = None
    if config.enable_joint_histograms and len(arrays) >= 2:
        from repro.stats.multidim import (
            JointHistogramKind,
            build_joint_histogram,
        )

        joint = build_joint_histogram(
            arrays[0],
            arrays[1],
            kind=JointHistogramKind(config.joint_histogram_kind),
            budget=config.joint_histogram_cells,
        )
        if scale != 1.0:
            for cell in joint.cells:
                cell.count *= scale
            joint.row_count = row_count
    build_cost = statistic_build_cost(
        row_count, key, config.cost, config.sample_rows
    )
    return Statistic(
        key=key,
        histogram=histogram,
        prefix_densities=densities,
        row_count=row_count,
        build_cost=build_cost,
        joint_histogram=joint,
    )
