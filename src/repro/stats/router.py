"""Deterministic table -> shard routing for sharded statistics state.

Production auto-administration services shard catalog state so one
tenant's churn cannot serialize every other tenant's optimizations.  The
:class:`ShardRouter` is the single source of truth for that partition:
both the sharded :class:`~repro.stats.manager.StatisticsManager` and the
service front-end (:mod:`repro.service`) route through the same router,
so "the shard of table T" means the same thing at every layer.

Routing is deterministic and insertion-ordered: tables known at
construction are assigned round-robin in sorted-name order (a database
with as many tables as shards gets a perfectly balanced one-table-per-
shard layout), and tables first seen later extend the same round-robin
sequence.  Determinism matters twice over — multi-shard operations
acquire shard locks in ascending shard-id order to stay deadlock-free,
and repeated runs of an experiment must place tables identically.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Tuple

from repro.concurrency import guarded_by
from repro.errors import ServiceError


class ShardRouter:
    """Deterministic, thread-safe table -> shard-id assignment.

    Args:
        shard_count: number of shards (>= 1).
        tables: table names known up front; assigned round-robin in
            sorted order so the layout is independent of call order.
    """

    _assignment = guarded_by("_lock")
    _next_shard = guarded_by("_lock")

    def __init__(self, shard_count: int, tables: Iterable[str] = ()) -> None:
        if shard_count < 1:
            raise ServiceError(
                f"shard_count must be >= 1, got {shard_count}"
            )
        self._count = shard_count
        self._lock = threading.Lock()
        self._assignment: Dict[str, int] = {}
        self._next_shard = 0
        for name in sorted(tables):
            self._assign(name)

    def _assign(self, table: str) -> int:
        with self._lock:
            shard = self._assignment.get(table)
            if shard is None:
                shard = self._next_shard % self._count
                self._assignment[table] = shard
                self._next_shard += 1
            return shard

    @property
    def shard_count(self) -> int:
        return self._count

    def shard_of(self, table: str) -> int:
        """Shard id of ``table``; unseen tables are assigned on demand."""
        return self._assign(table)

    # repro-lint: ascending-source=returns sorted() distinct shard ids; canonical lock order
    def shard_ids_for(self, tables: Iterable[str]) -> Tuple[int, ...]:
        """Distinct shard ids of ``tables``, ascending.

        The ascending order is the canonical multi-shard lock-acquisition
        order: every caller that must hold several shards acquires them
        in exactly this sequence, so two cross-shard operations can never
        deadlock against each other.
        """
        return tuple(sorted({self._assign(t) for t in tables}))

    def tables_of(self, shard_id: int) -> Tuple[str, ...]:
        """Tables currently routed to ``shard_id``, sorted (a copy)."""
        with self._lock:
            return tuple(
                sorted(
                    t for t, s in self._assignment.items() if s == shard_id
                )
            )

    def assignment(self) -> Dict[str, int]:
        """The full table -> shard map (a copy)."""
        with self._lock:
            return dict(self._assignment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"ShardRouter(shards={self._count}, "
                f"tables={len(self._assignment)})"
            )
