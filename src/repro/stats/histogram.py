"""Histograms over a single (encoded) column.

Two classic variants (paper Sec 3: "Equi-depth, MaxDiff"):

* :class:`EquiDepthHistogram` — bucket boundaries at value quantiles, so
  every bucket holds roughly the same number of rows.
* :class:`MaxDiffHistogram` — bucket boundaries at the largest jumps in
  per-value frequency (Poosala et al., SIGMOD '96), which isolates heavy
  hitters into their own buckets and is far more accurate on skewed data.

Both expose the same estimation interface the optimizer consumes:
``selectivity_equal``, ``selectivity_range``, ``selectivity_in``, and
``distinct_count``.  All estimates assume uniformity *within* a bucket,
which is the textbook model.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import StatisticsError


class HistogramKind(enum.Enum):
    EQUI_DEPTH = "equi_depth"
    MAXDIFF = "maxdiff"


class Histogram:
    """Base histogram: parallel bucket arrays plus summary counters.

    Buckets are half-open on neither side: bucket *i* covers the closed
    value interval ``[lows[i], highs[i]]`` and holds ``counts[i]`` rows of
    ``distincts[i]`` distinct values.  Buckets are disjoint and sorted.
    """

    kind: HistogramKind

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        counts: np.ndarray,
        distincts: np.ndarray,
        row_count: int,
    ) -> None:
        self.lows = np.asarray(lows, dtype=np.float64)
        self.highs = np.asarray(highs, dtype=np.float64)
        self.counts = np.asarray(counts, dtype=np.float64)
        self.distincts = np.asarray(distincts, dtype=np.float64)
        self.row_count = int(row_count)
        self._counts_at_build = None  # set on first add_values()
        self._rows_at_build = int(row_count)
        if not (
            self.lows.shape
            == self.highs.shape
            == self.counts.shape
            == self.distincts.shape
        ):
            raise StatisticsError("histogram bucket arrays must align")
        if self.row_count > 0 and self.lows.size == 0:
            raise StatisticsError("non-empty data produced zero buckets")

    # ------------------------------------------------------------------
    # summary properties
    # ------------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        return int(self.lows.shape[0])

    @property
    def distinct_count(self) -> float:
        """Estimated number of distinct values in the column."""
        return float(self.distincts.sum()) if self.bucket_count else 0.0

    @property
    def min_value(self) -> Optional[float]:
        return float(self.lows[0]) if self.bucket_count else None

    @property
    def max_value(self) -> Optional[float]:
        return float(self.highs[-1]) if self.bucket_count else None

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------

    def _clamp(self, fraction: float) -> float:
        return float(min(1.0, max(0.0, fraction)))

    def selectivity_equal(self, value) -> float:
        """Estimated fraction of rows with column == value."""
        if self.row_count == 0:
            return 0.0
        value = float(value)
        idx = self._bucket_of(value)
        if idx is None:
            return 0.0
        distinct = max(1.0, self.distincts[idx])
        return self._clamp(self.counts[idx] / distinct / self.row_count)

    def selectivity_range(
        self,
        low: Optional[float] = None,
        high: Optional[float] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of rows with column in the interval.

        ``None`` bounds are unbounded.  Within the boundary buckets, the
        covered fraction is linearly interpolated.
        """
        if self.row_count == 0 or self.bucket_count == 0:
            return 0.0
        total = 0.0
        for i in range(self.bucket_count):
            b_low, b_high = self.lows[i], self.highs[i]
            b_count = self.counts[i]
            overlap = self._overlap_fraction(
                b_low, b_high, low, high, low_inclusive, high_inclusive
            )
            total += b_count * overlap
        return self._clamp(total / self.row_count)

    def selectivity_in(self, values) -> float:
        """Estimated fraction of rows with column in the value list."""
        total = sum(self.selectivity_equal(v) for v in set(values))
        return self._clamp(total)

    def selectivity_not_equal(self, value) -> float:
        return self._clamp(1.0 - self.selectivity_equal(value))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def join_selectivity(self, other: "Histogram") -> float:
        """Equijoin selectivity against another histogram.

        Estimates the join size by aligning the two bucket sets: within
        each overlapping value segment, rows are assumed uniform over the
        segment's distinct values and the containment assumption gives
        ``rows_a * rows_b / max(ndv_a, ndv_b)`` for that segment.  This
        refines the global ``1 / max(ndv)`` rule whenever the two domains
        only partially overlap (e.g. a fact table referencing a slice of
        a dimension).

        Returns the selectivity relative to the cross product.
        """
        if self.row_count == 0 or other.row_count == 0:
            return 0.0
        if self.bucket_count == 0 or other.bucket_count == 0:
            return 0.0
        # pairwise overlap of every (a-bucket, b-bucket) pair, vectorized
        lo = np.maximum(self.lows[:, None], other.lows[None, :])
        hi = np.minimum(self.highs[:, None], other.highs[None, :])
        overlap = np.maximum(hi - lo, 0.0)
        overlapping = hi >= lo
        a_width = np.maximum(self.highs - self.lows, 0.0)[:, None]
        b_width = np.maximum(other.highs - other.lows, 0.0)[None, :]
        # floor each side's covered share at one distinct value's worth:
        # a point bucket (heavy hitter) overlapping a wide bucket still
        # matches that one value's share of the wide bucket's mass
        a_floor = 1.0 / np.maximum(1.0, self.distincts)[:, None]
        b_floor = 1.0 / np.maximum(1.0, other.distincts)[None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            a_fraction = np.where(
                a_width > 0,
                np.maximum(overlap / a_width, a_floor),
                1.0,
            )
            b_fraction = np.where(
                b_width > 0,
                np.maximum(overlap / b_width, b_floor),
                1.0,
            )
        a_fraction = np.where(overlapping, a_fraction, 0.0)
        b_fraction = np.where(overlapping, b_fraction, 0.0)
        rows_a = self.counts[:, None] * a_fraction
        rows_b = other.counts[None, :] * b_fraction
        ndv_a = np.maximum(1.0, self.distincts[:, None] * a_fraction)
        ndv_b = np.maximum(1.0, other.distincts[None, :] * b_fraction)
        join_rows = float(
            (rows_a * rows_b / np.maximum(ndv_a, ndv_b))[overlapping].sum()
        )
        cross = self.row_count * other.row_count
        return float(min(1.0, max(0.0, join_rows / cross)))

    # ------------------------------------------------------------------
    # incremental maintenance (paper ref [8], simplified)
    # ------------------------------------------------------------------

    def add_values(self, values) -> None:
        """Fold newly inserted values into the bucket counts in place.

        The Gibbons/Matias/Poosala style of approximate maintenance,
        simplified: each value increments its bucket's count (boundary
        buckets stretch to absorb out-of-range values); per-bucket
        distinct counts are left untouched (they would need a backing
        sample to maintain exactly).  Use :meth:`needs_rebuild` to decide
        when the approximation has degraded enough for a full rebuild.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if self.bucket_count == 0:
            # an empty histogram cannot absorb values approximately
            raise StatisticsError(
                "cannot incrementally maintain an empty histogram"
            )
        if self._counts_at_build is None:
            self._counts_at_build = self.counts.copy()
            self._rows_at_build = self.row_count
        self.lows[0] = min(self.lows[0], float(values.min()))
        self.highs[-1] = max(self.highs[-1], float(values.max()))
        idx = np.searchsorted(self.highs, values, side="left")
        idx = np.minimum(idx, self.bucket_count - 1)
        # gap values: widen the receiving bucket downward
        gap = values < self.lows[idx]
        if gap.any():
            np.minimum.at(self.lows, idx[gap], values[gap])
        np.add.at(self.counts, idx, 1.0)
        self.row_count += int(values.size)

    def needs_rebuild(self, divergence_threshold: float = 0.15) -> bool:
        """Has incremental maintenance degraded this histogram?

        Rebuild when the *inserted* mass is distributed differently from
        the data the histogram was built on: the L-infinity distance
        between the per-bucket share of insertions and the per-bucket
        share at build time exceeds ``divergence_threshold``.  Stationary
        inserts (even into skewed data) track the built shares and never
        trip this; distribution drift does.
        """
        if self._counts_at_build is None or self.bucket_count == 0:
            return False
        inserted = self.row_count - self._rows_at_build
        if inserted < 5 * self.bucket_count:
            return False
        deltas = self.counts - self._counts_at_build
        insert_share = deltas / max(1.0, float(inserted))
        build_share = self._counts_at_build / max(
            1.0, float(self._rows_at_build)
        )
        divergence = float(np.abs(insert_share - build_share).max())
        return divergence > divergence_threshold

    def _bucket_of(self, value: float) -> Optional[int]:
        """Index of the bucket containing ``value``, or None."""
        if self.bucket_count == 0:
            return None
        idx = int(np.searchsorted(self.highs, value, side="left"))
        if idx >= self.bucket_count:
            return None
        if self.lows[idx] <= value <= self.highs[idx]:
            return idx
        return None

    def _overlap_fraction(
        self, b_low, b_high, low, high, low_inclusive, high_inclusive
    ) -> float:
        """Fraction of bucket [b_low, b_high] covered by the query range."""
        effective_low = b_low if low is None else max(b_low, low)
        effective_high = b_high if high is None else min(b_high, high)
        if effective_low > effective_high:
            return 0.0
        width = b_high - b_low
        if width <= 0:
            # single-value bucket: it's in or out
            inside = True
            if low is not None:
                inside &= b_low > low or (low_inclusive and b_low == low)
            if high is not None:
                inside &= b_high < high or (high_inclusive and b_high == high)
            return 1.0 if inside else 0.0
        return (effective_high - effective_low) / width

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(buckets={self.bucket_count}, "
            f"rows={self.row_count}, ndv={self.distinct_count:.0f})"
        )


class EquiDepthHistogram(Histogram):
    kind = HistogramKind.EQUI_DEPTH


class MaxDiffHistogram(Histogram):
    kind = HistogramKind.MAXDIFF


def _summarize(values: np.ndarray):
    """Sorted distinct values and their frequencies."""
    return np.unique(np.asarray(values, dtype=np.float64), return_counts=True)


def _buckets_from_boundaries(distinct, freqs, starts):
    """Build bucket arrays given start indexes into the distinct array."""
    lows, highs, counts, ndvs = [], [], [], []
    boundaries = list(starts) + [distinct.shape[0]]
    for begin, end in zip(boundaries[:-1], boundaries[1:]):
        if begin >= end:
            continue
        lows.append(distinct[begin])
        highs.append(distinct[end - 1])
        counts.append(freqs[begin:end].sum())
        ndvs.append(end - begin)
    return (
        np.asarray(lows),
        np.asarray(highs),
        np.asarray(counts),
        np.asarray(ndvs),
    )


def build_equi_depth(values: np.ndarray, buckets: int) -> EquiDepthHistogram:
    """Equi-depth histogram with at most ``buckets`` buckets."""
    values = np.asarray(values)
    if values.size == 0:
        empty = np.empty(0)
        return EquiDepthHistogram(empty, empty, empty, empty, 0)
    distinct, freqs = _summarize(values)
    buckets = max(1, min(buckets, distinct.shape[0]))
    cumulative = np.cumsum(freqs)
    target = values.size / buckets
    starts = [0]
    for b in range(1, buckets):
        # first distinct value whose cumulative count reaches b * target
        idx = int(np.searchsorted(cumulative, b * target, side="left")) + 1
        if idx > starts[-1] and idx < distinct.shape[0]:
            starts.append(idx)
    lows, highs, counts, ndvs = _buckets_from_boundaries(
        distinct, freqs, starts
    )
    return EquiDepthHistogram(lows, highs, counts, ndvs, values.size)


def build_maxdiff(values: np.ndarray, buckets: int) -> MaxDiffHistogram:
    """MaxDiff(V, F) histogram with at most ``buckets`` buckets.

    Boundaries are placed after the ``buckets - 1`` largest differences in
    frequency between adjacent distinct values.
    """
    values = np.asarray(values)
    if values.size == 0:
        empty = np.empty(0)
        return MaxDiffHistogram(empty, empty, empty, empty, 0)
    distinct, freqs = _summarize(values)
    buckets = max(1, min(buckets, distinct.shape[0]))
    if buckets == 1 or distinct.shape[0] == 1:
        starts = [0]
    else:
        diffs = np.abs(np.diff(freqs.astype(np.float64)))
        # boundary after position i means a bucket starts at i + 1
        top = np.argsort(-diffs, kind="stable")[: buckets - 1]
        starts = [0] + sorted(int(i) + 1 for i in top)
    lows, highs, counts, ndvs = _buckets_from_boundaries(
        distinct, freqs, starts
    )
    return MaxDiffHistogram(lows, highs, counts, ndvs, values.size)


def build_histogram(
    values: np.ndarray,
    buckets: int,
    kind: HistogramKind = HistogramKind.MAXDIFF,
) -> Histogram:
    """Build a histogram of the requested kind."""
    if kind == HistogramKind.EQUI_DEPTH:
        return build_equi_depth(values, buckets)
    if kind == HistogramKind.MAXDIFF:
        return build_maxdiff(values, buckets)
    raise StatisticsError(f"unknown histogram kind {kind!r}")
