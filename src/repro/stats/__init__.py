"""Statistics: histograms, densities, multi-column statistics, manager.

A *statistic* (paper Sec 3) is a summary structure over one or more columns
of a relation.  Ours mirror Microsoft SQL Server 7.0's (paper Sec 7.1):

* a histogram over the **leading** column, and
* density information (1 / #distinct) over each **leading prefix** of the
  column list,

so a statistic on ``(a, b, c)`` is *asymmetric*: it tells you a lot about
``a``, something about ``(a, b)`` and ``(a, b, c)``, and nothing about
``b`` alone.  That asymmetry is why the candidate-statistics algorithm has
to pick column orders deliberately.

Public API::

    from repro.stats import (
        Histogram, EquiDepthHistogram, MaxDiffHistogram,
        StatKey, Statistic, build_statistic,
        StatisticsManager, statistic_build_cost,
    )
"""

from repro.stats.histogram import (
    EquiDepthHistogram,
    Histogram,
    HistogramKind,
    MaxDiffHistogram,
    build_histogram,
)
from repro.stats.statistic import StatKey, Statistic
from repro.stats.builder import build_statistic
from repro.stats.cost import statistic_build_cost, statistic_update_cost
from repro.stats.manager import StatisticsManager
from repro.stats.router import ShardRouter

__all__ = [
    "Histogram",
    "HistogramKind",
    "EquiDepthHistogram",
    "MaxDiffHistogram",
    "build_histogram",
    "StatKey",
    "Statistic",
    "build_statistic",
    "statistic_build_cost",
    "statistic_update_cost",
    "StatisticsManager",
    "ShardRouter",
]
