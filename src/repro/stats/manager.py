"""The statistics manager: lifecycle, drop-list, and the ignore interface.

One :class:`StatisticsManager` is attached to each database.  It provides:

* creation / physical drop / refresh of statistics, with a work-unit cost
  ledger (feeding Figures 3-4 and Table 1);
* the **drop-list** of Sec 5: statistics *marked* non-essential are hidden
  from the optimizer but kept physically, so a later query can revive them
  at zero cost instead of rebuilding;
* ``ignore_subset(...)`` — the paper's ``Ignore_Statistics_Subset`` server
  extension (Sec 7.2), as a context manager scoping the "connection
  specific buffer" the paper describes;
* lookups the selectivity estimator uses (leading-column histogram, prefix
  densities), honouring both the ignore set and the drop-list;
* the SQL Server 7.0 refresh trigger: a per-table row-modification counter
  compared against a fraction of the table size (Sec 2, Sec 6).

Thread safety: all lifecycle, drop-list, and visibility mutations (and the
compound lookups that iterate the statistics dictionary) are guarded by a
reentrant lock, so background advisor workers (``repro.service``) and
foreground sessions can share one manager.  ``ignore_subset`` scopes are
process-wide, not per-thread — callers that need connection-local ignore
buffers must serialize their optimizer calls (the service's database lock
does exactly that).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.catalog import ColumnRef
from repro.concurrency import guarded_by
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.errors import StatisticsError
from repro.stats.builder import build_statistic
from repro.stats.cost import statistic_update_cost
from repro.stats.histogram import HistogramKind
from repro.stats.statistic import StatKey, Statistic, as_stat_key


class StatisticsManager:
    """Owns all statistics of one :class:`~repro.storage.Database`."""

    _statistics = guarded_by("_lock")
    _drop_list = guarded_by("_lock")
    _ignored = guarded_by("_lock")
    _epoch = guarded_by("_lock")
    creation_cost_total = guarded_by("_lock")
    update_cost_total = guarded_by("_lock")

    def __init__(
        self, database, config: OptimizerConfig = DEFAULT_CONFIG
    ) -> None:
        self._db = database
        self.config = config
        self._statistics: Dict[StatKey, Statistic] = {}
        self._drop_list: Set[StatKey] = set()
        self._ignored: Set[StatKey] = set()
        self._lock = threading.RLock()
        self._epoch = 0
        self.creation_cost_total = 0.0
        self.update_cost_total = 0.0

    # ------------------------------------------------------------------
    # statistics epoch (plan-cache invalidation)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonically increasing counter of statistics-affecting change.

        Bumped by every mutation that can alter an optimization outcome:
        creation, physical drop, drop-list membership, refresh / rebuild,
        incremental maintenance, ignore-buffer changes, and DML against
        the underlying tables (via :meth:`note_data_change`).  The plan
        cache (:mod:`repro.optimizer.cache`) uses equality of this value
        as its freshness fast path.
        """
        with self._lock:
            return self._epoch

    def note_data_change(self) -> None:
        """Record that table contents changed under existing statistics.

        Called by :class:`~repro.storage.Database` DML entry points so
        cached plans cannot outlive the data they were costed against
        (row counts and modification counters feed the cost model even
        when no statistic object is touched).
        """
        with self._lock:
            self._epoch += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        key_or_refs,
        histogram_kind: HistogramKind = HistogramKind.MAXDIFF,
    ) -> Statistic:
        """Build and register a statistic.

        Accepts a :class:`StatKey`, a single :class:`ColumnRef`, or an
        ordered iterable of refs.  Creating an existing statistic is an
        error; creating one that sits on the drop-list revives it instead
        of rebuilding (paper Sec 5).
        """
        key = self._as_key(key_or_refs)
        with self._lock:
            if key in self._statistics:
                if key in self._drop_list:
                    self.revive(key)
                    return self._statistics[key]
                raise StatisticsError(f"statistic {key} already exists")
            table = self._db.table(key.table)
            for column in key.columns:
                table.schema.column(column)  # validates
            statistic = build_statistic(
                table, key, self.config, histogram_kind=histogram_kind
            )
            self._statistics[key] = statistic
            self.creation_cost_total += statistic.build_cost
            self._epoch += 1
            return statistic

    def drop(self, key_or_refs) -> None:
        """Physically remove a statistic.

        Raises:
            StatisticsError: if the statistic does not exist.
        """
        key = self._as_key(key_or_refs)
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            del self._statistics[key]
            self._drop_list.discard(key)
            self._ignored.discard(key)
            self._epoch += 1

    def drop_all(self) -> None:
        """Remove every statistic (used between experiment arms)."""
        with self._lock:
            self._statistics.clear()
            self._drop_list.clear()
            self._ignored.clear()
            self._epoch += 1

    def reset_cost_ledger(self) -> None:
        # repro-lint: epoch-exempt=cost ledger totals are bookkeeping, not planner-visible statistics state
        with self._lock:
            self.creation_cost_total = 0.0
            self.update_cost_total = 0.0

    def has(self, key_or_refs) -> bool:
        with self._lock:
            return self._as_key(key_or_refs) in self._statistics

    def get(self, key_or_refs) -> Statistic:
        key = self._as_key(key_or_refs)
        with self._lock:
            try:
                return self._statistics[key]
            except KeyError:
                raise StatisticsError(f"no statistic {key}") from None

    def keys(self) -> List[StatKey]:
        """All physically present statistics (including drop-listed)."""
        with self._lock:
            return list(self._statistics)

    def statistics(self) -> List[Statistic]:
        with self._lock:
            return list(self._statistics.values())

    def keys_on_table(self, table: str) -> List[StatKey]:
        with self._lock:
            return [key for key in self._statistics if key.table == table]

    # ------------------------------------------------------------------
    # drop-list (Sec 5)
    # ------------------------------------------------------------------

    def mark_droppable(self, key_or_refs) -> None:
        """Put a statistic on the drop-list (hidden from the optimizer)."""
        key = self._as_key(key_or_refs)
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            self._drop_list.add(key)
            self._epoch += 1

    def revive(self, key_or_refs) -> None:
        """Remove a statistic from the drop-list, making it visible again."""
        key = self._as_key(key_or_refs)
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            self._drop_list.discard(key)
            self._epoch += 1

    def drop_list(self) -> List[StatKey]:
        with self._lock:
            return sorted(self._drop_list)

    def is_droppable(self, key_or_refs) -> bool:
        with self._lock:
            return self._as_key(key_or_refs) in self._drop_list

    def purge_drop_list(self) -> List[StatKey]:
        """Physically delete every drop-listed statistic (a Sec 6 policy)."""
        with self._lock:
            purged = sorted(self._drop_list)
            for key in purged:
                del self._statistics[key]
            self._drop_list.clear()
            self._epoch += 1
            return purged

    # ------------------------------------------------------------------
    # Ignore_Statistics_Subset (Sec 7.2)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def ignore_subset(self, keys: Iterable):
        """Hide a subset of statistics from the optimizer within a scope.

        This is the paper's ``Ignore_Statistics_Subset(db_id, stat_id_list)``
        server extension: the Shrinking Set algorithm needs ``Plan(Q, S')``
        for S' ⊂ S without physically dropping statistics.
        """
        added = {self._as_key(k) for k in keys}
        with self._lock:
            previous = set(self._ignored)
            self._ignored |= added
            self._epoch += 1
        try:
            yield
        finally:
            with self._lock:
                self._ignored = previous
                self._epoch += 1

    def set_ignored(self, keys: Iterable) -> None:
        """Non-scoped variant used by long-running experiments."""
        with self._lock:
            self._ignored = {self._as_key(k) for k in keys}
            self._epoch += 1

    def clear_ignored(self) -> None:
        with self._lock:
            self._ignored = set()
            self._epoch += 1

    # ------------------------------------------------------------------
    # visibility and estimator lookups
    # ------------------------------------------------------------------

    def is_visible(self, key: StatKey) -> bool:
        with self._lock:
            return (
                key in self._statistics
                and key not in self._ignored
                and key not in self._drop_list
            )

    def visible_keys(self) -> List[StatKey]:
        with self._lock:
            return [key for key in self._statistics if self.is_visible(key)]

    def visible_statistics(self) -> List[Statistic]:
        with self._lock:
            return [
                stat
                for key, stat in self._statistics.items()
                if self.is_visible(key)
            ]

    def histogram_for(self, ref: ColumnRef):
        """Histogram usable for predicates on ``ref``, or None.

        Prefers a single-column statistic; falls back to any visible
        multi-column statistic whose *leading* column is ``ref`` (SQL
        Server's asymmetric multi-column statistics, Sec 7.1).
        """
        single = StatKey.single(ref)
        with self._lock:
            if self.is_visible(single):
                return self._statistics[single].histogram
            for key, stat in self._statistics.items():
                if self.is_visible(key) and key.leading_column == ref:
                    return stat.histogram
            return None

    def density_for_columns(
        self, table: str, columns: Iterable[str]
    ) -> Optional[float]:
        """Density for a *set* of columns of one table, if any visible
        statistic's leading prefix covers exactly that set (any order)."""
        wanted = frozenset(columns)
        size = len(wanted)
        if size == 0:
            return None
        best = None
        with self._lock:
            for key, stat in self._statistics.items():
                if key.table != table or not self.is_visible(key):
                    continue
                if len(key.columns) < size:
                    continue
                if frozenset(key.columns[:size]) == wanted:
                    density = stat.prefix_densities[size - 1]
                    if best is None or density < best:
                        best = density
        return best

    def distinct_for_columns(
        self, table: str, columns: Iterable[str]
    ) -> Optional[float]:
        """Estimated distinct tuples over a column set (1 / density)."""
        density = self.density_for_columns(table, columns)
        if density is None or density <= 0:
            return None
        return 1.0 / density

    def has_histogram_for(self, ref: ColumnRef) -> bool:
        return self.histogram_for(ref) is not None

    def joint_for_columns(self, table: str, columns):
        """A joint histogram over exactly the given two columns, if any.

        Returns ``(joint_histogram, x_column, y_column)`` — the x/y names
        give the histogram's dimension orientation — or ``None``.
        """
        wanted = frozenset(columns)
        if len(wanted) != 2:
            return None
        with self._lock:
            for key, stat in self._statistics.items():
                if key.table != table or not self.is_visible(key):
                    continue
                if stat.joint_histogram is None:
                    continue
                if frozenset(key.columns[:2]) == wanted:
                    return (
                        stat.joint_histogram,
                        key.columns[0],
                        key.columns[1],
                    )
            return None

    # ------------------------------------------------------------------
    # refresh (SQL Server 7.0 trigger, Sec 2 / Sec 6)
    # ------------------------------------------------------------------

    def tables_needing_refresh(self, fraction: float = 0.2) -> List[str]:
        """Tables whose modification counter has *reached* the trigger.

        A table is due once ``rows_modified_since_stats >=
        max(1, fraction * row_count)`` — the boundary case where the
        counter equals exactly ``fraction * rows`` counts as due — and at
        least one statistic is physically present on the table.
        """
        due = []
        with self._lock:
            for name in self._db.table_names():
                data = self._db.table(name)
                threshold = max(1.0, fraction * data.row_count)
                if data.rows_modified_since_stats >= threshold and (
                    self.keys_on_table(name)
                ):
                    due.append(name)
        return due

    def refresh_table(self, table_name: str) -> float:
        """Rebuild every statistic on a table; returns the update cost.

        Refreshing includes drop-listed statistics (they are physically
        present) — that is exactly the update overhead the drop-list is
        meant to eliminate, so policies should purge before refreshing.
        """
        data = self._db.table(table_name)
        total = 0.0
        with self._lock:
            for key in self.keys_on_table(table_name):
                old = self._statistics[key]
                rebuilt = build_statistic(data, key, self.config)
                rebuilt.update_count = old.update_count + 1
                self._statistics[key] = rebuilt
                cost = statistic_update_cost(
                    data.row_count,
                    key,
                    self.config.cost,
                    self.config.sample_rows,
                )
                total += cost
            data.reset_modification_counter()
            self.update_cost_total += total
            self._epoch += 1
        return total

    def apply_incremental_inserts(
        self, table_name: str, inserted: Dict[str, "object"]
    ) -> float:
        """Fold freshly inserted rows into existing histograms in place.

        ``inserted`` maps column name -> encoded value array for the new
        rows.  Every physically present statistic on the table whose
        leading column is covered gets its histogram updated at
        ``stat_incremental_cost_per_row`` per row — the cheap alternative
        to a counter-triggered full refresh (paper ref [8]).  Returns the
        charged cost.  Densities are not maintained; call
        :meth:`keys_needing_rebuild` to find degraded statistics.
        """
        total = 0.0
        per_row = self.config.cost.stat_incremental_cost_per_row
        with self._lock:
            for key in self.keys_on_table(table_name):
                leading = key.columns[0]
                values = inserted.get(leading)
                if values is None:
                    continue
                statistic = self._statistics[key]
                statistic.histogram.add_values(values)
                statistic.row_count += len(values)
                total += len(values) * per_row
            self.update_cost_total += total
            self._epoch += 1
        return total

    def keys_needing_rebuild(
        self, table_name: str, divergence_threshold: float = 0.15
    ) -> List[StatKey]:
        """Statistics whose incrementally maintained histograms degraded."""
        with self._lock:
            return [
                key
                for key in self.keys_on_table(table_name)
                if self._statistics[key].histogram.needs_rebuild(
                    divergence_threshold
                )
            ]

    def rebuild(self, key_or_refs) -> float:
        """Fully rebuild one statistic; returns the update cost charged."""
        key = self._as_key(key_or_refs)
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            data = self._db.table(key.table)
            old = self._statistics[key]
            fresh = build_statistic(data, key, self.config)
            fresh.update_count = old.update_count + 1
            self._statistics[key] = fresh
            cost = statistic_update_cost(
                data.row_count, key, self.config.cost, self.config.sample_rows
            )
            self.update_cost_total += cost
            self._epoch += 1
        return cost

    def update_cost_of_keys(self, keys: Iterable) -> float:
        """Work units to refresh the given statistics once (no side effects).

        This is the Table 1 metric: the update cost of the set of
        statistics a strategy leaves behind.
        """
        total = 0.0
        for key_or_refs in keys:
            key = self._as_key(key_or_refs)
            rows = self._db.table(key.table).row_count
            total += statistic_update_cost(
                rows, key, self.config.cost, self.config.sample_rows
            )
        return total

    # ------------------------------------------------------------------

    def _as_key(self, key_or_refs) -> StatKey:
        return as_stat_key(key_or_refs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"StatisticsManager(stats={len(self._statistics)}, "
                f"drop_list={len(self._drop_list)})"
            )


def ensure_index_statistics(database) -> List[StatKey]:
    """Create single-column statistics on all indexed columns.

    SQL Server automatically keeps statistics on indexed columns; the intro
    experiment's baseline is exactly this set (paper Sec 1).
    """
    created = []
    for ref in database.indexes.indexed_columns():
        key = StatKey.single(ref)
        if not database.stats.has(key):
            database.stats.create(key)
            created.append(key)
    return created
