"""The statistics manager: lifecycle, drop-list, and the ignore interface.

One :class:`StatisticsManager` is attached to each database.  It provides:

* creation / physical drop / refresh of statistics, with a work-unit cost
  ledger (feeding Figures 3-4 and Table 1);
* the **drop-list** of Sec 5: statistics *marked* non-essential are hidden
  from the optimizer but kept physically, so a later query can revive them
  at zero cost instead of rebuilding;
* ``ignore_subset(...)`` — the paper's ``Ignore_Statistics_Subset`` server
  extension (Sec 7.2), as a context manager scoping the "connection
  specific buffer" the paper describes;
* lookups the selectivity estimator uses (leading-column histogram, prefix
  densities), honouring both the ignore set and the drop-list;
* the SQL Server 7.0 refresh trigger: a per-table row-modification counter
  compared against a fraction of the table size (Sec 2, Sec 6).

Thread safety and sharding: the manager partitions its state *by table*
into :class:`StatsShard` objects behind a
:class:`~repro.stats.router.ShardRouter`.  Every shard owns its own
reentrant lock, its own slice of the statistics / drop-list / ignore
state, and its own monotone epoch, so mutations against one table never
contend with (or invalidate cached plans of) queries over tables in other
shards.  Aggregate views (``epoch``, ``keys()``, the cost ledger) sum or
concatenate over shards in ascending shard-id order; single-table
operations route to exactly one shard.  The default is one shard — the
pre-sharding behaviour, byte-identical for every experiment — and the
service re-partitions via :meth:`StatisticsManager.reshard` before going
online.

``ignore_subset`` scopes are process-wide per shard, not per-thread —
callers that need connection-local ignore buffers must serialize their
optimizer calls for the affected shards (the service's per-shard
statement locks do exactly that).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterable, List, Optional, Set

from repro.catalog import ColumnRef
from repro.concurrency import guarded_by, protocol
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.errors import StatisticsError
from repro.stats.builder import build_statistic
from repro.stats.cost import statistic_update_cost
from repro.stats.histogram import HistogramKind
from repro.stats.router import ShardRouter
from repro.stats.statistic import StatKey, Statistic, as_stat_key


class StatsShard:
    """One shard of a :class:`StatisticsManager`: the statistics,
    drop-list, ignore buffer, epoch, and cost ledger of the tables routed
    to it.

    All state is guarded by the shard's own reentrant lock; every
    mutation that can alter an optimization outcome bumps the shard's
    epoch.  Shards never call into each other — cross-shard composition
    happens in the manager, and multi-shard readers tolerate per-shard
    (rather than global) snapshot consistency exactly like the plan
    cache's fingerprint revalidation does.
    """

    _statistics = guarded_by("_lock")
    _drop_list = guarded_by("_lock")
    # The paper's drop-list lifecycle (Sec 5), machine-checked (R012):
    # transitions must flip the _drop_list carrier (create revives a
    # drop-listed key instead of failing), guarded ops must check the
    # store first, and every estimator lookup must consult is_visible.
    _droplist_protocol = protocol(
        "stat-drop-list",
        rule="R012",
        states=("visible", "hidden"),
        initial="visible",
        transitions={
            "create": ("hidden", "visible"),
            "mark_droppable": ("visible", "hidden"),
            "revive": ("hidden", "visible"),
        },
        carrier="_drop_list",
        store="_statistics",
        guarded=("create", "mark_droppable", "revive"),
        reads=(
            "histogram_for",
            "density_for_columns",
            "joint_for_columns",
            "visible_keys",
            "visible_statistics",
            "drop_list",
            "is_droppable",
        ),
        visibility="is_visible",
    )
    _ignored = guarded_by("_lock")
    _epoch = guarded_by("_lock")
    _creation_cost = guarded_by("_lock")
    _update_cost = guarded_by("_lock")

    def __init__(self, shard_id: int, database, owner) -> None:
        self.shard_id = shard_id
        self._db = database
        self._owner = owner
        self._lock = threading.RLock()
        self._statistics: Dict[StatKey, Statistic] = {}
        self._drop_list: Set[StatKey] = set()
        self._ignored: Set[StatKey] = set()
        self._epoch = 0
        self._creation_cost = 0.0
        self._update_cost = 0.0

    @property
    def _config(self) -> OptimizerConfig:
        # live read: experiments reassign manager.config mid-run
        return self._owner.config

    # ------------------------------------------------------------------
    # epoch
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """This shard's monotone statistics-change counter."""
        with self._lock:
            return self._epoch

    def note_data_change(self) -> None:
        """Record DML against a table routed to this shard."""
        with self._lock:
            self._epoch += 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def create(self, key: StatKey, histogram_kind: HistogramKind) -> Statistic:
        with self._lock:
            if key in self._statistics:
                if key in self._drop_list:
                    self._drop_list.discard(key)
                    self._epoch += 1
                    return self._statistics[key]
                raise StatisticsError(f"statistic {key} already exists")
            table = self._db.table(key.table)
            for column in key.columns:
                table.schema.column(column)  # validates
            statistic = build_statistic(
                table, key, self._config, histogram_kind=histogram_kind
            )
            self._statistics[key] = statistic
            self._creation_cost += statistic.build_cost
            self._epoch += 1
            return statistic

    def drop(self, key: StatKey) -> None:
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            del self._statistics[key]
            self._drop_list.discard(key)
            self._ignored.discard(key)
            self._epoch += 1

    def drop_all(self) -> None:
        with self._lock:
            self._statistics.clear()
            self._drop_list.clear()
            self._ignored.clear()
            self._epoch += 1

    def has(self, key: StatKey) -> bool:
        with self._lock:
            return key in self._statistics

    def get(self, key: StatKey) -> Statistic:
        with self._lock:
            try:
                return self._statistics[key]
            except KeyError:
                raise StatisticsError(f"no statistic {key}") from None

    def keys(self) -> List[StatKey]:
        with self._lock:
            return list(self._statistics)

    def statistics(self) -> List[Statistic]:
        with self._lock:
            return list(self._statistics.values())

    def keys_on_table(self, table: str) -> List[StatKey]:
        with self._lock:
            return [key for key in self._statistics if key.table == table]

    # ------------------------------------------------------------------
    # cost ledger
    # ------------------------------------------------------------------

    @property
    def creation_cost(self) -> float:
        with self._lock:
            return self._creation_cost

    @property
    def update_cost(self) -> float:
        with self._lock:
            return self._update_cost

    def set_cost_ledger(self, creation: float, update: float) -> None:
        # repro-lint: epoch-exempt=cost ledger totals are bookkeeping, not planner-visible statistics state
        with self._lock:
            self._creation_cost = creation
            self._update_cost = update

    # ------------------------------------------------------------------
    # drop-list (Sec 5)
    # ------------------------------------------------------------------

    def mark_droppable(self, key: StatKey) -> None:
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            self._drop_list.add(key)
            self._epoch += 1

    def revive(self, key: StatKey) -> None:
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            self._drop_list.discard(key)
            self._epoch += 1

    def drop_list(self) -> List[StatKey]:
        with self._lock:
            return sorted(self._drop_list)

    def is_droppable(self, key: StatKey) -> bool:
        with self._lock:
            return key in self._drop_list

    def purge_drop_list(self) -> List[StatKey]:
        with self._lock:
            purged = sorted(self._drop_list)
            for key in purged:
                del self._statistics[key]
            self._drop_list.clear()
            self._epoch += 1
            return purged

    # ------------------------------------------------------------------
    # ignore buffer (Sec 7.2)
    # ------------------------------------------------------------------

    def add_ignored(self, keys: Set[StatKey]) -> Set[StatKey]:
        """Hide ``keys``; returns the previous ignore set (a copy)."""
        with self._lock:
            previous = set(self._ignored)
            self._ignored |= keys
            self._epoch += 1
            return previous

    def restore_ignored(self, previous: Set[StatKey]) -> None:
        with self._lock:
            self._ignored = set(previous)
            self._epoch += 1

    def set_ignored(self, keys: Set[StatKey]) -> None:
        with self._lock:
            self._ignored = set(keys)
            self._epoch += 1

    def ignored(self) -> Set[StatKey]:
        with self._lock:
            return set(self._ignored)

    # ------------------------------------------------------------------
    # visibility and estimator lookups
    # ------------------------------------------------------------------

    def is_visible(self, key: StatKey) -> bool:
        with self._lock:
            return (
                key in self._statistics
                and key not in self._ignored
                and key not in self._drop_list
            )

    def visible_keys(self) -> List[StatKey]:
        with self._lock:
            return [key for key in self._statistics if self.is_visible(key)]

    def visible_statistics(self) -> List[Statistic]:
        with self._lock:
            return [
                stat
                for key, stat in self._statistics.items()
                if self.is_visible(key)
            ]

    def histogram_for(self, ref: ColumnRef):
        single = StatKey.single(ref)
        with self._lock:
            if self.is_visible(single):
                return self._statistics[single].histogram
            for key, stat in self._statistics.items():
                if self.is_visible(key) and key.leading_column == ref:
                    return stat.histogram
            return None

    def density_for_columns(
        self, table: str, wanted: frozenset, size: int
    ) -> Optional[float]:
        best = None
        with self._lock:
            for key, stat in self._statistics.items():
                if key.table != table or not self.is_visible(key):
                    continue
                if len(key.columns) < size:
                    continue
                if frozenset(key.columns[:size]) == wanted:
                    density = stat.prefix_densities[size - 1]
                    if best is None or density < best:
                        best = density
        return best

    def joint_for_columns(self, table: str, wanted: frozenset):
        with self._lock:
            for key, stat in self._statistics.items():
                if key.table != table or not self.is_visible(key):
                    continue
                if stat.joint_histogram is None:
                    continue
                if frozenset(key.columns[:2]) == wanted:
                    return (
                        stat.joint_histogram,
                        key.columns[0],
                        key.columns[1],
                    )
            return None

    # ------------------------------------------------------------------
    # refresh / incremental maintenance
    # ------------------------------------------------------------------

    def refresh_table(self, table_name: str) -> float:
        data = self._db.table(table_name)
        total = 0.0
        with self._lock:
            for key in self.keys_on_table(table_name):
                old = self._statistics[key]
                rebuilt = build_statistic(data, key, self._config)
                rebuilt.update_count = old.update_count + 1
                self._statistics[key] = rebuilt
                cost = statistic_update_cost(
                    data.row_count,
                    key,
                    self._config.cost,
                    self._config.sample_rows,
                )
                total += cost
            data.reset_modification_counter()
            self._update_cost += total
            self._epoch += 1
        return total

    def apply_incremental_inserts(
        self, table_name: str, inserted: Dict[str, "object"]
    ) -> float:
        total = 0.0
        per_row = self._config.cost.stat_incremental_cost_per_row
        with self._lock:
            for key in self.keys_on_table(table_name):
                leading = key.columns[0]
                values = inserted.get(leading)
                if values is None:
                    continue
                statistic = self._statistics[key]
                statistic.histogram.add_values(values)
                statistic.row_count += len(values)
                total += len(values) * per_row
            self._update_cost += total
            self._epoch += 1
        return total

    def keys_needing_rebuild(
        self, table_name: str, divergence_threshold: float
    ) -> List[StatKey]:
        with self._lock:
            return [
                key
                for key in self.keys_on_table(table_name)
                if self._statistics[key].histogram.needs_rebuild(
                    divergence_threshold
                )
            ]

    def rebuild(self, key: StatKey) -> float:
        with self._lock:
            if key not in self._statistics:
                raise StatisticsError(f"no statistic {key}")
            data = self._db.table(key.table)
            old = self._statistics[key]
            fresh = build_statistic(data, key, self._config)
            fresh.update_count = old.update_count + 1
            self._statistics[key] = fresh
            cost = statistic_update_cost(
                data.row_count,
                key,
                self._config.cost,
                self._config.sample_rows,
            )
            self._update_cost += cost
            self._epoch += 1
        return cost

    # ------------------------------------------------------------------
    # resharding support
    # ------------------------------------------------------------------

    def export_state(self):
        """Snapshot everything for redistribution (copies)."""
        with self._lock:
            return (
                dict(self._statistics),
                set(self._drop_list),
                set(self._ignored),
                self._creation_cost,
                self._update_cost,
                self._epoch,
            )

    def import_state(
        self,
        statistics: Dict[StatKey, Statistic],
        drop_list: Set[StatKey],
        ignored: Set[StatKey],
        epoch_floor: int,
    ) -> None:
        """Install redistributed state; the epoch starts at
        ``epoch_floor`` so no pre-reshard epoch sum can alias a
        post-reshard one (see :meth:`StatisticsManager.reshard`)."""
        with self._lock:
            self._statistics = dict(statistics)
            self._drop_list = set(drop_list)
            self._ignored = set(ignored)
            self._epoch = epoch_floor
            self._creation_cost = 0.0
            self._update_cost = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"StatsShard(id={self.shard_id}, "
                f"stats={len(self._statistics)}, epoch={self._epoch})"
            )


class StatisticsManager:
    """Owns all statistics of one :class:`~repro.storage.Database`,
    partitioned by table into :class:`StatsShard` objects.

    The public API is unchanged from the unsharded manager; ``shards=1``
    (the default) reproduces its behaviour exactly.  Multi-shard managers
    additionally expose :attr:`router`, :meth:`shard_of`,
    :meth:`epoch_for_tables`, and :meth:`reshard`.
    """

    def __init__(
        self,
        database,
        config: OptimizerConfig = DEFAULT_CONFIG,
        shards: int = 1,
    ) -> None:
        self._db = database
        self.config = config
        self._router = ShardRouter(shards, database.table_names())
        self._shards = [
            StatsShard(index, database, self) for index in range(shards)
        ]

    # ------------------------------------------------------------------
    # sharding surface
    # ------------------------------------------------------------------

    @property
    def router(self) -> ShardRouter:
        """The table -> shard router (shared with the service layer)."""
        return self._router

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_of(self, table: str) -> int:
        """Shard id owning ``table``'s statistics."""
        return self._router.shard_of(table)

    def shard(self, shard_id: int) -> StatsShard:
        """The shard object for ``shard_id`` (introspection and tests)."""
        return self._shards[shard_id]

    def reshard(self, shards: int) -> None:
        """Repartition the manager into ``shards`` shards.

        Not safe to run concurrently with other manager use — the service
        calls it during startup, before any worker thread exists.  Every
        new shard's epoch starts at ``old_total_epoch + 1``: each
        post-reshard ``epoch_for_tables`` sum then strictly exceeds every
        pre-reshard sum, so a cached plan stored under the old partition
        can never alias a fresh one on the epoch fast path (it falls back
        to fingerprint revalidation, which is partition-independent).
        """
        if shards == len(self._shards):
            return
        statistics: Dict[StatKey, Statistic] = {}
        drop_list: Set[StatKey] = set()
        ignored: Set[StatKey] = set()
        creation = 0.0
        update = 0.0
        old_total = 0
        for shard in self._shards:
            stats, drops, ign, c_cost, u_cost, epoch = shard.export_state()
            statistics.update(stats)
            drop_list |= drops
            ignored |= ign
            creation += c_cost
            update += u_cost
            old_total += epoch
        tables = set(self._db.table_names())
        tables.update(key.table for key in statistics)
        router = ShardRouter(shards, tables)
        new_shards = [
            StatsShard(index, self._db, self) for index in range(shards)
        ]
        floor = old_total + 1
        for index, shard in enumerate(new_shards):
            owned = {
                key: stat
                for key, stat in statistics.items()
                if router.shard_of(key.table) == index
            }
            shard.import_state(
                owned,
                {k for k in drop_list if router.shard_of(k.table) == index},
                {k for k in ignored if router.shard_of(k.table) == index},
                floor,
            )
        new_shards[0].set_cost_ledger(creation, update)
        self._router = router
        self._shards = new_shards

    def _shard_for_key(self, key: StatKey) -> StatsShard:
        return self._shards[self._router.shard_of(key.table)]

    def _shard_for_table(self, table: str) -> StatsShard:
        return self._shards[self._router.shard_of(table)]

    # ------------------------------------------------------------------
    # statistics epoch (plan-cache invalidation)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonically increasing counter of statistics-affecting change.

        The sum of all shard epochs — each component is monotone
        non-decreasing, so equality of the sum implies equality of every
        component.  Bumped by every mutation that can alter an
        optimization outcome: creation, physical drop, drop-list
        membership, refresh / rebuild, incremental maintenance,
        ignore-buffer changes, and DML against the underlying tables (via
        :meth:`note_data_change`).  The plan cache
        (:mod:`repro.optimizer.cache`) uses equality of this value as its
        freshness fast path.
        """
        return sum(shard.epoch for shard in self._shards)

    def epoch_for_tables(self, tables: Iterable[str]) -> int:
        """Epoch restricted to the shards owning ``tables``.

        The per-shard analogue of :attr:`epoch`: queries keyed by this
        value stay cache-fresh across mutations in *other* shards, which
        is the point of sharding the catalog state.  Same soundness
        argument as :attr:`epoch` — a sum of monotone components.
        """
        ids = self._router.shard_ids_for(tables)
        return sum(self._shards[i].epoch for i in ids)

    def note_data_change(self, table: Optional[str] = None) -> None:
        """Record that table contents changed under existing statistics.

        Called by :class:`~repro.storage.Database` DML entry points so
        cached plans cannot outlive the data they were costed against
        (row counts and modification counters feed the cost model even
        when no statistic object is touched).  With a ``table`` the bump
        is confined to its shard; without one (legacy callers) every
        shard is bumped.
        """
        if table is not None:
            self._shard_for_table(table).note_data_change()
            return
        for shard in self._shards:
            shard.note_data_change()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        key_or_refs,
        histogram_kind: HistogramKind = HistogramKind.MAXDIFF,
    ) -> Statistic:
        """Build and register a statistic.

        Accepts a :class:`StatKey`, a single :class:`ColumnRef`, or an
        ordered iterable of refs.  Creating an existing statistic is an
        error; creating one that sits on the drop-list revives it instead
        of rebuilding (paper Sec 5).
        """
        key = self._as_key(key_or_refs)
        return self._shard_for_key(key).create(key, histogram_kind)

    def drop(self, key_or_refs) -> None:
        """Physically remove a statistic.

        Raises:
            StatisticsError: if the statistic does not exist.
        """
        key = self._as_key(key_or_refs)
        self._shard_for_key(key).drop(key)

    def drop_all(self) -> None:
        """Remove every statistic (used between experiment arms)."""
        for shard in self._shards:
            shard.drop_all()

    def reset_cost_ledger(self) -> None:
        for shard in self._shards:
            shard.set_cost_ledger(0.0, 0.0)

    @property
    def creation_cost_total(self) -> float:
        """Work units spent building statistics (sum over shards)."""
        return sum(shard.creation_cost for shard in self._shards)

    @creation_cost_total.setter
    def creation_cost_total(self, value: float) -> None:
        for shard in self._shards:
            shard.set_cost_ledger(0.0, shard.update_cost)
        self._shards[0].set_cost_ledger(value, self._shards[0].update_cost)

    @property
    def update_cost_total(self) -> float:
        """Work units spent refreshing statistics (sum over shards)."""
        return sum(shard.update_cost for shard in self._shards)

    @update_cost_total.setter
    def update_cost_total(self, value: float) -> None:
        for shard in self._shards:
            shard.set_cost_ledger(shard.creation_cost, 0.0)
        self._shards[0].set_cost_ledger(self._shards[0].creation_cost, value)

    def has(self, key_or_refs) -> bool:
        key = self._as_key(key_or_refs)
        return self._shard_for_key(key).has(key)

    def get(self, key_or_refs) -> Statistic:
        key = self._as_key(key_or_refs)
        return self._shard_for_key(key).get(key)

    def keys(self) -> List[StatKey]:
        """All physically present statistics (including drop-listed)."""
        found: List[StatKey] = []
        for shard in self._shards:
            found.extend(shard.keys())
        return found

    def statistics(self) -> List[Statistic]:
        found: List[Statistic] = []
        for shard in self._shards:
            found.extend(shard.statistics())
        return found

    def keys_on_table(self, table: str) -> List[StatKey]:
        return self._shard_for_table(table).keys_on_table(table)

    # ------------------------------------------------------------------
    # drop-list (Sec 5)
    # ------------------------------------------------------------------

    def mark_droppable(self, key_or_refs) -> None:
        """Put a statistic on the drop-list (hidden from the optimizer)."""
        key = self._as_key(key_or_refs)
        self._shard_for_key(key).mark_droppable(key)

    def revive(self, key_or_refs) -> None:
        """Remove a statistic from the drop-list, making it visible again."""
        key = self._as_key(key_or_refs)
        self._shard_for_key(key).revive(key)

    def drop_list(self) -> List[StatKey]:
        found: List[StatKey] = []
        for shard in self._shards:
            found.extend(shard.drop_list())
        return sorted(found)

    def is_droppable(self, key_or_refs) -> bool:
        key = self._as_key(key_or_refs)
        return self._shard_for_key(key).is_droppable(key)

    def purge_drop_list(self) -> List[StatKey]:
        """Physically delete every drop-listed statistic (a Sec 6 policy)."""
        purged: List[StatKey] = []
        for shard in self._shards:
            purged.extend(shard.purge_drop_list())
        return sorted(purged)

    # ------------------------------------------------------------------
    # Ignore_Statistics_Subset (Sec 7.2)
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def ignore_subset(self, keys: Iterable):
        """Hide a subset of statistics from the optimizer within a scope.

        This is the paper's ``Ignore_Statistics_Subset(db_id, stat_id_list)``
        server extension: the Shrinking Set algorithm needs ``Plan(Q, S')``
        for S' ⊂ S without physically dropping statistics.  Only the
        shards owning the keys' tables are touched (and epoch-bumped).
        """
        added = {self._as_key(k) for k in keys}
        by_shard: Dict[int, Set[StatKey]] = {}
        for key in added:
            by_shard.setdefault(self._router.shard_of(key.table), set()).add(
                key
            )
        previous: Dict[int, Set[StatKey]] = {}
        try:
            for shard_id in sorted(by_shard):
                previous[shard_id] = self._shards[shard_id].add_ignored(
                    by_shard[shard_id]
                )
            yield
        finally:
            for shard_id in sorted(previous):
                self._shards[shard_id].restore_ignored(previous[shard_id])

    def set_ignored(self, keys: Iterable) -> None:
        """Non-scoped variant used by long-running experiments."""
        wanted = {self._as_key(k) for k in keys}
        for index, shard in enumerate(self._shards):
            shard.set_ignored(
                {
                    k
                    for k in wanted
                    if self._router.shard_of(k.table) == index
                }
            )

    def clear_ignored(self) -> None:
        for shard in self._shards:
            shard.set_ignored(set())

    # ------------------------------------------------------------------
    # visibility and estimator lookups
    # ------------------------------------------------------------------

    def is_visible(self, key: StatKey) -> bool:
        return self._shard_for_key(key).is_visible(key)

    def visible_keys(self) -> List[StatKey]:
        found: List[StatKey] = []
        for shard in self._shards:
            found.extend(shard.visible_keys())
        return found

    def visible_statistics(self) -> List[Statistic]:
        found: List[Statistic] = []
        for shard in self._shards:
            found.extend(shard.visible_statistics())
        return found

    def histogram_for(self, ref: ColumnRef):
        """Histogram usable for predicates on ``ref``, or None.

        Prefers a single-column statistic; falls back to any visible
        multi-column statistic whose *leading* column is ``ref`` (SQL
        Server's asymmetric multi-column statistics, Sec 7.1).
        """
        return self._shard_for_table(ref.table).histogram_for(ref)

    def density_for_columns(
        self, table: str, columns: Iterable[str]
    ) -> Optional[float]:
        """Density for a *set* of columns of one table, if any visible
        statistic's leading prefix covers exactly that set (any order)."""
        wanted = frozenset(columns)
        size = len(wanted)
        if size == 0:
            return None
        return self._shard_for_table(table).density_for_columns(
            table, wanted, size
        )

    def distinct_for_columns(
        self, table: str, columns: Iterable[str]
    ) -> Optional[float]:
        """Estimated distinct tuples over a column set (1 / density)."""
        density = self.density_for_columns(table, columns)
        if density is None or density <= 0:
            return None
        return 1.0 / density

    def has_histogram_for(self, ref: ColumnRef) -> bool:
        return self.histogram_for(ref) is not None

    def joint_for_columns(self, table: str, columns):
        """A joint histogram over exactly the given two columns, if any.

        Returns ``(joint_histogram, x_column, y_column)`` — the x/y names
        give the histogram's dimension orientation — or ``None``.
        """
        wanted = frozenset(columns)
        if len(wanted) != 2:
            return None
        return self._shard_for_table(table).joint_for_columns(table, wanted)

    # ------------------------------------------------------------------
    # refresh (SQL Server 7.0 trigger, Sec 2 / Sec 6)
    # ------------------------------------------------------------------

    def tables_needing_refresh(self, fraction: float = 0.2) -> List[str]:
        """Tables whose modification counter has *reached* the trigger.

        A table is due once ``rows_modified_since_stats >=
        max(1, fraction * row_count)`` — the boundary case where the
        counter equals exactly ``fraction * rows`` counts as due — and at
        least one statistic is physically present on the table.
        """
        due = []
        for name in self._db.table_names():
            data = self._db.table(name)
            threshold = max(1.0, fraction * data.row_count)
            if data.rows_modified_since_stats >= threshold and (
                self.keys_on_table(name)
            ):
                due.append(name)
        return due

    def refresh_table(self, table_name: str) -> float:
        """Rebuild every statistic on a table; returns the update cost.

        Refreshing includes drop-listed statistics (they are physically
        present) — that is exactly the update overhead the drop-list is
        meant to eliminate, so policies should purge before refreshing.
        """
        return self._shard_for_table(table_name).refresh_table(table_name)

    def apply_incremental_inserts(
        self, table_name: str, inserted: Dict[str, "object"]
    ) -> float:
        """Fold freshly inserted rows into existing histograms in place.

        ``inserted`` maps column name -> encoded value array for the new
        rows.  Every physically present statistic on the table whose
        leading column is covered gets its histogram updated at
        ``stat_incremental_cost_per_row`` per row — the cheap alternative
        to a counter-triggered full refresh (paper ref [8]).  Returns the
        charged cost.  Densities are not maintained; call
        :meth:`keys_needing_rebuild` to find degraded statistics.
        """
        return self._shard_for_table(table_name).apply_incremental_inserts(
            table_name, inserted
        )

    def keys_needing_rebuild(
        self, table_name: str, divergence_threshold: float = 0.15
    ) -> List[StatKey]:
        """Statistics whose incrementally maintained histograms degraded."""
        return self._shard_for_table(table_name).keys_needing_rebuild(
            table_name, divergence_threshold
        )

    def rebuild(self, key_or_refs) -> float:
        """Fully rebuild one statistic; returns the update cost charged."""
        key = self._as_key(key_or_refs)
        return self._shard_for_key(key).rebuild(key)

    def update_cost_of_keys(self, keys: Iterable) -> float:
        """Work units to refresh the given statistics once (no side effects).

        This is the Table 1 metric: the update cost of the set of
        statistics a strategy leaves behind.
        """
        total = 0.0
        for key_or_refs in keys:
            key = self._as_key(key_or_refs)
            rows = self._db.table(key.table).row_count
            total += statistic_update_cost(
                rows, key, self.config.cost, self.config.sample_rows
            )
        return total

    # ------------------------------------------------------------------

    def _as_key(self, key_or_refs) -> StatKey:
        return as_stat_key(key_or_refs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StatisticsManager(stats={len(self.keys())}, "
            f"drop_list={len(self.drop_list())}, "
            f"shards={len(self._shards)})"
        )


def ensure_index_statistics(database) -> List[StatKey]:
    """Create single-column statistics on all indexed columns.

    SQL Server automatically keeps statistics on indexed columns; the intro
    experiment's baseline is exactly this set (paper Sec 1).
    """
    created = []
    for ref in database.indexes.indexed_columns():
        key = StatKey.single(ref)
        if not database.stats.has(key):
            database.stats.create(key)
            created.append(key)
    return created
