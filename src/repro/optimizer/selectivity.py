"""Selectivity estimation: statistics first, magic numbers as fallback.

This is the module the paper had to modify in SQL Server (Sec 7.2): "we
had to modify the selectivity estimation module to accept the selectivity
of such predicates as a parameter rather than using the default magic
number".  Here that parameter is the ``overrides`` mapping from
:class:`~repro.optimizer.variables.SelectivityVariable` to a value in
[0, 1]; an override applies only to variables that lack statistics, which
is exactly the hook MNSA needs.

Resolution order for each variable:

1. an applicable, *visible* statistic (histogram or prefix density);
2. an entry in ``overrides``;
3. the magic number for the predicate kind.

When a :class:`~repro.learned.CorrectionStore` is attached, the resolved
filter / join / group selectivity is additionally passed through the
store's learned multiplicative correction (clamped to [0, 1]) before the
cost model sees it; a :class:`~repro.learned.SketchJoinEstimator`, when
attached, replaces the single-predicate join estimate with a sketch
estimate where one is available.  Both hooks receive raw table/column
names, so this module stays independent of the learned package.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.catalog import ColumnRef, ColumnType
from repro.concurrency import protocol
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.errors import OptimizerError
from repro.optimizer.variables import (
    GroupByVariable,
    JoinVariable,
    PredicateVariable,
    SelectivityVariable,
    join_variables_of,
)
from repro.sql.predicates import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    Predicate,
)

_MAX_LIKE_CODES = 512


class SelectivityEstimator:
    """Estimates selectivities for one query-optimization call.

    Args:
        database: the :class:`~repro.storage.Database` (for statistics and
            string dictionaries).
        config: optimizer configuration (magic numbers).
        overrides: optional mapping variable -> forced selectivity in
            [0, 1], applied only where statistics are missing.
        corrections: optional :class:`~repro.learned.CorrectionStore`
            whose learned factors adjust every resolved selectivity.
        join_estimator: optional
            :class:`~repro.learned.SketchJoinEstimator` consulted for
            single-predicate equijoin selectivities.
        use_statistics: when False, skip every statistics lookup and
            resolve all variables through overrides / magic numbers — the
            service's degraded mode
            (:class:`~repro.optimizer.cache.OptimizationRequest`'s
            ``degraded`` flag).  The estimator then takes no statistics
            lock at all.
    """

    # repro-lint: optimize-path
    # repro-lint: plan-state-exempt=_join_cache: per-invocation memo on an estimator that lives for exactly one optimizer call; it never outlives the plan it shaped

    # R012, read side: every statistics lookup that can shape an
    # estimate must go through the manager's drop-list-aware accessors
    # (``self._db.stats.*``), never a raw statistics container — a
    # hidden (drop-listed or ignored) statistic must not feed a plan.
    _droplist_reads = protocol(
        "stat-drop-list",
        rule="R012",
        states=("visible", "hidden"),
        initial="visible",
        reads=(
            "predicate_has_statistics",
            "_histogram_selectivity",
            "_try_joint_estimate",
            "_join_group_selectivity",
        ),
        delegate="stats",
    )

    def __init__(
        self,
        database,
        config: OptimizerConfig = DEFAULT_CONFIG,
        overrides: Optional[Dict[SelectivityVariable, float]] = None,
        corrections=None,
        join_estimator=None,
        use_statistics: bool = True,
    ) -> None:
        self._db = database
        self._config = config
        self._magic = config.magic
        self._overrides = dict(overrides or {})
        self._corrections = corrections
        self._join_estimator = join_estimator
        self._use_statistics = use_statistics
        self._join_cache: Dict[JoinVariable, float] = {}
        for variable, value in self._overrides.items():
            if not 0.0 <= value <= 1.0:
                raise OptimizerError(
                    f"override for {variable} must be in [0, 1], got {value}"
                )

    # ------------------------------------------------------------------
    # encoding helpers
    # ------------------------------------------------------------------

    def _encode(self, ref: ColumnRef, value):
        """Map a literal into the stored domain (string -> code)."""
        ctype = self._db.schema.column(ref).type
        if ctype == ColumnType.STRING:
            code = self._db.table(ref.table).string_dictionary(
                ref.column
            ).lookup(value)
            return code  # None if the string never occurs
        return value

    # ------------------------------------------------------------------
    # single predicates
    # ------------------------------------------------------------------

    def predicate_has_statistics(self, predicate: Predicate) -> bool:
        """True if a visible histogram covers the predicate's column."""
        if not self._use_statistics:
            return False
        (ref,) = predicate.columns()
        return self._db.stats.has_histogram_for(ref)

    # joins use join magic separately
    # repro-lint: dispatch=Predicate except=JoinPredicate
    def _magic_for(self, predicate: Predicate) -> float:
        kind = predicate.kind
        magic = self._magic
        if isinstance(predicate, ComparisonPredicate):
            if predicate.op == "=":
                return magic.equality
            if predicate.op == "<>":
                return magic.inequality
            return magic.range_
        if isinstance(predicate, BetweenPredicate):
            return magic.between
        if isinstance(predicate, InPredicate):
            n = min(len(predicate.values), self._config.max_in_list_items)
            return min(1.0, n * magic.in_list_per_item)
        if isinstance(predicate, LikePredicate):
            return magic.like
        raise OptimizerError(f"no magic number for predicate kind {kind}")

    # repro-lint: dispatch=Predicate except=JoinPredicate
    def _histogram_selectivity(self, predicate: Predicate) -> float:
        (ref,) = predicate.columns()
        histogram = self._db.stats.histogram_for(ref)
        assert histogram is not None
        if isinstance(predicate, ComparisonPredicate):
            value = self._encode(ref, predicate.value)
            if value is None:
                # string literal absent from the data
                return 0.0 if predicate.op == "=" else 1.0
            if predicate.op == "=":
                return histogram.selectivity_equal(value)
            if predicate.op == "<>":
                return histogram.selectivity_not_equal(value)
            if predicate.op == "<":
                return histogram.selectivity_range(
                    high=value, high_inclusive=False
                )
            if predicate.op == "<=":
                return histogram.selectivity_range(high=value)
            if predicate.op == ">":
                return histogram.selectivity_range(
                    low=value, low_inclusive=False
                )
            return histogram.selectivity_range(low=value)
        if isinstance(predicate, BetweenPredicate):
            return histogram.selectivity_range(
                low=predicate.low, high=predicate.high
            )
        if isinstance(predicate, InPredicate):
            encoded = [
                self._encode(predicate.column, v) for v in predicate.values
            ]
            return histogram.selectivity_in(
                [v for v in encoded if v is not None]
            )
        if isinstance(predicate, LikePredicate):
            dictionary = self._db.table(
                predicate.column.table
            ).string_dictionary(predicate.column.column)
            codes = dictionary.codes_matching_like(predicate.pattern)
            if codes.shape[0] > _MAX_LIKE_CODES:
                # too many matches to enumerate; estimate by distinct share
                ndv = max(1.0, histogram.distinct_count)
                return min(1.0, codes.shape[0] / ndv)
            return histogram.selectivity_in(codes.tolist())
        raise OptimizerError(f"unsupported predicate {predicate}")

    def predicate_selectivity(self, predicate: Predicate) -> float:
        """Selectivity of one selection predicate (resolution order above)."""
        if self.predicate_has_statistics(predicate):
            return self._histogram_selectivity(predicate)
        variable = PredicateVariable(predicate)
        if variable in self._overrides:
            return self._overrides[variable]
        return self._magic_for(predicate)

    # ------------------------------------------------------------------
    # conjunctions on one table
    # ------------------------------------------------------------------

    def _box_bounds(self, predicate: Predicate):
        """Closed interval covered by a boxable predicate, or None.

        Boxable: equality and range comparisons plus BETWEEN, over
        orderable domains.  IN / LIKE / inequality are not boxable.
        """
        if isinstance(predicate, BetweenPredicate):
            return (predicate.low, predicate.high)
        if not isinstance(predicate, ComparisonPredicate):
            return None
        (ref,) = predicate.columns()
        value = self._encode(ref, predicate.value)
        if value is None:
            return None
        if predicate.op == "=":
            return (value, value)
        if predicate.op in ("<", "<="):
            return (None, value)
        if predicate.op in (">", ">="):
            return (value, None)
        return None

    def _try_joint_estimate(self, table: str, predicates):
        """Estimate a pair of boxable predicates through a joint
        histogram, if one covers their columns.

        Returns ``(selectivity, covered_predicates)`` or ``None``.
        """
        if not self._use_statistics:
            return None
        boxable = {}
        for predicate in predicates:
            bounds = self._box_bounds(predicate)
            if bounds is None:
                continue
            (ref,) = predicate.columns()
            # one boxable predicate per column (first wins)
            boxable.setdefault(ref.column, (predicate, bounds))
        columns = list(boxable)
        for i, cx in enumerate(columns):
            for cy in columns[i + 1 :]:
                found = self._db.stats.joint_for_columns(table, {cx, cy})
                if found is None:
                    continue
                joint, x_name, y_name = found
                pred_x, (x_lo, x_hi) = boxable[x_name]
                pred_y, (y_lo, y_hi) = boxable[y_name]
                selectivity = joint.selectivity_box(
                    x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi
                )
                return selectivity, {pred_x, pred_y}
        return None

    def table_filter_selectivity(
        self, table: str, predicates: Iterable[Predicate]
    ) -> float:
        """Combined selectivity of a table's selection conjunction.

        Resolution order: a joint (2-D) histogram covering a pair of
        boxable predicates, if enabled and present; then a multi-column
        prefix density covering the equality conjunction (SQL Server's
        density path); then per-predicate independence.
        """
        predicates = list(predicates)
        correction_columns = {
            ref.column
            for predicate in predicates
            for ref in predicate.columns()
        }
        joint_total = 1.0
        joint_result = self._try_joint_estimate(table, predicates)
        if joint_result is not None:
            selectivity, covered = joint_result
            joint_total = selectivity
            predicates = [p for p in predicates if p not in covered]
        equality = [
            p
            for p in predicates
            if isinstance(p, ComparisonPredicate) and p.op == "="
        ]
        others = [p for p in predicates if p not in equality]
        total = 1.0
        covered = False
        if len(equality) >= 2 and self._use_statistics:
            columns = {p.column.column for p in equality}
            if len(columns) == len(equality):
                density = self._db.stats.density_for_columns(table, columns)
                if density is not None:
                    total *= density
                    covered = True
        if not covered:
            for predicate in equality:
                total *= self.predicate_selectivity(predicate)
        for predicate in others:
            total *= self.predicate_selectivity(predicate)
        total = min(1.0, max(0.0, total * joint_total))
        if self._corrections is not None and correction_columns:
            total = self._corrections.correct_filter(
                table, correction_columns, total
            )
        return total

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _side_distinct(self, table: str, columns) -> Optional[float]:
        """Estimated distinct count of a join side's column set."""
        if not self._use_statistics:
            return None
        columns = list(columns)
        if len(columns) == 1:
            histogram = self._db.stats.histogram_for(
                ColumnRef(table, columns[0])
            )
            if histogram is not None:
                return max(1.0, histogram.distinct_count)
            return self._db.stats.distinct_for_columns(table, columns)
        return self._db.stats.distinct_for_columns(table, columns)

    def join_has_statistics(self, variable: JoinVariable) -> bool:
        """True if at least one side's distinct count is known."""
        left_table, right_table = variable.tables
        left_cols = [p.side_for(left_table).column for p in variable.predicates]
        right_cols = [
            p.side_for(right_table).column for p in variable.predicates
        ]
        return (
            self._side_distinct(left_table, left_cols) is not None
            or self._side_distinct(right_table, right_cols) is not None
        )

    def join_group_selectivity(self, variable: JoinVariable) -> float:
        """Selectivity of a table pair's join conjunction.

        Resolution order:

        1. for a single-column join with histograms on *both* sides,
           align the histograms (:meth:`Histogram.join_selectivity`) —
           exact on disjoint or partially overlapping domains where the
           global ndv rule fails;
        2. the containment assumption ``1 / max(known ndv)`` over the
           joined column sets;
        3. an override, then the join magic number.

        A single-predicate join consults the attached sketch estimator
        first (its estimate, when usable, replaces the resolution chain),
        and the final value passes through the learned join correction.
        """
        cached = self._join_cache.get(variable)
        if cached is not None:
            return cached
        selectivity = self._join_group_selectivity(variable)
        left_table, right_table = variable.tables
        if self._join_estimator is not None and len(variable.predicates) == 1:
            sketched = self._join_estimator.join_selectivity(
                variable.predicates[0].side_for(left_table),
                variable.predicates[0].side_for(right_table),
            )
            if sketched is not None:
                selectivity = sketched
        if self._corrections is not None:
            selectivity = self._corrections.correct_join(
                left_table,
                [p.side_for(left_table).column for p in variable.predicates],
                right_table,
                [p.side_for(right_table).column for p in variable.predicates],
                selectivity,
            )
        self._join_cache[variable] = selectivity
        return selectivity

    def _join_group_selectivity(self, variable: JoinVariable) -> float:
        left_table, right_table = variable.tables
        left_cols = [p.side_for(left_table).column for p in variable.predicates]
        right_cols = [
            p.side_for(right_table).column for p in variable.predicates
        ]
        if (
            len(variable.predicates) == 1
            and self._config.enable_histogram_join_estimation
            and self._use_statistics
        ):
            left_hist = self._db.stats.histogram_for(
                ColumnRef(left_table, left_cols[0])
            )
            right_hist = self._db.stats.histogram_for(
                ColumnRef(right_table, right_cols[0])
            )
            if left_hist is not None and right_hist is not None:
                return left_hist.join_selectivity(right_hist)
        left_ndv = self._side_distinct(left_table, left_cols)
        right_ndv = self._side_distinct(right_table, right_cols)
        known = [n for n in (left_ndv, right_ndv) if n is not None]
        if known:
            return 1.0 / max(known)
        if variable in self._overrides:
            return self._overrides[variable]
        return self._magic.join

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def group_by_fraction(self, variable: GroupByVariable) -> float:
        """Fraction of a table's rows that are distinct in its group columns.

        The Sec 4.1 aggregation extension: "a selectivity variable that
        indicates the fraction of rows in the table with distinct values
        of the column(s) in the clause".
        """
        rows = max(1, self._db.row_count(variable.table))
        distinct = self._side_distinct(variable.table, variable.columns)
        if distinct is not None:
            fraction = min(1.0, distinct / rows)
        elif variable in self._overrides:
            fraction = self._overrides[variable]
        else:
            fraction = self._magic.group_by_fraction
        if self._corrections is not None:
            fraction = self._corrections.correct_group(
                variable.table, variable.columns, fraction
            )
        return fraction

    def group_by_has_statistics(self, variable: GroupByVariable) -> bool:
        return self._side_distinct(variable.table, variable.columns) is not None

    # ------------------------------------------------------------------
    # the MNSA hook: which variables are forced onto magic numbers?
    # ------------------------------------------------------------------

    def missing_variables(self, query) -> List[SelectivityVariable]:
        """Variables of ``query`` that must fall back to magic numbers.

        This is step (a) of the Sec 4.1 test: "identify which selectivity
        variables of Q are forced to use default magic numbers due to lack
        of available statistics in the existing set S".
        """
        missing: List[SelectivityVariable] = []
        covered_by_density = set()
        for table in query.tables:
            equality = [
                p
                for p in query.predicates_of(table)
                if isinstance(p, ComparisonPredicate) and p.op == "="
            ]
            if len(equality) >= 2 and self._use_statistics:
                columns = {p.column.column for p in equality}
                if len(columns) == len(equality):
                    density = self._db.stats.density_for_columns(
                        table, columns
                    )
                    if density is not None:
                        covered_by_density.update(equality)
        for predicate in query.predicates:
            if predicate in covered_by_density:
                continue
            if not self.predicate_has_statistics(predicate):
                missing.append(PredicateVariable(predicate))
        for variable in join_variables_of(query):
            if not self.join_has_statistics(variable):
                missing.append(variable)
        for table in query.tables:
            group_cols = query.group_by_columns_of(table)
            if group_cols:
                variable = GroupByVariable(
                    table, tuple(ref.column for ref in group_cols)
                )
                if not self.group_by_has_statistics(variable):
                    missing.append(variable)
        return missing
