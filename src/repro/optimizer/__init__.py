"""Cost-based query optimizer.

A System-R-style optimizer over the SPJ + aggregation subset:

* access-path selection (full scan vs. index seek),
* left-deep dynamic-programming join enumeration with nested-loop, hash,
  and sort-merge joins,
* hash aggregation and top-level sorts,
* selectivity estimation from statistics with **magic-number** fallbacks,
* the two server extensions the paper required of SQL Server (Sec 7.2):
  per-variable selectivity injection (``selectivity_overrides``) and
  ``Ignore_Statistics_Subset`` (via the statistics manager).

Public API::

    from repro.optimizer import Optimizer, OptimizationRequest, PlanCache
"""

from repro.optimizer.cache import (
    OptimizationRequest,
    PlanCache,
    statistics_fingerprint,
)
from repro.optimizer.variables import (
    GroupByVariable,
    JoinVariable,
    PredicateVariable,
    SelectivityVariable,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.optimizer.cost_model import CostModel
from repro.optimizer.plans import (
    AggregateNode,
    IndexSeekNode,
    JoinAlgorithm,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
    plan_signature,
)
from repro.optimizer.optimizer import OptimizationResult, Optimizer

__all__ = [
    "SelectivityVariable",
    "PredicateVariable",
    "JoinVariable",
    "GroupByVariable",
    "SelectivityEstimator",
    "CostModel",
    "PlanNode",
    "ScanNode",
    "IndexSeekNode",
    "JoinNode",
    "JoinAlgorithm",
    "AggregateNode",
    "SortNode",
    "plan_signature",
    "Optimizer",
    "OptimizationResult",
    "OptimizationRequest",
    "PlanCache",
    "statistics_fingerprint",
]
