"""Selectivity variables (paper Sec 4.1).

"The dependence of the optimizer on statistics can be conceptually
characterized by a set of selectivity variables, with one selectivity
variable corresponding to each predicate in Q."

Three variable kinds exist, one per way the optimizer consumes statistics:

* :class:`PredicateVariable` — a single-table selection predicate;
* :class:`JoinVariable` — a group of equijoin predicates between one pair
  of tables (composite joins form one variable, since their statistics
  must be created as a pair — Sec 4.2 "dependency among statistics");
* :class:`GroupByVariable` — the fraction of rows that are distinct in
  one table's GROUP BY columns (Sec 4.1's aggregation extension).

MNSA pins variables that *lack statistics* to ε or 1-ε via the optimizer's
``selectivity_overrides`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sql.predicates import JoinPredicate, Predicate

#: The canonical ε pinning value (paper Sec 4.1): variables lacking
#: statistics are pinned to ε and 1−ε around their magic-number default.
#: This is the single source of truth — lint rule R005 flags any other
#: float literal equal to ε or 1−ε so pinning can never silently diverge.
EPSILON = 0.0005


class SelectivityVariable:
    """Marker base class; instances are hashable dict keys."""


@dataclass(frozen=True)
class PredicateVariable(SelectivityVariable):
    """Variable for one single-table selection predicate."""

    predicate: Predicate

    def __str__(self) -> str:
        return f"sel[{self.predicate}]"


@dataclass(frozen=True)
class JoinVariable(SelectivityVariable):
    """Variable for the join predicates between one pair of tables."""

    predicates: Tuple[JoinPredicate, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.predicates, key=str))
        object.__setattr__(self, "predicates", ordered)

    @property
    def tables(self) -> Tuple[str, ...]:
        return self.predicates[0].tables()

    def __str__(self) -> str:
        inner = " AND ".join(str(p) for p in self.predicates)
        return f"sel[{inner}]"


@dataclass(frozen=True)
class GroupByVariable(SelectivityVariable):
    """Variable for the distinct-fraction of one table's grouping columns."""

    table: str
    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(sorted(self.columns)))

    def __str__(self) -> str:
        return f"ndv[{self.table}.({', '.join(self.columns)})]"


def join_variables_of(query) -> list:
    """Group a query's join predicates into per-table-pair variables."""
    groups = {}
    for join in query.joins:
        pair = tuple(sorted(join.tables()))
        groups.setdefault(pair, []).append(join)
    return [
        JoinVariable(tuple(preds)) for _, preds in sorted(groups.items())
    ]
