"""Physical plan trees.

Every node carries its estimated output ``rows`` and cumulative estimated
``cost``, plus enough logical information for three consumers:

* the **executor**, which interprets the tree over stored data;
* **FindNextStatToBuild** (paper Sec 4.2), which needs each node's *local*
  cost (``cost - Σ cost(children)``) and the predicates/columns the node
  touches, to propose statistics for the most expensive operator;
* **plan_signature**, the basis of Execution-Tree equivalence (Sec 3.2):
  two plans are the same execution tree iff their signatures are equal.
  Signatures deliberately exclude estimated rows and costs.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.catalog import ColumnRef
from repro.sql.predicates import JoinPredicate, Predicate


class JoinAlgorithm(enum.Enum):
    NESTED_LOOP_INDEX = "nl_index"
    NESTED_LOOP_SCAN = "nl_scan"
    HASH = "hash"
    MERGE = "merge"


class PlanNode:
    """Base physical operator."""

    def __init__(self, children: Tuple["PlanNode", ...], rows: float, cost: float):
        self.children = children
        self.rows = float(rows)
        self.cost = float(cost)

    @property
    def local_cost(self) -> float:
        """Sec 4.2's node weight: cost(subtree) - Σ cost(children)."""
        return self.cost - sum(child.cost for child in self.children)

    def tables(self) -> Tuple[str, ...]:
        """Base tables covered by this subtree (left-to-right order)."""
        seen: List[str] = []
        for child in self.children:
            for name in child.tables():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def signature(self) -> tuple:
        raise NotImplementedError

    def walk(self):
        """Yield every node of the subtree, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ------------------------------------------------------------------

    def _label(self) -> str:
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        """Readable multi-line rendering of the plan."""
        lines = [
            "  " * indent
            + f"{self._label()}  [rows={self.rows:.0f} cost={self.cost:.1f}]"
        ]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self._label()} rows={self.rows:.0f} cost={self.cost:.1f}>"


class ScanNode(PlanNode):
    """Full table scan with all the table's selection predicates applied."""

    def __init__(
        self,
        table: str,
        predicates: Tuple[Predicate, ...],
        rows: float,
        cost: float,
    ) -> None:
        super().__init__((), rows, cost)
        self.table = table
        self.predicates = tuple(predicates)

    def tables(self) -> Tuple[str, ...]:
        return (self.table,)

    def signature(self) -> tuple:
        return (
            "scan",
            self.table,
            tuple(sorted(str(p) for p in self.predicates)),
        )

    def _label(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates)
        suffix = f" WHERE {preds}" if preds else ""
        return f"Scan({self.table}){suffix}"


class IndexSeekNode(PlanNode):
    """Index seek on one predicate; remaining predicates applied residually."""

    def __init__(
        self,
        table: str,
        index_name: str,
        seek_predicate: Predicate,
        residual_predicates: Tuple[Predicate, ...],
        rows: float,
        cost: float,
    ) -> None:
        super().__init__((), rows, cost)
        self.table = table
        self.index_name = index_name
        self.seek_predicate = seek_predicate
        self.residual_predicates = tuple(residual_predicates)

    @property
    def predicates(self) -> Tuple[Predicate, ...]:
        """All predicates applied at this node (seek + residual)."""
        return (self.seek_predicate,) + self.residual_predicates

    def tables(self) -> Tuple[str, ...]:
        return (self.table,)

    def signature(self) -> tuple:
        return (
            "seek",
            self.table,
            self.index_name,
            str(self.seek_predicate),
            tuple(sorted(str(p) for p in self.residual_predicates)),
        )

    def _label(self) -> str:
        return (
            f"IndexSeek({self.table}.{self.index_name} "
            f"ON {self.seek_predicate})"
        )


class JoinNode(PlanNode):
    """Binary join; ``right`` is the inner side for nested-loop variants."""

    def __init__(
        self,
        algorithm: JoinAlgorithm,
        left: PlanNode,
        right: PlanNode,
        join_predicates: Tuple[JoinPredicate, ...],
        rows: float,
        cost: float,
        inner_index: Optional[str] = None,
        build_side: str = "right",
    ) -> None:
        super().__init__((left, right), rows, cost)
        self.algorithm = algorithm
        self.join_predicates = tuple(join_predicates)
        self.inner_index = inner_index
        self.build_side = build_side

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def signature(self) -> tuple:
        return (
            "join",
            self.algorithm.value,
            self.inner_index,
            self.build_side if self.algorithm == JoinAlgorithm.HASH else None,
            tuple(sorted(str(p) for p in self.join_predicates)),
            self.left.signature(),
            self.right.signature(),
        )

    def _label(self) -> str:
        preds = " AND ".join(str(p) for p in self.join_predicates)
        extra = f" via {self.inner_index}" if self.inner_index else ""
        return f"{self.algorithm.value.upper()}Join({preds}){extra}"


class AggregateNode(PlanNode):
    """Aggregation over optional grouping columns.

    ``method`` is ``"hash"`` (build a hash table of groups) or
    ``"stream"`` (sort the input, aggregate in one pass; output arrives
    sorted on the grouping columns).
    """

    def __init__(
        self,
        child: PlanNode,
        group_by: Tuple[ColumnRef, ...],
        aggregates: tuple,
        rows: float,
        cost: float,
        method: str = "hash",
    ) -> None:
        super().__init__((child,), rows, cost)
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        if method not in ("hash", "stream"):
            raise ValueError(f"unknown aggregate method {method!r}")
        self.method = method

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def signature(self) -> tuple:
        return (
            "aggregate",
            self.method,
            tuple(str(c) for c in self.group_by),
            tuple(str(a) for a in self.aggregates),
            self.child.signature(),
        )

    def _label(self) -> str:
        keys = ", ".join(str(c) for c in self.group_by) or "<all>"
        kind = "Hash" if self.method == "hash" else "Stream"
        return f"{kind}Aggregate(by {keys})"


class HavingNode(PlanNode):
    """Post-aggregation group filter (HAVING clause)."""

    def __init__(
        self, child: PlanNode, predicates: tuple, rows: float, cost: float
    ) -> None:
        super().__init__((child,), rows, cost)
        self.predicates = tuple(predicates)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def signature(self) -> tuple:
        return (
            "having",
            tuple(sorted(str(p) for p in self.predicates)),
            self.child.signature(),
        )

    def _label(self) -> str:
        conds = " AND ".join(str(p) for p in self.predicates)
        return f"Having({conds})"


class SortNode(PlanNode):
    """Top-level ORDER BY sort."""

    def __init__(
        self, child: PlanNode, keys: Tuple[ColumnRef, ...], cost: float
    ) -> None:
        super().__init__((child,), child.rows, cost)
        self.keys = tuple(keys)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def signature(self) -> tuple:
        return (
            "sort",
            tuple(str(k) for k in self.keys),
            self.child.signature(),
        )

    def _label(self) -> str:
        return f"Sort(by {', '.join(str(k) for k in self.keys)})"


def plan_signature(plan: PlanNode) -> tuple:
    """Execution-tree identity of a plan (Sec 3.2).

    Two sets of statistics are Execution-Tree equivalent for Q iff the
    optimizer produces plans with equal signatures under both.
    """
    return plan.signature()
