"""The optimizer facade: access paths, join enumeration, aggregation.

``Optimizer.optimize_request(OptimizationRequest(query, ...))`` is the
canonical entry point; the request object carries everything the paper's
algorithms need:

* ``overrides`` — the Sec 7.2 extension that feeds MNSA's ε / 1-ε
  pinning of statistics-less selectivity variables;
* ``ignore`` — the ``Ignore_Statistics_Subset`` extension the Shrinking
  Set algorithm uses to obtain ``Plan(Q, S')`` for S' ⊂ S.

``magic_variables(query)`` reports which selectivity variables currently
fall back to magic numbers (step (a) of the Sec 4.1 test).  The legacy
``optimize(query, selectivity_overrides=..., ignore_statistics=...)``
kwargs survive as a deprecated shim over ``optimize_request``.

An optional :class:`~repro.optimizer.cache.PlanCache` memoizes results
per request; see that module for the epoch / fingerprint invalidation
contract.

Join enumeration is left-deep dynamic programming (System R): states are
table subsets; each extension joins one more base-table access path using
the cheapest of index nested loops, naive nested loops, hash, and
sort-merge.  Ties break on the plan signature so optimization is fully
deterministic — essential for Execution-Tree equivalence experiments.
"""

from __future__ import annotations

import itertools
import threading
import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.concurrency import guarded_by, plan_source
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.errors import OptimizerError, ReproDeprecationWarning
from repro.optimizer.cache import (
    OptimizationRequest,
    PlanCache,
    statistics_fingerprint,
)
from repro.optimizer.cost_model import CostModel
from repro.optimizer.plans import (
    AggregateNode,
    HavingNode,
    IndexSeekNode,
    JoinAlgorithm,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.optimizer.variables import (
    GroupByVariable,
    JoinVariable,
    SelectivityVariable,
)
from repro.sql.expressions import Aggregate
from repro.sql.predicates import ComparisonPredicate, Predicate
from repro.sql.query import Query


@dataclass
class OptimizationResult:
    """Outcome of one optimizer call.

    Attributes:
        plan: the chosen physical plan.
        cost: the plan's optimizer-estimated cost — the paper's
            ``Estimated-Cost(Q, S)``.
        rows: estimated output rows.
    """

    plan: PlanNode
    cost: float
    rows: float

    @property
    def signature(self) -> tuple:
        return self.plan.signature()


class Optimizer:
    """Cost-based optimizer over one database.

    Args:
        database: the :class:`~repro.storage.Database` to plan against.
        config: knobs for the cost model and enumeration space.
        cache: optional shared :class:`~repro.optimizer.cache.PlanCache`.
            When present, :meth:`optimize_request` consults it before
            planning; :attr:`call_count` still counts every request (the
            paper's metric is optimizer *invocations*, cached or not) while
            :attr:`cold_optimize_count` counts only actual plan searches.
        corrections: optional :class:`~repro.learned.CorrectionStore`
            applied inside selectivity estimation.  Its monotone version
            is folded into the plan-cache key (see
            :meth:`OptimizationRequest.with_learned_version`) so corrected
            and uncorrected plans never alias in a shared cache.
        join_estimator: optional
            :class:`~repro.learned.SketchJoinEstimator`, the sketch-based
            A/B alternative; versioned into the cache key the same way.
    """

    # repro-lint: optimize-path
    # repro-lint: plan-state-exempt=_cache: attach-once wiring; attach_cache refuses to swap an existing cache, so entries never migrate between caches

    _call_count = guarded_by("_count_lock")
    _cold_count = guarded_by("_count_lock")
    _corrections = plan_source("version")
    _join_estimator = plan_source("version")

    def __init__(
        self,
        database,
        config: OptimizerConfig = DEFAULT_CONFIG,
        cache: Optional[PlanCache] = None,
        corrections=None,
        join_estimator=None,
    ) -> None:
        self._db = database
        self._config = config
        self._cost = CostModel(config)
        self._cache = cache
        self._corrections = corrections
        self._join_estimator = join_estimator
        self._count_lock = threading.Lock()
        self._call_count = 0
        self._cold_count = 0

    @property
    def config(self) -> OptimizerConfig:
        return self._config

    @property
    def cache(self) -> Optional[PlanCache]:
        return self._cache

    @property
    def corrections(self):
        """The attached :class:`~repro.learned.CorrectionStore`, if any."""
        return self._corrections

    @property
    def join_estimator(self):
        """The attached sketch join estimator, if any."""
        return self._join_estimator

    def attach_cache(self, cache: PlanCache) -> None:
        """Attach a plan cache after construction.

        Raises:
            OptimizerError: if a *different* cache is already attached
                (silently swapping caches would corrupt hit accounting).
        """
        if self._cache is not None and self._cache is not cache:
            raise OptimizerError(
                "optimizer already has a different PlanCache attached"
            )
        self._cache = cache

    @property
    def call_count(self) -> int:
        """Optimizer invocations, cached or not (MNSA charges 3 per
        statistic); incremented atomically so parallel drivers and
        service workers can share one optimizer."""
        with self._count_lock:
            return self._call_count

    @property
    def cold_optimize_count(self) -> int:
        """Requests that missed the cache and ran a full plan search."""
        with self._count_lock:
            return self._cold_count

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def optimize_request(
        self, request: OptimizationRequest
    ) -> OptimizationResult:
        """Choose the cheapest plan for a canonical request.

        With a cache attached, the lookup runs in two tiers: a stats-epoch
        equality fast path, then fingerprint revalidation (see
        :mod:`repro.optimizer.cache`).  The epoch is scoped to the shards
        owning the query's tables
        (:meth:`~repro.stats.manager.StatisticsManager.epoch_for_tables`),
        so statistics churn elsewhere never evicts this entry.  Both the
        epoch and the fingerprint are read *before* planning, so a
        concurrent statistics mutation mid-flight leaves at worst a stale
        entry that fails revalidation — never a wrong plan.

        Degraded requests are statistics-independent by construction, so
        they key under epoch 0 with an empty fingerprint: after the first
        planning they are permanent cache hits that touch no statistics
        lock at all.
        """
        with self._count_lock:
            self._call_count += 1
        if self._cache is None:
            return self._execute_request(request)
        request = self._keyed_request(request)
        if request.degraded:
            epoch = 0
        else:
            epoch = self._db.stats.epoch_for_tables(request.query.tables)
        result = self._cache.get_fresh(request, epoch)
        if result is not None:
            return result
        if request.degraded:
            fingerprint: tuple = ()
        else:
            fingerprint = statistics_fingerprint(
                self._db, request.query, request.ignore
            )
        result = self._cache.get_validated(request, epoch, fingerprint)
        if result is not None:
            return result
        result = self._execute_request(request)
        self._cache.store(request, epoch, fingerprint, result)
        return result

    def optimize(
        self,
        query: Query,
        selectivity_overrides: Optional[Dict[SelectivityVariable, float]] = None,
        ignore_statistics: Optional[Iterable] = None,
    ) -> OptimizationResult:
        """Choose the cheapest plan for ``query``.

        .. deprecated::
            The ``selectivity_overrides`` / ``ignore_statistics`` kwargs
            are a shim over :meth:`optimize_request`; build an
            :class:`~repro.optimizer.cache.OptimizationRequest` instead.
            Calling with just a query stays supported.
        """
        if selectivity_overrides is not None or ignore_statistics is not None:
            warnings.warn(
                "optimize(query, selectivity_overrides=..., "
                "ignore_statistics=...) is deprecated; pass an "
                "OptimizationRequest to Optimizer.optimize_request()",
                ReproDeprecationWarning,
                stacklevel=2,
            )
        return self.optimize_request(
            OptimizationRequest.of(
                query, selectivity_overrides, ignore_statistics
            )
        )

    def magic_variables(self, query: Query) -> List[SelectivityVariable]:
        """Selectivity variables of ``query`` forced onto magic numbers.

        Deliberately uncorrected: a learned correction does not make a
        statistic exist, and the advisor must keep seeing the same
        missing-variable set either way.
        """
        estimator = SelectivityEstimator(self._db, self._config)
        return estimator.missing_variables(query)

    def _learned_version(self) -> Optional[Tuple[int, int]]:
        """The combined learned-component version for cache keying, or
        ``None`` when no learned component is attached."""
        if self._corrections is None and self._join_estimator is None:
            return None
        return (
            self._corrections.version if self._corrections is not None else -1,
            (
                self._join_estimator.version
                if self._join_estimator is not None
                else -1
            ),
        )

    def _keyed_request(
        self, request: OptimizationRequest
    ) -> OptimizationRequest:
        """Fold the learned-component version into the cache key.

        The version is read *before* planning, like the stats epoch: a
        concurrent correction update mid-flight leaves at worst an entry
        keyed under the old version, which the next lookup skips.
        Requests that already carry an explicit ``learned`` component are
        passed through untouched.
        """
        if request.learned is not None:
            return request
        learned = self._learned_version()
        if learned is None:
            return request
        return request.with_learned_version(learned)

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------

    def _execute_request(
        self, request: OptimizationRequest
    ) -> OptimizationResult:
        """Run the actual plan search for a request (cache miss path)."""
        with self._count_lock:
            self._cold_count += 1
        overrides = request.overrides_dict() if request.overrides else None
        use_statistics = not request.degraded
        if request.ignore and use_statistics:
            with self._db.stats.ignore_subset(request.ignore):
                return self._optimize(request.query, overrides)
        return self._optimize(
            request.query, overrides, use_statistics=use_statistics
        )

    def _optimize(
        self, query, overrides, use_statistics: bool = True
    ) -> OptimizationResult:
        estimator = SelectivityEstimator(
            self._db,
            self._config,
            overrides,
            corrections=self._corrections,
            join_estimator=self._join_estimator,
            use_statistics=use_statistics,
        )
        best = self._enumerate_joins(query, estimator)
        plan = self._add_aggregation(query, estimator, best)
        plan = self._add_order_by(query, plan)
        return OptimizationResult(plan=plan, cost=plan.cost, rows=plan.rows)

    # ----- base table access paths ------------------------------------

    def _access_paths(
        self, table: str, query: Query, estimator: SelectivityEstimator
    ) -> List[PlanNode]:
        """All candidate access paths for one base table."""
        data = self._db.table(table)
        schema = data.schema
        predicates = query.predicates_of(table)
        filter_sel = estimator.table_filter_selectivity(table, predicates)
        out_rows = data.row_count * filter_sel

        paths: List[PlanNode] = []
        scan_cost = self._cost.table_scan(
            data.row_count, schema.row_width_bytes, len(predicates)
        )
        paths.append(ScanNode(table, predicates, out_rows, scan_cost))

        if self._config.enable_index_paths:
            for seek_pred in predicates:
                if not self._seekable(seek_pred):
                    continue
                index = self._db.indexes.index_on(seek_pred.columns()[0])
                if index is None:
                    continue
                seek_sel = estimator.predicate_selectivity(seek_pred)
                matching = data.row_count * seek_sel
                residual = tuple(
                    p for p in predicates if p is not seek_pred
                )
                cost = self._cost.index_seek(matching, len(residual))
                paths.append(
                    IndexSeekNode(
                        table, index.name, seek_pred, residual, out_rows, cost
                    )
                )
        return paths

    @staticmethod
    def _seekable(predicate: Predicate) -> bool:
        """Predicates our sorted indexes can seek on."""
        from repro.sql.predicates import BetweenPredicate, InPredicate

        if isinstance(predicate, ComparisonPredicate):
            return predicate.op in ("=", "<", "<=", ">", ">=")
        return isinstance(predicate, (BetweenPredicate, InPredicate))

    def _best_access_path(self, table, query, estimator) -> PlanNode:
        paths = self._access_paths(table, query, estimator)
        return min(paths, key=lambda p: (p.cost, str(p.signature())))

    # ----- join enumeration -------------------------------------------

    def _enumerate_joins(
        self, query: Query, estimator: SelectivityEstimator
    ) -> PlanNode:
        tables = list(query.tables)
        access: Dict[str, PlanNode] = {
            t: self._best_access_path(t, query, estimator) for t in tables
        }
        if len(tables) == 1:
            return access[tables[0]]

        # dp over table subsets; left-deep extensions only
        dp: Dict[FrozenSet[str], PlanNode] = {
            frozenset((t,)): access[t] for t in tables
        }
        for size in range(2, len(tables) + 1):
            for combo in itertools.combinations(tables, size):
                subset = frozenset(combo)
                best = self._best_extension(
                    subset, dp, access, query, estimator, allow_cartesian=False
                )
                if self._config.enable_bushy_joins:
                    bushy = self._best_bushy(
                        subset, dp, query, estimator
                    )
                    if bushy is not None and (
                        best is None or self._better(bushy, best)
                    ):
                        best = bushy
                if best is None:
                    # disconnected join graph: fall back to a cross product
                    best = self._best_extension(
                        subset,
                        dp,
                        access,
                        query,
                        estimator,
                        allow_cartesian=True,
                    )
                if best is not None:
                    dp[subset] = best
        final = dp.get(frozenset(tables))
        if final is None:
            raise OptimizerError(f"no join order found for tables {tables}")
        return final

    def _best_extension(
        self,
        subset: FrozenSet[str],
        dp,
        access,
        query: Query,
        estimator: SelectivityEstimator,
        allow_cartesian: bool,
    ) -> Optional[PlanNode]:
        """Cheapest left-deep plan for ``subset`` (one extension step)."""
        best: Optional[PlanNode] = None
        for inner in sorted(subset):
            rest = subset - {inner}
            left = dp.get(rest)
            if left is None:
                continue
            joins = query.joins_between(rest, (inner,))
            if not joins and not allow_cartesian:
                continue
            candidate = self._best_join(left, access[inner], joins, estimator)
            if best is None or self._better(candidate, best):
                best = candidate
        return best

    @staticmethod
    def _better(a: PlanNode, b: PlanNode) -> bool:
        """Deterministic plan comparison: cost, then signature."""
        if a.cost != b.cost:
            return a.cost < b.cost
        return str(a.signature()) < str(b.signature())

    def _best_bushy(
        self,
        subset: FrozenSet[str],
        dp,
        query: Query,
        estimator: SelectivityEstimator,
    ) -> Optional[PlanNode]:
        """Cheapest bushy decomposition of ``subset`` into two joined
        sub-plans of size >= 2 each (left-deep shapes are handled by
        ``_best_extension``; considering both here would double work)."""
        if len(subset) < 4:
            return None
        members = sorted(subset)
        best: Optional[PlanNode] = None
        # enumerate one side; fix members[0] on the left to halve the work
        others = members[1:]
        for size in range(1, len(others)):
            for combo in itertools.combinations(others, size):
                left_set = frozenset((members[0],) + combo)
                right_set = subset - left_set
                if len(left_set) < 2 or len(right_set) < 2:
                    continue
                left = dp.get(left_set)
                right = dp.get(right_set)
                if left is None or right is None:
                    continue
                joins = query.joins_between(left_set, right_set)
                if not joins:
                    continue
                candidate = self._best_join(left, right, joins, estimator)
                if best is None or self._better(candidate, best):
                    best = candidate
        return best

    def _join_selectivity(
        self, joins, estimator: SelectivityEstimator
    ) -> float:
        """Combined selectivity of join predicates (grouped per pair)."""
        if not joins:
            return 1.0
        groups: Dict[tuple, list] = {}
        for join in joins:
            pair = tuple(sorted(join.tables()))
            groups.setdefault(pair, []).append(join)
        selectivity = 1.0
        for _, preds in sorted(groups.items()):
            variable = JoinVariable(tuple(preds))
            selectivity *= estimator.join_group_selectivity(variable)
        return selectivity

    def _best_join(
        self,
        left: PlanNode,
        right: PlanNode,
        joins,
        estimator: SelectivityEstimator,
    ) -> PlanNode:
        """Cheapest algorithm for joining ``left`` with base-path ``right``."""
        selectivity = self._join_selectivity(joins, estimator)
        out_rows = max(0.0, left.rows * right.rows * selectivity)
        children_cost = left.cost + right.cost
        candidates: List[PlanNode] = []

        if self._config.enable_hash_join and joins:
            build_rows = min(left.rows, right.rows)
            probe_rows = max(left.rows, right.rows)
            build_side = "right" if right.rows <= left.rows else "left"
            cost = children_cost + self._cost.hash_join(
                build_rows, probe_rows, out_rows
            )
            candidates.append(
                JoinNode(
                    JoinAlgorithm.HASH,
                    left,
                    right,
                    joins,
                    out_rows,
                    cost,
                    build_side=build_side,
                )
            )

        if self._config.enable_merge_join and joins:
            cost = children_cost + self._cost.merge_join(
                left.rows, right.rows, out_rows
            )
            candidates.append(
                JoinNode(
                    JoinAlgorithm.MERGE, left, right, joins, out_rows, cost
                )
            )

        # index nested loops: seek the inner table's join column per outer row
        inner_index = self._usable_inner_index(right, joins)
        if inner_index is not None:
            matches_per_outer = (
                right.rows * selectivity if left.rows > 0 else 0.0
            )
            cost = left.cost + self._cost.nested_loop_index(
                left.rows, matches_per_outer
            )
            candidates.append(
                JoinNode(
                    JoinAlgorithm.NESTED_LOOP_INDEX,
                    left,
                    right,
                    joins,
                    out_rows,
                    cost,
                    inner_index=inner_index,
                )
            )

        # naive nested loops (also the only option for cartesian products)
        rescan_cost = right.cost  # re-derive the inner side per outer row
        cost = left.cost + self._cost.nested_loop_scan(
            max(1.0, left.rows), rescan_cost
        )
        candidates.append(
            JoinNode(
                JoinAlgorithm.NESTED_LOOP_SCAN,
                left,
                right,
                joins,
                out_rows,
                cost,
            )
        )

        best = candidates[0]
        for candidate in candidates[1:]:
            if self._better(candidate, best):
                best = candidate
        return best

    def _usable_inner_index(self, right: PlanNode, joins) -> Optional[str]:
        """Name of an index on the inner side's join column, if usable.

        Index nested loops requires the inner side to be a bare base table
        (we seek instead of using its access path) with an index on one of
        the join columns.
        """
        if not joins:
            return None
        if not isinstance(right, (ScanNode, IndexSeekNode)):
            return None
        table = right.tables()[0]
        if not self._config.enable_index_paths:
            return None
        for join in joins:
            try:
                inner_col = join.side_for(table)
            except ValueError:
                continue
            index = self._db.indexes.index_on(inner_col)
            if index is not None:
                return index.name
        return None

    # ----- aggregation and ordering -----------------------------------

    def _add_aggregation(
        self, query: Query, estimator: SelectivityEstimator, plan: PlanNode
    ) -> PlanNode:
        if not query.has_aggregation:
            return plan
        aggregates = query.all_aggregates()
        if not query.group_by:
            groups = 1.0
            cost = plan.cost + self._cost.hash_aggregate(plan.rows, groups)
            return AggregateNode(plan, (), aggregates, groups, cost)

        groups = 1.0
        for table in query.tables:
            cols = query.group_by_columns_of(table)
            if not cols:
                continue
            variable = GroupByVariable(
                table, tuple(ref.column for ref in cols)
            )
            fraction = estimator.group_by_fraction(variable)
            groups *= max(1.0, fraction * self._db.row_count(table))
        groups = min(groups, max(1.0, plan.rows))

        # hash aggregation pays a downstream sort for ORDER BY; stream
        # aggregation pays an upstream sort but delivers grouped order.
        # The choice hinges on the *estimated* group count, making it
        # statistics-sensitive.
        hash_plan = AggregateNode(
            plan,
            query.group_by,
            aggregates,
            groups,
            plan.cost + self._cost.hash_aggregate(plan.rows, groups),
            method="hash",
        )
        hash_full = self._add_order_by(
            query, self._add_having(query, hash_plan)
        )
        stream_plan = AggregateNode(
            plan,
            query.group_by,
            aggregates,
            groups,
            plan.cost + self._cost.stream_aggregate(plan.rows, groups),
            method="stream",
        )
        stream_full = self._add_order_by(
            query, self._add_having(query, stream_plan)
        )
        best = (
            stream_full
            if self._better(stream_full, hash_full)
            else hash_full
        )
        # mark so the caller does not add ORDER BY twice
        best._order_by_applied = True
        return best

    def _add_having(self, query: Query, plan: PlanNode) -> PlanNode:
        """Group filter after aggregation.

        HAVING selectivity cannot come from base-table statistics, so it
        is costed with the corresponding magic numbers and introduces no
        selectivity variable.
        """
        if not query.having:
            return plan
        magic = self._config.magic
        selectivity = 1.0
        for condition in query.having:
            if condition.op == "=":
                selectivity *= magic.equality
            elif condition.op == "<>":
                selectivity *= magic.inequality
            else:
                selectivity *= magic.range_
        rows = plan.rows * selectivity
        cost = plan.cost + plan.rows * (
            len(query.having) * self._config.cost.cpu_compare_cost
        )
        return HavingNode(plan, query.having, rows, cost)

    def _order_by_satisfied(self, query: Query, plan: PlanNode) -> bool:
        """True if ``plan`` already delivers the requested order."""
        if isinstance(plan, HavingNode):
            return self._order_by_satisfied(query, plan.child)
        if isinstance(plan, AggregateNode) and plan.method == "stream":
            prefix = plan.group_by[: len(query.order_by)]
            return tuple(query.order_by) == prefix
        return False

    def _add_order_by(self, query: Query, plan: PlanNode) -> PlanNode:
        if getattr(plan, "_order_by_applied", False):
            return plan
        if not query.order_by or plan.rows <= 1.0:
            return plan
        if self._order_by_satisfied(query, plan):
            return plan
        cost = plan.cost + self._cost.sort(plan.rows)
        return SortNode(plan, query.order_by, cost)
