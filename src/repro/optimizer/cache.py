"""Statistics-aware plan caching behind a canonical request identity.

Every advisor loop in this reproduction — MNSA's ε / 1−ε pinning (Sec 4),
MNSA/D's drop-detection re-optimizations (Sec 5.1), the Shrinking Set's
ignore-subset probes (Sec 5.2), and the essential-set search (Sec 3.3) —
re-invokes the optimizer on the same ``(query, overrides, ignore-set)``
combination over and over.  The blocker to memoizing those calls was
API-shaped: ``optimize(query, selectivity_overrides=…,
ignore_statistics=…)`` takes loose kwargs with no canonical identity.

:class:`OptimizationRequest` fixes the API: a frozen, hashable value
object carrying the query, the override pins sorted by variable, and the
ignore-set sorted by :class:`~repro.stats.statistic.StatKey`.  Two
requests that mean the same optimization compare and hash equal no
matter how the caller spelled them.

:class:`PlanCache` memoizes ``request -> OptimizationResult`` with two
invalidation layers:

* **epoch fast path** — the statistics manager's monotonically
  increasing epoch is bumped by every statistics mutation (create /
  drop / drop-list / refresh / incremental insert / ignore-buffer
  change) and by DML.  An entry stored at the current epoch is returned
  without further checks.  With a sharded manager the optimizer keys
  entries by
  :meth:`~repro.stats.manager.StatisticsManager.epoch_for_tables` —
  the epoch sum of only the shards the query touches — so churn in
  other shards leaves the fast path intact (every component is monotone
  non-decreasing, so sum equality implies component equality).
* **fingerprint revalidation** — on an epoch mismatch the entry is only
  reused if its :func:`statistics_fingerprint` still matches: per-table
  ``(row_count, rows_modified_since_stats)`` plus
  ``(update_count, row_count)`` of every *visible statistic relevant to
  the query* outside the request's ignore-set.  A mutation elsewhere in
  the database therefore costs one cheap fingerprint comparison, not a
  re-optimization; the matching entry is promoted to the current epoch.

Sharing contract: a cache must only ever be shared between optimizers
with the same database *and* the same :class:`~repro.config.OptimizerConfig`,
and the physical index design must not change while the cache is
attached (the fingerprint covers statistics and data, not indexes).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.concurrency import guarded_by
from repro.errors import OptimizerError, StatisticsError
from repro.optimizer.variables import SelectivityVariable
from repro.sql.query import Query
from repro.stats.statistic import StatKey, as_stat_key


def _canonical_overrides(
    overrides,
) -> Tuple[Tuple[SelectivityVariable, float], ...]:
    """Sort override pins by variable so identity ignores spelling order."""
    if not overrides:
        return ()
    if isinstance(overrides, Mapping):
        items = overrides.items()
    else:
        items = tuple(overrides)
    return tuple(
        sorted(
            ((variable, float(value)) for variable, value in items),
            key=lambda pair: str(pair[0]),
        )
    )


def _canonical_ignore(ignore) -> Tuple[StatKey, ...]:
    """Dedupe and sort the ignore-set (StatKey is totally ordered)."""
    if not ignore:
        return ()
    return tuple(sorted({as_stat_key(key) for key in ignore}))


class OptimizationRequest:
    """The canonical, hashable argument of one optimizer invocation.

    Attributes:
        query: the bound :class:`~repro.sql.query.Query`.
        overrides: selectivity pins as ``(variable, value)`` pairs,
            sorted by variable — MNSA's ε / 1−ε mechanism (Sec 7.2).
            Accepts a dict or any iterable of pairs at construction.
        ignore: statistics hidden for this call, sorted — the
            ``Ignore_Statistics_Subset`` extension.  Accepts keys,
            column refs, or ref iterables at construction.
        learned: opaque correction-model version component (any hashable,
            normally set via :meth:`with_learned_version` by an optimizer
            carrying learned corrections).  ``None`` means "planned
            without corrections"; a versioned request never compares
            equal to an unversioned one, so corrected and uncorrected
            plans can share a :class:`PlanCache` without aliasing.
        degraded: plan with magic-number selectivities only, consulting
            no statistics at all — the service's graceful-degradation
            mode under advisor backlog (Sec 6's always-on framing).  A
            degraded request is statistics-independent, so the optimizer
            caches it under epoch 0 with an empty fingerprint: degraded
            plans hit the cache forever and never take a statistics
            lock.  Part of the request identity — a degraded plan can
            never alias a full one.
    """

    __slots__ = ("query", "overrides", "ignore", "learned", "degraded", "_hash")

    def __init__(
        self,
        query: Query,
        overrides=None,
        ignore=None,
        *,
        learned=None,
        degraded: bool = False,
    ) -> None:
        if not isinstance(query, Query):
            raise OptimizerError(
                f"OptimizationRequest needs a bound Query, "
                f"got {type(query).__name__}"
            )
        self.query = query
        self.overrides = _canonical_overrides(overrides)
        self.ignore = _canonical_ignore(ignore)
        self.learned = learned
        self.degraded = bool(degraded)
        self._hash = hash(
            (
                self.query,
                self.overrides,
                self.ignore,
                self.learned,
                self.degraded,
            )
        )

    @classmethod
    def of(
        cls,
        query: Query,
        selectivity_overrides=None,
        ignore_statistics=None,
    ) -> "OptimizationRequest":
        """Build a request from the legacy ``optimize()`` kwarg shapes."""
        return cls(query, selectivity_overrides, ignore_statistics)

    def overrides_dict(self) -> Dict[SelectivityVariable, float]:
        return dict(self.overrides)

    def with_learned_version(self, version) -> "OptimizationRequest":
        """This request keyed under correction-model ``version``.

        Used by optimizers carrying learned corrections so cache entries
        are segregated by the (monotone) model version: a version bump
        makes previously cached plans unreachable rather than stale.
        """
        if version == self.learned:
            return self
        return OptimizationRequest(
            self.query,
            self.overrides,
            self.ignore,
            learned=version,
            degraded=self.degraded,
        )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if not isinstance(other, OptimizationRequest):
            return NotImplemented
        return (
            self.query == other.query
            and self.overrides == other.overrides
            and self.ignore == other.ignore
            and self.learned == other.learned
            and self.degraded == other.degraded
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizationRequest(tables={self.query.tables}, "
            f"overrides={len(self.overrides)}, ignore={len(self.ignore)})"
        )


# ----------------------------------------------------------------------
# statistics fingerprint
# ----------------------------------------------------------------------


def _is_relevant(key: StatKey, query: Query) -> bool:
    """Can ``key`` affect ``query``'s plan?  Same filter as Figure 2's
    step 4 (see :mod:`repro.core.shrinking`): a plan depends only on the
    visible statistics over the query's own relevant columns."""
    if key.table not in query.tables:
        return False
    relevant = {
        ref.column
        for ref in query.relevant_columns()
        if ref.table == key.table
    }
    return bool(set(key.columns) & relevant)


def statistics_fingerprint(
    database, query: Query, ignore: Iterable[StatKey] = ()
) -> tuple:
    """Hashable digest of every statistics-dependent input to one
    optimization of ``query``.

    Covers, for each table of the query, ``(row_count,
    rows_modified_since_stats)``; and, for each *visible* statistic
    relevant to the query and outside ``ignore``, ``(key, update_count,
    row_count)``.  Creating, dropping, drop-listing, refreshing, or
    incrementally maintaining a relevant statistic — or running DML
    against a referenced table — all change the digest; mutations
    elsewhere in the database do not.
    """
    stats = database.stats
    hidden = set(ignore)
    tables = tuple(
        (
            name,
            database.table(name).row_count,
            database.table(name).rows_modified_since_stats,
        )
        for name in sorted(query.tables)
    )
    relevant = []
    for key in stats.visible_keys():
        if key in hidden or not _is_relevant(key, query):
            continue
        try:
            stat = stats.get(key)
        except StatisticsError:
            # dropped between visible_keys() and get(); the epoch bump
            # that accompanied the drop keeps the fast path honest
            continue
        relevant.append((key, stat.update_count, stat.row_count))
    relevant.sort()
    return (tables, tuple(relevant))


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------


class _Entry:
    """One cached optimization: the epoch and fingerprint it was
    computed under, plus the result."""

    __slots__ = ("epoch", "fingerprint", "result")

    def __init__(self, epoch: int, fingerprint: tuple, result) -> None:
        self.epoch = epoch
        self.fingerprint = fingerprint
        self.result = result


class PlanCache:
    """LRU-bounded, statistics-aware memo of optimizer results.

    Thread-safe: a single internal lock guards the entry map and the
    counters; the lock is never held across statistics access or metric
    emission, so it nests freely under the service's ``db_lock`` and the
    statistics manager's lock without creating ordering edges.

    Args:
        capacity: maximum retained entries; least-recently-used entries
            beyond it are evicted.
        metrics: optional :class:`~repro.service.metrics.MetricsRegistry`
            mirroring the hit/miss/eviction counters as
            ``plan_cache.*``.
    """

    # repro-lint: optimize-path
    # repro-lint: plan-state-exempt=_entries: entries are keyed by the full request (learned version included) and each carries the epoch+fingerprint it was stored under, so mutation can never redirect an existing key to a different plan

    _entries = guarded_by("_lock")
    _hits = guarded_by("_lock")
    _misses = guarded_by("_lock")
    _evictions = guarded_by("_lock")
    _revalidations = guarded_by("_lock")

    def __init__(self, capacity: int = 256, metrics=None) -> None:
        if capacity < 1:
            raise OptimizerError(
                f"plan-cache capacity must be >= 1, got {capacity} "
                "(omit the cache entirely to disable caching)"
            )
        self.capacity = int(capacity)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[OptimizationRequest, _Entry]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._revalidations = 0

    # ----- lookup ------------------------------------------------------

    def get_fresh(self, request: OptimizationRequest, epoch: int):
        """Epoch fast path: the entry's result iff it was stored (or last
        revalidated) at exactly ``epoch``; ``None`` otherwise.

        A miss here is *not* counted — the caller is expected to follow
        up with :meth:`get_validated`, which settles the hit/miss verdict.
        """
        with self._lock:
            entry = self._entries.get(request)
            if entry is None or entry.epoch != epoch:
                return None
            self._entries.move_to_end(request)
            self._hits += 1
        self._note_counter("plan_cache.hits")
        return entry.result

    def get_validated(
        self, request: OptimizationRequest, epoch: int, fingerprint: tuple
    ):
        """Fingerprint revalidation after an epoch mismatch.

        If the stored entry's fingerprint equals the freshly computed
        one, the statistics the request depends on are unchanged: the
        entry is promoted to ``epoch`` and returned.  Otherwise the
        lookup is a miss and the caller must re-optimize.
        """
        with self._lock:
            entry = self._entries.get(request)
            if entry is not None and entry.fingerprint == fingerprint:
                entry.epoch = epoch
                self._entries.move_to_end(request)
                self._hits += 1
                self._revalidations += 1
                result = entry.result
            else:
                self._misses += 1
                result = None
        if result is not None:
            self._note_counter("plan_cache.hits")
            self._note_counter("plan_cache.revalidations")
        else:
            self._note_counter("plan_cache.misses")
        return result

    def store(
        self,
        request: OptimizationRequest,
        epoch: int,
        fingerprint: tuple,
        result,
    ) -> None:
        """Insert (or replace) an entry, evicting LRU entries over
        capacity.  ``epoch``/``fingerprint`` must be the values read
        *before* the optimization ran: if statistics mutated mid-flight,
        the stale epoch forces revalidation and the stale fingerprint
        fails it, so the entry can never serve a wrong plan."""
        evicted = 0
        with self._lock:
            self._entries[request] = _Entry(epoch, fingerprint, result)
            self._entries.move_to_end(request)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
            size = len(self._entries)
        if evicted:
            self._note_counter("plan_cache.evictions", evicted)
        if self._metrics is not None:
            self._metrics.gauge("plan_cache.size", size)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ----- introspection ----------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_count(self) -> int:
        with self._lock:
            return self._hits

    @property
    def miss_count(self) -> int:
        with self._lock:
            return self._misses

    @property
    def eviction_count(self) -> int:
        with self._lock:
            return self._evictions

    @property
    def revalidation_count(self) -> int:
        """Hits that needed a fingerprint comparison (epoch had moved)."""
        with self._lock:
            return self._revalidations

    def counters(self) -> Dict[str, int]:
        """A consistent snapshot of all counters."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "revalidations": self._revalidations,
                "size": len(self._entries),
            }

    def requests(self) -> List[OptimizationRequest]:
        """Cached requests, least-recently-used first (tests only)."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------

    def _note_counter(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc(name, amount)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.counters()
        return (
            f"PlanCache(size={snap['size']}/{self.capacity}, "
            f"hits={snap['hits']}, misses={snap['misses']})"
        )
