"""Operator cost formulas.

All formulas are monotonically non-decreasing in their input cardinalities,
which (together with cardinalities being products of selectivities) gives
the *cost-monotonicity* property MNSA relies on (paper Sec 4.1): the
optimizer-estimated cost of an SPJ query is monotonic in the values of its
selectivity variables.  ``tests/property/test_cost_monotonicity.py``
asserts this with hypothesis.

The same formulas are applied twice: at optimization time over *estimated*
cardinalities, and by the executor over *actual* cardinalities, which is
how we score the true quality of a chosen plan (DESIGN.md §2).
"""

from __future__ import annotations

import math

from repro.config import CostModelConfig, DEFAULT_CONFIG, OptimizerConfig


class CostModel:
    """Stateless cost formulas parameterized by :class:`CostModelConfig`."""

    def __init__(self, config: OptimizerConfig = DEFAULT_CONFIG) -> None:
        self._c: CostModelConfig = config.cost

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------

    def pages(self, rows: float, row_width_bytes: int) -> float:
        """Pages occupied by ``rows`` rows of the given width."""
        return max(1.0, rows * row_width_bytes / self._c.page_size_bytes)

    def table_scan(
        self, table_rows: float, row_width_bytes: int, predicate_count: int
    ) -> float:
        """Full scan applying ``predicate_count`` predicates to each row."""
        c = self._c
        io = self.pages(table_rows, row_width_bytes) * c.io_page_cost
        cpu = table_rows * (
            c.cpu_tuple_cost + predicate_count * c.cpu_compare_cost
        )
        return io + cpu

    def index_seek(
        self, matching_rows: float, residual_predicate_count: int
    ) -> float:
        """Seek returning ``matching_rows``, one random page per row."""
        c = self._c
        io = c.random_io_factor * c.io_page_cost * (1.0 + matching_rows)
        cpu = matching_rows * (
            c.cpu_tuple_cost + residual_predicate_count * c.cpu_compare_cost
        )
        return io + cpu

    # ------------------------------------------------------------------
    # joins (costs of the join operator itself, children not included)
    # ------------------------------------------------------------------

    def nested_loop_index(
        self, outer_rows: float, matches_per_outer: float
    ) -> float:
        """Index nested loops: one seek into the inner side per outer row."""
        c = self._c
        per_outer = c.random_io_factor * c.io_page_cost + (
            matches_per_outer * c.cpu_tuple_cost
        )
        return outer_rows * per_outer

    def nested_loop_scan(
        self, outer_rows: float, inner_scan_cost: float
    ) -> float:
        """Naive nested loops: rescan the inner side per outer row."""
        return outer_rows * inner_scan_cost

    def hash_join(
        self, build_rows: float, probe_rows: float, output_rows: float
    ) -> float:
        c = self._c
        return (
            build_rows * c.hash_build_cost
            + probe_rows * c.hash_probe_cost
            + output_rows * c.cpu_tuple_cost
        )

    def merge_join(
        self, left_rows: float, right_rows: float, output_rows: float
    ) -> float:
        """Sort-merge join: both inputs sorted here (no order tracking)."""
        c = self._c
        return (
            self.sort(left_rows)
            + self.sort(right_rows)
            + (left_rows + right_rows) * c.cpu_compare_cost
            + output_rows * c.cpu_tuple_cost
        )

    # ------------------------------------------------------------------
    # sorts and aggregation
    # ------------------------------------------------------------------

    def sort(self, rows: float) -> float:
        return self._c.sort_constant * rows * math.log2(rows + 2.0)

    def hash_aggregate(self, input_rows: float, groups: float) -> float:
        c = self._c
        return input_rows * c.hash_build_cost + groups * c.cpu_tuple_cost

    def stream_aggregate(self, input_rows: float, groups: float) -> float:
        """Sort-based aggregation: sort the input, then one pass.

        Output arrives sorted on the grouping columns, so a downstream
        ORDER BY over (a prefix of) them is free — that trade-off against
        :meth:`hash_aggregate` is decided by the *estimated* group count,
        which makes the choice statistics-sensitive.
        """
        c = self._c
        return self.sort(input_rows) + input_rows * c.cpu_tuple_cost
