"""Database-wide schema: a set of tables plus the foreign-key join graph."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.catalog.column import Column, ColumnRef
from repro.catalog.table import ForeignKey, TableSchema
from repro.errors import CatalogError


class Schema:
    """All table schemas of a database and their foreign-key edges.

    The schema is the static backbone shared by the storage layer, the SQL
    binder, the optimizer, and the workload generator.  It owns no data.
    """

    def __init__(
        self,
        tables: Iterable[TableSchema] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        self._tables: Dict[str, TableSchema] = {}
        self._foreign_keys: List[ForeignKey] = []
        for table in tables:
            self.add_table(table)
        for fk in foreign_keys:
            self.add_foreign_key(fk)

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------

    def add_table(self, table: TableSchema) -> None:
        """Register a table schema.

        Raises:
            CatalogError: if a table with the same name already exists.
        """
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by name.

        Raises:
            CatalogError: if the table does not exist.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list:
        """Table names in insertion order."""
        return list(self._tables)

    def tables(self) -> list:
        """All table schemas in insertion order."""
        return list(self._tables.values())

    def column(self, ref: ColumnRef) -> Column:
        """Resolve a :class:`ColumnRef` to its :class:`Column` definition."""
        return self.table(ref.table).column(ref.column)

    def resolve_column(
        self, column_name: str, tables_in_scope: Iterable[str]
    ) -> ColumnRef:
        """Resolve a bare column name against a set of in-scope tables.

        Used by the SQL binder for unqualified column references.

        Raises:
            CatalogError: if the name is ambiguous or matches no table.
        """
        matches = [
            ColumnRef(tname, column_name)
            for tname in tables_in_scope
            if column_name in self.table(tname)
        ]
        if not matches:
            raise CatalogError(
                f"column {column_name!r} not found in tables "
                f"{sorted(tables_in_scope)}"
            )
        if len(matches) > 1:
            raise CatalogError(
                f"column {column_name!r} is ambiguous: matches "
                f"{[str(m) for m in matches]}"
            )
        return matches[0]

    # ------------------------------------------------------------------
    # foreign keys / join graph
    # ------------------------------------------------------------------

    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Register a foreign key after validating both endpoints exist."""
        child = self.table(fk.child_table)
        parent = self.table(fk.parent_table)
        for col in fk.child_columns:
            child.column(col)
        for col in fk.parent_columns:
            parent.column(col)
        self._foreign_keys.append(fk)

    def foreign_keys(self) -> list:
        return list(self._foreign_keys)

    def foreign_keys_of(self, table_name: str) -> list:
        """Foreign keys in which ``table_name`` participates (either side)."""
        return [
            fk
            for fk in self._foreign_keys
            if fk.child_table == table_name or fk.parent_table == table_name
        ]

    def join_neighbors(self, table_name: str) -> list:
        """Tables directly joinable to ``table_name`` via a foreign key."""
        neighbors = []
        for fk in self.foreign_keys_of(table_name):
            other = (
                fk.parent_table
                if fk.child_table == table_name
                else fk.child_table
            )
            if other != table_name and other not in neighbors:
                neighbors.append(other)
        return neighbors

    def join_edges(self) -> list:
        """All ``(child ColumnRef, parent ColumnRef)`` joinable pairs."""
        pairs = []
        for fk in self._foreign_keys:
            pairs.extend(fk.column_pairs)
        return pairs

    def connected_subset(
        self, start: str, size: int, choose=None
    ) -> Optional[list]:
        """Grow a connected set of ``size`` tables from ``start``.

        The workload generator uses this to produce queries whose join graph
        is connected (no cross products).  ``choose`` is an optional callable
        ``choose(candidates: list) -> str`` for injecting randomness; the
        default picks the first candidate deterministically.

        Returns the list of table names, or ``None`` if fewer than ``size``
        tables are reachable from ``start``.
        """
        if size < 1:
            raise CatalogError("connected_subset size must be >= 1")
        self.table(start)
        chosen = [start]
        while len(chosen) < size:
            frontier = []
            for tname in chosen:
                for other in self.join_neighbors(tname):
                    if other not in chosen and other not in frontier:
                        frontier.append(other)
            if not frontier:
                return None
            next_table = choose(frontier) if choose is not None else frontier[0]
            chosen.append(next_table)
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema(tables={self.table_names()})"
