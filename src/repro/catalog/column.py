"""Column definitions and fully-qualified column references."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.types import ColumnType


@dataclass(frozen=True)
class Column:
    """Definition of one column inside a table schema.

    Attributes:
        name: column name, unique within its table.
        type: logical :class:`ColumnType`.
        nullable: whether NULLs may appear (the generator never produces
            NULLs for key columns).
    """

    name: str
    type: ColumnType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A fully qualified ``table.column`` reference.

    ``ColumnRef`` is the currency of the whole library: statistics are
    declared over tuples of ``ColumnRef``, predicates bind to them, and the
    candidate-statistics algorithm manipulates sets of them.  The paper's
    notation ``R1.a`` maps directly to ``ColumnRef("R1", "a")``.
    """

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"

    @classmethod
    def parse(cls, text: str) -> "ColumnRef":
        """Parse ``"table.column"`` into a ``ColumnRef``.

        Raises:
            ValueError: if the text is not of the form ``table.column``.
        """
        parts = text.split(".")
        if len(parts) != 2 or not all(parts):
            raise ValueError(f"expected 'table.column', got {text!r}")
        return cls(parts[0], parts[1])
