"""Table schemas and foreign-key constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.catalog.column import Column, ColumnRef
from repro.catalog.types import ColumnType
from repro.errors import CatalogError


@dataclass(frozen=True)
class ForeignKey:
    """A (possibly composite) foreign-key edge between two tables.

    The Rags-style workload generator walks these edges to build join
    predicates, so every join produced by the generator is semantically
    meaningful (as the TPC-D queries are).

    Attributes:
        child_table: referencing table name.
        child_columns: referencing column names, in order.
        parent_table: referenced table name.
        parent_columns: referenced column names, in order.
    """

    child_table: str
    child_columns: tuple
    parent_table: str
    parent_columns: tuple

    def __post_init__(self) -> None:
        if len(self.child_columns) != len(self.parent_columns):
            raise CatalogError(
                "foreign key column lists must have equal length: "
                f"{self.child_columns} vs {self.parent_columns}"
            )
        if not self.child_columns:
            raise CatalogError("foreign key must reference at least one column")

    @property
    def column_pairs(self) -> list:
        """List of ``(child ColumnRef, parent ColumnRef)`` pairs."""
        return [
            (
                ColumnRef(self.child_table, c),
                ColumnRef(self.parent_table, p),
            )
            for c, p in zip(self.child_columns, self.parent_columns)
        ]


class TableSchema:
    """Schema of one table: ordered columns plus an optional primary key.

    Column lookup is O(1) by name; the declared column order determines the
    physical layout of generated data and the row width used by the I/O
    cost model.
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: Optional[tuple] = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name: {name!r}")
        self.name = name
        self.columns = list(columns)
        if not self.columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        self._by_name = {}
        for col in self.columns:
            if col.name in self._by_name:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {name!r}"
                )
            self._by_name[col.name] = col
        self.primary_key = tuple(primary_key) if primary_key else ()
        for key_col in self.primary_key:
            if key_col not in self._by_name:
                raise CatalogError(
                    f"primary key column {key_col!r} not in table {name!r}"
                )

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._by_name

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``.

        Raises:
            CatalogError: if the column does not exist.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column_names(self) -> list:
        """Column names in declaration order."""
        return [col.name for col in self.columns]

    def ref(self, column_name: str) -> ColumnRef:
        """Build a :class:`ColumnRef` for one of this table's columns."""
        self.column(column_name)  # validates existence
        return ColumnRef(self.name, column_name)

    def refs(self) -> list:
        """``ColumnRef`` for every column, in declaration order."""
        return [ColumnRef(self.name, col.name) for col in self.columns]

    @property
    def row_width_bytes(self) -> int:
        """Approximate stored width of one row, for the I/O cost model."""
        return sum(col.type.storage_width_bytes for col in self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(c.name for c in self.columns)
        return f"TableSchema({self.name}: {cols})"


def make_table(
    name: str,
    column_specs: Iterable[tuple],
    primary_key: Optional[tuple] = None,
) -> TableSchema:
    """Convenience constructor from ``(name, ColumnType)`` pairs.

    Example::

        t = make_table("emp", [("id", ColumnType.INT), ("age", ColumnType.INT)],
                       primary_key=("id",))
    """
    columns = [Column(cname, ctype) for cname, ctype in column_specs]
    return TableSchema(name, columns, primary_key)


__all__ = ["ForeignKey", "TableSchema", "make_table", "ColumnType"]
