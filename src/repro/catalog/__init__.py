"""Schema and catalog metadata: types, columns, tables, foreign keys.

This package is the "data dictionary" of the engine.  It is deliberately
independent of storage so that optimizer tests can build schemas without
materializing data.

Public API::

    from repro.catalog import (
        ColumnType, Column, TableSchema, ForeignKey, Schema, ColumnRef,
    )
"""

from repro.catalog.types import ColumnType
from repro.catalog.column import Column, ColumnRef
from repro.catalog.table import TableSchema, ForeignKey
from repro.catalog.schema import Schema

__all__ = [
    "ColumnType",
    "Column",
    "ColumnRef",
    "TableSchema",
    "ForeignKey",
    "Schema",
]
