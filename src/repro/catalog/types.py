"""Column type system.

Four scalar types cover the TPC-D schema and the SQL subset we support.
Strings are dictionary-encoded by the storage layer (each distinct string
maps to an integer code whose order matches lexicographic order), and DATEs
are stored as integer day numbers, so *every* column is numeric at the
storage level.  That keeps histograms and predicate evaluation purely
numeric, as noted in DESIGN.md.
"""

from __future__ import annotations

import enum


class ColumnType(enum.Enum):
    """Logical type of a column."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"

    @property
    def is_numeric(self) -> bool:
        """True for types whose literals are plain numbers in SQL."""
        return self in (ColumnType.INT, ColumnType.FLOAT)

    @property
    def storage_width_bytes(self) -> int:
        """Approximate per-value width used by the I/O cost model."""
        widths = {
            ColumnType.INT: 8,
            ColumnType.FLOAT: 8,
            ColumnType.STRING: 24,
            ColumnType.DATE: 8,
        }
        return widths[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnType.{self.name}"
