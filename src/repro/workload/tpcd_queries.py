"""The 17 TPC-D benchmark queries (paper Sec 1 and Sec 8.1).

TPC-D defines 17 decision-support queries, Q1-Q17.  Our engine supports
single-block conjunctive SPJ + aggregation, so queries that use
correlated subqueries, CASE, self-joins, or HAVING are flattened to their
SPJ skeleton.  Every approximation is documented inline; what the intro
experiment needs — multi-join, multi-predicate queries whose plan choice
is sensitive to statistics — is preserved.

``tpcd_queries(schema)`` parses and binds all 17; each query's ``text``
carries the SQL it was built from.
"""

from __future__ import annotations

from typing import List

from repro.catalog import Schema
from repro.sql.binder import bind
from repro.sql.parser import parse_statement
from repro.sql.query import Query

TPCD_QUERY_SQL = [
    # Q1 pricing summary report (verbatim shape)
    (
        "Q1",
        "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
        "SUM(l_extendedprice), SUM(l_extendedprice * (1 - l_discount)), "
        "AVG(l_quantity), COUNT(*) "
        "FROM lineitem WHERE l_shipdate <= '1998-09-02' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus",
    ),
    # Q2 minimum-cost supplier; the correlated MIN(ps_supplycost)
    # subquery is dropped, keeping the 5-way join and region filter
    (
        "Q2",
        "SELECT s_acctbal, s_name, n_name, p_partkey "
        "FROM part, supplier, partsupp, nation, region "
        "WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey "
        "AND p_size = 15 AND p_type LIKE '%BRASS' "
        "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        "AND r_name = 'EUROPE' ORDER BY s_name",
    ),
    # Q3 shipping priority (verbatim shape)
    (
        "Q3",
        "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)), "
        "o_orderdate, o_shippriority "
        "FROM customer, orders, lineitem "
        "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
        "AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' "
        "AND l_shipdate > '1995-03-15' "
        "GROUP BY l_orderkey, o_orderdate, o_shippriority",
    ),
    # Q4 order priority checking; EXISTS(lineitem) flattened to a join and
    # the commitdate < receiptdate correlation replaced by a receiptdate
    # range (column-to-column predicates are outside the subset)
    (
        "Q4",
        "SELECT o_orderpriority, COUNT(*) FROM orders, lineitem "
        "WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' "
        "AND l_orderkey = o_orderkey AND l_receiptdate > '1993-08-01' "
        "GROUP BY o_orderpriority ORDER BY o_orderpriority",
    ),
    # Q5 local supplier volume (verbatim shape, 6-way join)
    (
        "Q5",
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) "
        "FROM customer, orders, lineitem, supplier, nation, region "
        "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
        "AND l_suppkey = s_suppkey AND s_nationkey = n_nationkey "
        "AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        "AND r_name = 'ASIA' AND o_orderdate >= '1994-01-01' "
        "AND o_orderdate < '1995-01-01' GROUP BY n_name",
    ),
    # Q6 forecasting revenue change (verbatim shape)
    (
        "Q6",
        "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
        "WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' "
        "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
    ),
    # Q7 volume shipping; the nation self-join (n1, n2) collapses to one
    # nation filter — self-joins are outside the subset
    (
        "Q7",
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) "
        "FROM supplier, lineitem, orders, customer, nation "
        "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
        "AND c_custkey = o_custkey AND s_nationkey = n_nationkey "
        "AND n_name = 'FRANCE' AND l_shipdate >= '1995-01-01' "
        "AND l_shipdate <= '1996-12-31' GROUP BY n_name",
    ),
    # Q8 national market share; year extraction and CASE dropped,
    # grouping by nation instead
    (
        "Q8",
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) "
        "FROM part, supplier, lineitem, orders, customer, nation, region "
        "WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey "
        "AND l_orderkey = o_orderkey AND o_custkey = c_custkey "
        "AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        "AND r_name = 'AMERICA' AND p_type = 'ECONOMY ANODIZED STEEL' "
        "AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' "
        "GROUP BY n_name",
    ),
    # Q9 product type profit; year extraction dropped, grouped by nation
    (
        "Q9",
        "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) "
        "FROM part, supplier, lineitem, partsupp, orders, nation "
        "WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey "
        "AND ps_partkey = l_partkey AND p_partkey = l_partkey "
        "AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey "
        "AND p_name LIKE '%green%' GROUP BY n_name",
    ),
    # Q10 returned item reporting (verbatim shape)
    (
        "Q10",
        "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)), "
        "n_name FROM customer, orders, lineitem, nation "
        "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
        "AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01' "
        "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
        "GROUP BY c_custkey, c_name, n_name",
    ),
    # Q11 important stock identification; the HAVING threshold is a
    # constant instead of the original's scalar subquery
    (
        "Q11",
        "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) "
        "FROM partsupp, supplier, nation "
        "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey "
        "AND n_name = 'GERMANY' GROUP BY ps_partkey "
        "HAVING SUM(ps_supplycost * ps_availqty) > 10000",
    ),
    # Q12 shipping modes; the CASE priority split becomes a GROUP BY over
    # priority, and the commit/receipt correlations become date ranges
    (
        "Q12",
        "SELECT l_shipmode, o_orderpriority, COUNT(*) "
        "FROM orders, lineitem WHERE o_orderkey = l_orderkey "
        "AND l_shipmode IN ('MAIL', 'SHIP') "
        "AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01' "
        "GROUP BY l_shipmode, o_orderpriority ORDER BY l_shipmode",
    ),
    # Q13 (TPC-D): customer order counts by status
    (
        "Q13",
        "SELECT c_nationkey, COUNT(*) FROM customer, orders "
        "WHERE c_custkey = o_custkey AND o_orderstatus = 'F' "
        "GROUP BY c_nationkey ORDER BY c_nationkey",
    ),
    # Q14 promotion effect; the CASE percentage becomes a plain revenue sum
    (
        "Q14",
        "SELECT SUM(l_extendedprice * (1 - l_discount)) "
        "FROM lineitem, part WHERE l_partkey = p_partkey "
        "AND p_type LIKE 'PROMO%' AND l_shipdate >= '1995-09-01' "
        "AND l_shipdate < '1995-10-01'",
    ),
    # Q15 top supplier; the revenue view + MAX subquery flattened to the
    # underlying grouped join
    (
        "Q15",
        "SELECT s_name, SUM(l_extendedprice * (1 - l_discount)) "
        "FROM supplier, lineitem WHERE s_suppkey = l_suppkey "
        "AND l_shipdate >= '1996-01-01' AND l_shipdate < '1996-04-01' "
        "GROUP BY s_name",
    ),
    # Q16 parts/supplier relationship; the NOT IN supplier-complaint
    # subquery is dropped
    (
        "Q16",
        "SELECT p_brand, p_type, p_size, COUNT(ps_suppkey) "
        "FROM partsupp, part WHERE p_partkey = ps_partkey "
        "AND p_brand <> 'Brand#45' AND p_type LIKE 'MEDIUM POLISHED%' "
        "AND p_size IN (3, 9, 14, 19, 23, 36, 45, 49) "
        "GROUP BY p_brand, p_type, p_size",
    ),
    # Q17 small-quantity-order revenue; the AVG(l_quantity) correlated
    # subquery becomes a constant quantity threshold
    (
        "Q17",
        "SELECT SUM(l_extendedprice) FROM lineitem, part "
        "WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' "
        "AND p_container = 'MED BOX' AND l_quantity < 5",
    ),
]
"""``(query id, SQL text)`` for all 17 queries."""


def tpcd_queries(schema: Schema) -> List[Query]:
    """Parse and bind all 17 TPC-D queries against ``schema``."""
    return [
        bind(parse_statement(sql), schema) for _, sql in TPCD_QUERY_SQL
    ]


def tpcd_query(schema: Schema, query_id: str) -> Query:
    """One TPC-D query by id (``"Q1"`` .. ``"Q17"``)."""
    for qid, sql in TPCD_QUERY_SQL:
        if qid == query_id:
            return bind(parse_statement(sql), schema)
    raise KeyError(f"no TPC-D query named {query_id!r}")
