"""Rags-style stochastic workload generation (paper Sec 8.1, ref [15]).

Generates seeded, reproducible workloads over a populated database.  The
paper's three knobs are exposed directly:

* ``update_percent`` — share of INSERT/DELETE/UPDATE statements
  (0, 25, 50);
* ``complexity`` — ``"simple"`` (queries touch up to 2 tables) or
  ``"complex"`` (up to 8 tables);
* ``statements`` — workload length (100, 500, 1000).

Workload names follow the paper's convention: ``U25-S-1000`` is a Simple
1000-statement workload with 25% updates.

Queries are realistic by construction: joins follow foreign keys (so the
join graph is connected) and literals are sampled from the stored data
(so predicate selectivities span the real distribution, which is where
skew — and hence statistics — matters).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.catalog import ColumnRef, ColumnType
from repro.errors import WorkloadError
from repro.sql.expressions import (
    Aggregate,
    AggregateFunction,
    ColumnExpression,
)
from repro.sql.predicates import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    JoinPredicate,
    LikePredicate,
)
from repro.sql.query import DmlStatement, Query
from repro.workload.workload import Workload

_NAME_RE = re.compile(r"^U(\d+)-([SC])-(\d+)$")


@dataclass(frozen=True)
class RagsConfig:
    """Workload-shape parameters (paper Sec 8.1)."""

    update_percent: int = 0
    complexity: str = "simple"  # "simple" (2 tables) or "complex" (8)
    statements: int = 100
    seed: int = 7
    max_selection_predicates: int = 3
    group_by_probability: float = 0.40
    order_by_probability: float = 0.25
    having_probability: float = 0.20

    def __post_init__(self) -> None:
        if not 0 <= self.update_percent <= 100:
            raise WorkloadError(
                f"update_percent must be in [0, 100], got {self.update_percent}"
            )
        if self.complexity not in ("simple", "complex"):
            raise WorkloadError(
                f"complexity must be 'simple' or 'complex', got "
                f"{self.complexity!r}"
            )
        if self.statements < 1:
            raise WorkloadError("statements must be >= 1")

    @property
    def max_tables(self) -> int:
        return 2 if self.complexity == "simple" else 8

    @property
    def name(self) -> str:
        letter = "S" if self.complexity == "simple" else "C"
        return f"U{self.update_percent}-{letter}-{self.statements}"


def parse_workload_name(name: str) -> RagsConfig:
    """Parse the paper's ``U<pct>-<S|C>-<n>`` naming into a config."""
    match = _NAME_RE.match(name)
    if not match:
        raise WorkloadError(
            f"workload name {name!r} does not match 'U<pct>-<S|C>-<n>'"
        )
    pct, letter, count = match.groups()
    return RagsConfig(
        update_percent=int(pct),
        complexity="simple" if letter == "S" else "complex",
        statements=int(count),
    )


class RagsGenerator:
    """Seeded random workload generator over one database."""

    #: columns never used in generated predicates (free-text comments give
    #: meaningless predicates; keys are covered through joins instead)
    _SKIP_SUFFIXES = ("_comment", "_address", "_phone", "_name")

    def __init__(self, database, config: RagsConfig) -> None:
        self._db = database
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        # HAVING decisions use a dedicated stream so enabling/disabling
        # them never perturbs the rest of the generated workload
        self._having_rng = np.random.default_rng(config.seed + 104_729)
        self._tables = [
            name
            for name in database.table_names()
            if database.row_count(name) > 0
        ]
        if not self._tables:
            raise WorkloadError("database has no populated tables")

    # ------------------------------------------------------------------

    def generate(self) -> Workload:
        """Produce the full workload."""
        statements = []
        for _ in range(self._config.statements):
            is_update = (
                self._rng.uniform(0, 100) < self._config.update_percent
            )
            if is_update:
                statements.append(self._random_dml())
            else:
                statements.append(self._random_query())
        return Workload(statements, name=self._config.name)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _choice(self, items):
        return items[int(self._rng.integers(0, len(items)))]

    def _predicate_columns(self, table: str) -> List[str]:
        schema = self._db.table(table).schema
        keys = set(schema.primary_key)
        columns = [
            col.name
            for col in schema.columns
            if col.name not in keys
            and not col.name.endswith(self._SKIP_SUFFIXES)
        ]
        return columns or [schema.columns[0].name]

    #: probability of drawing a predicate literal uniformly from the
    #: column's *distinct* values rather than row-weighted.  Row-weighted
    #: draws on skewed data almost always hit the heavy value, producing
    #: unrealistically unselective predicates; real decision-support
    #: queries mostly name specific (tail) values.
    _DISTINCT_SAMPLE_PROBABILITY = 0.65

    def _sample_value(self, ref: ColumnRef):
        """A literal drawn from the column's actual data."""
        data = self._db.table(ref.table)
        arr = data.column_array(ref.column)
        if arr.shape[0] == 0:
            return 0
        if self._rng.uniform() < self._DISTINCT_SAMPLE_PROBABILITY:
            domain = np.unique(arr)
            raw = domain[int(self._rng.integers(0, domain.shape[0]))]
        else:
            raw = arr[int(self._rng.integers(0, arr.shape[0]))]
        ctype = self._db.schema.column(ref).type
        if ctype == ColumnType.STRING:
            return data.string_dictionary(ref.column).decode(int(raw))
        if ctype == ColumnType.FLOAT:
            return float(raw)
        return int(raw)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _random_query(self) -> Query:
        n_tables = int(self._rng.integers(1, self._config.max_tables + 1))
        start = self._choice(self._tables)
        tables = None
        if n_tables > 1:
            tables = self._db.schema.connected_subset(
                start, n_tables, choose=self._choice
            )
        if tables is None:
            tables = [start]

        joins = self._joins_for(tables)
        predicates = self._selections_for(tables)
        group_by, projections = self._aggregation_for(tables)
        having = self._having_for(group_by)
        order_by = self._order_by_for(group_by, projections, tables)
        return Query(
            tables=tuple(tables),
            predicates=tuple(predicates),
            joins=tuple(joins),
            group_by=tuple(group_by),
            order_by=tuple(order_by),
            projections=tuple(projections),
            having=tuple(having),
        )

    def _having_for(self, group_by) -> List:
        if not group_by:
            return []
        if self._having_rng.uniform() >= self._config.having_probability:
            return []
        from repro.sql.expressions import HavingPredicate

        threshold = int(self._having_rng.integers(2, 20))
        ops = [">", ">=", "<"]
        op = ops[int(self._having_rng.integers(0, len(ops)))]
        return [
            HavingPredicate(
                Aggregate(AggregateFunction.COUNT, None), op, threshold
            )
        ]

    def _joins_for(self, tables) -> List[JoinPredicate]:
        joins = []
        chosen = set(tables)
        for fk in self._db.schema.foreign_keys():
            if fk.child_table in chosen and fk.parent_table in chosen:
                for child_ref, parent_ref in fk.column_pairs:
                    join = JoinPredicate(child_ref, parent_ref)
                    if join not in joins:
                        joins.append(join)
        return joins

    def _selections_for(self, tables) -> List:
        count = int(
            self._rng.integers(1, self._config.max_selection_predicates + 1)
        )
        predicates = []
        used_columns = set()
        for _ in range(count):
            table = self._choice(list(tables))
            column = self._choice(self._predicate_columns(table))
            ref = ColumnRef(table, column)
            if ref in used_columns:
                continue
            used_columns.add(ref)
            predicates.append(self._random_predicate(ref))
        return predicates

    def _random_predicate(self, ref: ColumnRef):
        ctype = self._db.schema.column(ref).type
        value = self._sample_value(ref)
        if ctype == ColumnType.STRING:
            kind = self._choice(["eq", "in", "like"])
            if kind == "eq":
                return ComparisonPredicate(ref, "=", value)
            if kind == "in":
                values = {value}
                for _ in range(int(self._rng.integers(1, 4))):
                    values.add(self._sample_value(ref))
                return InPredicate(ref, tuple(sorted(values)))
            prefix = str(value)[: max(1, len(str(value)) // 2)]
            return LikePredicate(ref, prefix + "%")
        kind = self._choice(["eq", "lt", "gt", "between", "in"])
        if kind == "eq":
            return ComparisonPredicate(ref, "=", value)
        if kind == "lt":
            return ComparisonPredicate(ref, "<", value)
        if kind == "gt":
            return ComparisonPredicate(ref, ">", value)
        if kind == "between":
            other = self._sample_value(ref)
            low, high = sorted((value, other))
            return BetweenPredicate(ref, low, high)
        values = {value}
        for _ in range(int(self._rng.integers(1, 4))):
            values.add(self._sample_value(ref))
        return InPredicate(ref, tuple(sorted(values)))

    def _aggregation_for(self, tables):
        group_by: List[ColumnRef] = []
        projections: List = []
        if self._rng.uniform() < self._config.group_by_probability:
            n_group = int(self._rng.integers(1, 3))
            for _ in range(n_group):
                table = self._choice(list(tables))
                column = self._choice(self._predicate_columns(table))
                ref = ColumnRef(table, column)
                if ref not in group_by:
                    group_by.append(ref)
            projections = [ColumnExpression(ref) for ref in group_by]
            projections.append(Aggregate(AggregateFunction.COUNT, None))
            numeric = self._numeric_column(tables)
            if numeric is not None:
                projections.append(
                    Aggregate(
                        AggregateFunction.SUM, ColumnExpression(numeric)
                    )
                )
        return group_by, projections

    def _numeric_column(self, tables) -> Optional[ColumnRef]:
        for table in tables:
            for col in self._db.table(table).schema.columns:
                if col.type in (ColumnType.FLOAT, ColumnType.INT) and (
                    not col.name.endswith(self._SKIP_SUFFIXES)
                ):
                    return ColumnRef(table, col.name)
        return None

    def _order_by_for(self, group_by, projections, tables):
        if self._rng.uniform() >= self._config.order_by_probability:
            return []
        if group_by:
            return [group_by[0]]
        table = self._choice(list(tables))
        column = self._choice(self._predicate_columns(table))
        return [ColumnRef(table, column)]

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _random_dml(self) -> DmlStatement:
        kind = self._choice(["insert", "delete", "update"])
        table = self._choice(self._tables)
        if kind == "insert":
            return self._random_insert(table)
        if kind == "delete":
            return self._random_delete(table)
        return self._random_update(table)

    def _random_insert(self, table: str) -> DmlStatement:
        """Insert 1-5 rows cloned from existing rows (domain-valid)."""
        data = self._db.table(table)
        n = int(self._rng.integers(1, 6))
        rows = []
        names = data.schema.column_names()
        for _ in range(n):
            idx = int(self._rng.integers(0, max(1, data.row_count)))
            row = {}
            for name in names:
                ref = ColumnRef(table, name)
                arr = data.column_array(name)
                raw = arr[idx] if arr.shape[0] else 0
                ctype = self._db.schema.column(ref).type
                if ctype == ColumnType.STRING:
                    row[name] = data.string_dictionary(name).decode(int(raw))
                elif ctype == ColumnType.FLOAT:
                    row[name] = float(raw)
                else:
                    row[name] = int(raw)
            rows.append(row)
        return DmlStatement(kind="insert", table=table, rows=tuple(rows))

    def _random_delete(self, table: str) -> DmlStatement:
        """Delete by equality on a sampled value (bounded blast radius)."""
        column = self._choice(self._predicate_columns(table))
        ref = ColumnRef(table, column)
        predicate = ComparisonPredicate(ref, "=", self._sample_value(ref))
        return DmlStatement(kind="delete", table=table, predicate=predicate)

    def _random_update(self, table: str) -> DmlStatement:
        """Update one non-key column over an equality-selected row set."""
        columns = self._predicate_columns(table)
        target = self._choice(columns)
        where_col = self._choice(columns)
        target_ref = ColumnRef(table, target)
        where_ref = ColumnRef(table, where_col)
        predicate = ComparisonPredicate(
            where_ref, "=", self._sample_value(where_ref)
        )
        return DmlStatement(
            kind="update",
            table=table,
            predicate=predicate,
            assignments={target: self._sample_value(target_ref)},
        )


def generate_workload(
    database, name_or_config, seed: Optional[int] = None
) -> Workload:
    """Generate a workload from a config or a ``U25-S-1000``-style name."""
    if isinstance(name_or_config, str):
        config = parse_workload_name(name_or_config)
    else:
        config = name_or_config
    if seed is not None:
        config = RagsConfig(
            update_percent=config.update_percent,
            complexity=config.complexity,
            statements=config.statements,
            seed=seed,
            max_selection_predicates=config.max_selection_predicates,
            group_by_probability=config.group_by_probability,
            order_by_probability=config.order_by_probability,
            having_probability=config.having_probability,
        )
    return RagsGenerator(database, config).generate()
