"""The Workload container."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.sql.query import DmlStatement, Query, Statement


class Workload:
    """An ordered sequence of bound statements (queries and DML).

    The paper defines candidate/essential statistics for a workload as
    derived from its *queries* (Definitions 1-2); the DML statements drive
    modification counters and update-cost accounting.
    """

    def __init__(
        self, statements: Iterable[Statement], name: Optional[str] = None
    ) -> None:
        self.statements: List[Statement] = list(statements)
        self.name = name or "workload"

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __getitem__(self, index):
        return self.statements[index]

    def queries(self) -> List[Query]:
        """The SELECT statements, in workload order."""
        return [s for s in self.statements if isinstance(s, Query)]

    def dml(self) -> List[DmlStatement]:
        """The INSERT/DELETE/UPDATE statements, in workload order."""
        return [s for s in self.statements if isinstance(s, DmlStatement)]

    @property
    def update_fraction(self) -> float:
        """Fraction of statements that are DML."""
        if not self.statements:
            return 0.0
        return len(self.dml()) / len(self.statements)

    # ------------------------------------------------------------------
    # serialization (plain .sql files)
    # ------------------------------------------------------------------

    def save(self, path: str, schema) -> None:
        """Write the workload to ``path`` as newline-separated SQL."""
        from repro.sql.render import render_workload

        with open(path, "w") as handle:
            handle.write(render_workload(self, schema) + "\n")

    @classmethod
    def load(cls, path: str, schema, name: Optional[str] = None):
        """Load a workload previously written by :meth:`save`."""
        from repro.sql.render import load_workload

        with open(path) as handle:
            return load_workload(
                handle.read(), schema, name=name or path
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workload({self.name!r}, statements={len(self.statements)}, "
            f"queries={len(self.queries())})"
        )
