"""Workloads: the Rags-style random generator and the TPC-D query set.

Paper Sec 8.1: experiments use (a) the 17 TPC-D benchmark queries and
(b) workloads from the Rags stochastic SQL generator [15], parameterized
by update percentage (0 / 25 / 50), complexity (Simple = up to 2 tables,
Complex = up to 8 tables), and statement count (100 / 500 / 1000), named
e.g. ``U25-S-1000``.

Public API::

    from repro.workload import (
        Workload, RagsConfig, RagsGenerator, generate_workload,
        tpcd_queries, parse_workload_name,
    )
"""

from repro.workload.workload import Workload
from repro.workload.rags import (
    RagsConfig,
    RagsGenerator,
    generate_workload,
    parse_workload_name,
)
from repro.workload.tpcd_queries import tpcd_queries

__all__ = [
    "Workload",
    "RagsConfig",
    "RagsGenerator",
    "generate_workload",
    "parse_workload_name",
    "tpcd_queries",
]
