"""Command-line interface.

::

    python -m repro.cli generate --scale 0.005 --z 2 --out /tmp/tpcd
    python -m repro.cli query --db /tmp/tpcd "SELECT COUNT(*) FROM orders"
    python -m repro.cli workload --db /tmp/tpcd --name U25-S-100 \
        --out /tmp/w.sql
    python -m repro.cli tune --db /tmp/tpcd --workload /tmp/w.sql \
        --mode offline
    python -m repro.cli serve --workload U25-S-100 --workers 2
    python -m repro.cli experiment figure4 --z 2

Every subcommand prints human-readable output; ``experiment`` prints the
same rows the benchmark harness reports (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.backends.base import BACKEND_NAMES
from repro.experiments.common import DATABASE_SPECS, format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Automating Statistics Management for "
            "Query Optimizers' (ICDE 2000)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a skewed TPC-D database")
    gen.add_argument("--scale", type=float, default=0.005)
    gen.add_argument(
        "--z",
        default="0",
        help="Zipfian skew: a number in [0,4] or 'mix'",
    )
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, help="output directory")

    query = sub.add_parser("query", help="run one SQL statement")
    query.add_argument("--db", required=True, help="database directory")
    query.add_argument("sql", help="the SQL text")
    query.add_argument("--limit", type=int, default=20)
    query.add_argument(
        "--explain", action="store_true", help="print the plan only"
    )

    workload = sub.add_parser(
        "workload", help="generate a Rags-style workload as SQL"
    )
    workload.add_argument("--db", required=True)
    workload.add_argument(
        "--name", default="U25-S-100", help="U<pct>-<S|C>-<n> spec"
    )
    workload.add_argument("--seed", type=int, default=7)
    workload.add_argument("--out", required=True, help="output .sql file")

    tune = sub.add_parser(
        "tune", help="run automated statistics selection over a workload"
    )
    tune.add_argument("--db", required=True)
    tune.add_argument("--workload", required=True, help=".sql file")
    tune.add_argument(
        "--mode",
        choices=("mnsa", "mnsad", "offline", "syntactic"),
        default="offline",
    )
    tune.add_argument("--t", type=float, default=20.0)
    tune.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="plan-cache capacity for analysis probes (0 disables)",
    )
    tune.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="memory",
        help=(
            "engine the tuning analyses run against; with a foreign "
            "engine (e.g. sqlite) decisions are mirrored into the "
            "in-memory statistics"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the online statistics service: stream a workload "
            "through concurrent sessions with background MNSA/D workers "
            "and a staleness monitor"
        ),
    )
    serve.add_argument(
        "--db", default=None, help="existing database directory (default: "
        "generate a TPC-D database in memory)"
    )
    serve.add_argument("--scale", type=float, default=0.002)
    serve.add_argument("--z", default="2", help="Zipfian skew for --db-less runs")
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--workload", default="U25-S-100", help="U<pct>-<S|C>-<n> spec"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="background advisor workers"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "service shards: tables are partitioned across shards, each "
            "with its own statement lock, capture-log segment, advisor "
            "workers, and staleness monitor"
        ),
    )
    serve.add_argument(
        "--clients", type=int, default=4, help="concurrent client sessions"
    )
    serve.add_argument(
        "--policy", choices=("mnsa", "mnsad"), default="mnsad"
    )
    serve.add_argument(
        "--capture", type=int, default=1024, help="capture-log capacity"
    )
    serve.add_argument(
        "--refresh-fraction",
        type=float,
        default=0.2,
        help="staleness trigger: counter >= fraction * rows",
    )
    serve.add_argument(
        "--refresh-budget",
        type=float,
        default=None,
        help="max refresh work units per monitor cycle (default unbounded)",
    )
    serve.add_argument(
        "--no-execute",
        action="store_true",
        help="optimize only; skip plan execution",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="shared plan-cache capacity (0 disables caching)",
    )
    serve.add_argument(
        "--parallelism",
        type=int,
        default=None,
        help="analysis parallelism: overrides --workers when given",
    )
    serve.add_argument(
        "--feedback",
        action="store_true",
        help=(
            "capture per-operator estimated-vs-actual cardinalities and "
            "let observed q-error drive refresh/re-tune decisions"
        ),
    )
    serve.add_argument(
        "--refresh-policy",
        choices=("churn", "qerror", "hybrid"),
        default="churn",
        help=(
            "staleness-monitor trigger: row churn (SQL Server 7.0 "
            "baseline), observed q-error, or both (implies --feedback)"
        ),
    )
    serve.add_argument(
        "--qerror-refresh-threshold",
        type=float,
        default=4.0,
        help="decayed q-error at which a table becomes due for refresh",
    )
    serve.add_argument(
        "--qerror-retune-threshold",
        type=float,
        default=10.0,
        help="worst plan q-error that queues an MNSA re-tune",
    )
    serve.add_argument(
        "--learned",
        action="store_true",
        help=(
            "apply learned cardinality corrections inside selectivity "
            "estimation (implies --feedback)"
        ),
    )
    serve.add_argument(
        "--learned-model",
        choices=("multiplicative", "bucket"),
        default="multiplicative",
        help="correction model class used when --learned is on",
    )
    serve.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="memory",
        help=(
            "engine the background advisor workers analyze against "
            "(see ServiceConfig.backend)"
        ),
    )

    feedback = sub.add_parser(
        "feedback",
        help=(
            "execute a workload inline with per-operator feedback capture "
            "and report q-error aggregates per (table, column-set) target"
        ),
    )
    feedback.add_argument(
        "action",
        nargs="?",
        choices=("report",),
        default="report",
        help="what to do with the captured feedback (default: report)",
    )
    feedback.add_argument(
        "--db", default=None, help="existing database directory (default: "
        "generate a TPC-D database in memory)"
    )
    feedback.add_argument("--scale", type=float, default=0.002)
    feedback.add_argument("--z", default="2")
    feedback.add_argument("--seed", type=int, default=42)
    feedback.add_argument(
        "--workload", default="U25-S-100", help="U<pct>-<S|C>-<n> spec"
    )
    feedback.add_argument(
        "--threshold",
        type=float,
        default=4.0,
        help="flag targets whose decayed q-error reaches this value",
    )
    feedback.add_argument(
        "--top", type=int, default=20, help="show at most this many targets"
    )
    feedback.add_argument(
        "--learned",
        action="store_true",
        help=(
            "feed observations into a learned correction store and "
            "report its per-key factors and hit/miss counters"
        ),
    )
    feedback.add_argument(
        "--learned-model",
        choices=("multiplicative", "bucket"),
        default="multiplicative",
        help="correction model class used when --learned is on",
    )

    experiment = sub.add_parser(
        "experiment", help="reproduce a paper table or figure"
    )
    experiment.add_argument(
        "which",
        choices=("intro", "figure3", "figure4", "single-column", "table1"),
    )
    experiment.add_argument("--scale", type=float, default=0.002)
    experiment.add_argument(
        "--z", default=None, help="restrict to one skew setting"
    )
    experiment.add_argument("--queries", type=int, default=30)

    ablation = sub.add_parser(
        "ablation", help="run one of the design-choice ablations"
    )
    ablation.add_argument(
        "which",
        choices=(
            "threshold",
            "next-stat",
            "shrinking",
            "equivalence",
            "histograms",
            "sampling",
            "joint",
            "join-estimation",
            "aging",
            "maintenance",
        ),
    )
    ablation.add_argument("--scale", type=float, default=0.002)
    ablation.add_argument("--z", default="2")

    lint = sub.add_parser(
        "lint",
        help="run the repo-specific static-analysis rules (repro.analysis)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all, R001-R015)",
    )
    lint.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="BASE_REF",
        help=(
            "only lint files that differ from BASE_REF (default: HEAD) "
            "plus untracked files; falls back to a full run when git "
            "is unavailable"
        ),
    )
    lint.add_argument(
        "--exclude",
        action="append",
        default=None,
        metavar="PATTERN",
        help=(
            "skip files whose /-separated path matches the fnmatch "
            "PATTERN (repeatable)"
        ),
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run rules in N worker processes (default: 1, in-process)",
    )
    lint.add_argument(
        "--cache",
        nargs="?",
        const=".repro-lint-cache.json",
        default=None,
        metavar="PATH",
        help=(
            "enable the incremental on-disk cache "
            "(default path: .repro-lint-cache.json)"
        ),
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help="apply safe autofixes (R005 pin literals) and re-lint",
    )
    lint.add_argument(
        "--fix-unsafe",
        action="store_true",
        help=(
            "also apply unsafe fixes (R007 TODO registry entries); "
            "implies --fix"
        ),
    )
    lint.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            "(default: .repro-lint-baseline.json next to the first path, "
            "if present)"
        ),
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "query": _cmd_query,
        "workload": _cmd_workload,
        "tune": _cmd_tune,
        "serve": _cmd_serve,
        "feedback": _cmd_feedback,
        "experiment": _cmd_experiment,
        "ablation": _cmd_ablation,
        "lint": _cmd_lint,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------


def _parse_z(text):
    return text if text == "mix" else float(text)


def _cmd_generate(args) -> int:
    from repro.datagen import make_tpcd_database
    from repro.storage.persistence import save_database

    db = make_tpcd_database(
        scale=args.scale, z=_parse_z(args.z), seed=args.seed
    )
    save_database(db, args.out)
    rows = [[t, f"{db.row_count(t):,}"] for t in db.table_names()]
    print(f"wrote {db.name} (scale {args.scale}) to {args.out}")
    print(format_table(["table", "rows"], rows))
    return 0


def _cmd_query(args) -> int:
    from repro.executor import Executor
    from repro.optimizer import Optimizer
    from repro.sql.binder import parse_and_bind
    from repro.sql.query import Query
    from repro.storage.persistence import load_database

    db = load_database(args.db)
    statement = parse_and_bind(args.sql, db.schema)
    if not isinstance(statement, Query):
        from repro.executor.dml import apply_dml

        affected = apply_dml(db, statement)
        print(f"{affected} row(s) affected (database on disk unchanged)")
        return 0
    optimizer = Optimizer(db)
    result = optimizer.optimize(statement)
    print(result.plan.pretty())
    if args.explain:
        return 0
    executed = Executor(db).execute(result.plan, statement)
    print(
        f"\n{executed.row_count} row(s); actual cost "
        f"{executed.actual_cost:,.1f}"
    )
    for row in executed.rows(limit=args.limit):
        print(f"  {row}")
    if executed.row_count > args.limit:
        print(f"  ... ({executed.row_count - args.limit} more)")
    return 0


def _cmd_workload(args) -> int:
    from repro.sql.render import render_workload
    from repro.storage.persistence import load_database
    from repro.workload import generate_workload

    db = load_database(args.db)
    workload = generate_workload(db, args.name, seed=args.seed)
    with open(args.out, "w") as handle:
        handle.write(render_workload(workload, db.schema) + "\n")
    print(
        f"wrote {len(workload)} statements "
        f"({len(workload.queries())} queries) to {args.out}"
    )
    return 0


def _cmd_tune(args) -> int:
    from repro.core.advisor import StatisticsAdvisor
    from repro.core.mnsa import MnsaConfig
    from repro.core.policy import CreationPolicy
    from repro.optimizer.cache import PlanCache
    from repro.sql.render import load_workload
    from repro.storage.persistence import load_database

    db = load_database(args.db)
    with open(args.workload) as handle:
        workload = load_workload(handle.read(), db.schema)

    config = MnsaConfig(t_percent=args.t)
    cache = PlanCache(args.cache_size) if args.cache_size > 0 else None
    backend = None
    if args.backend != "memory":
        from repro.backends import backend_from_name

        backend = backend_from_name(args.backend, db)
    if args.mode == "offline":
        advisor = StatisticsAdvisor(
            db, CreationPolicy.NONE, config, cache=cache, backend=backend
        )
        shrink = advisor.offline_tune(workload.queries())
        print(
            f"offline tuning: MNSA created "
            f"{len(advisor.report.created)} statistics, Shrinking Set "
            f"retained {len(shrink.essential)}"
        )
        for key in shrink.essential:
            print(f"  keep {key}")
        return 0
    policy = {
        "mnsa": CreationPolicy.MNSA,
        "mnsad": CreationPolicy.MNSAD,
        "syntactic": CreationPolicy.SYNTACTIC,
    }[args.mode]
    advisor = StatisticsAdvisor(
        db, policy, config, cache=cache, backend=backend
    )
    report = advisor.run_workload(workload.statements)
    print(
        f"{args.mode}: processed {report.statements} statements, created "
        f"{len(report.created)} statistics "
        f"(creation cost {report.creation_cost:,.0f}), execution cost "
        f"{report.execution_cost:,.0f}"
    )
    for key in db.stats.visible_keys():
        print(f"  visible {key}")
    drop_list = db.stats.drop_list()
    if drop_list:
        print(f"  drop-list: {', '.join(str(k) for k in drop_list)}")
    return 0


def _cmd_serve(args) -> int:
    import threading

    from repro.config import ServiceConfig
    from repro.datagen import make_tpcd_database
    from repro.service import StatsService
    from repro.workload import generate_workload

    if args.db:
        from repro.storage.persistence import load_database

        db = load_database(args.db)
    else:
        db = make_tpcd_database(
            scale=args.scale, z=_parse_z(args.z), seed=args.seed
        )
    workload = generate_workload(db, args.workload, seed=args.seed)
    workers = (
        args.parallelism if args.parallelism is not None else args.workers
    )
    feedback_on = (
        args.feedback or args.learned or args.refresh_policy != "churn"
    )
    config = ServiceConfig(
        capture_capacity=args.capture,
        advisor_workers=workers,
        creation_policy=args.policy,
        staleness_fraction=args.refresh_fraction,
        refresh_budget_per_cycle=args.refresh_budget,
        execute_queries=not args.no_execute,
        plan_cache_size=args.cache_size,
        feedback_enabled=feedback_on,
        refresh_policy=args.refresh_policy,
        qerror_refresh_threshold=args.qerror_refresh_threshold,
        qerror_retune_threshold=args.qerror_retune_threshold,
        learned_enabled=args.learned,
        learned_model=args.learned_model,
        shards=args.shards,
        backend=args.backend,
    )
    service = StatsService(db, config)
    clients = max(1, args.clients)
    feedback_note = (
        f", feedback on ({args.refresh_policy} refresh)"
        if feedback_on
        else ""
    )
    if args.learned:
        feedback_note += f", learned corrections ({args.learned_model})"
    if args.backend != "memory":
        feedback_note += f", {args.backend} analysis backend"
    print(
        f"serving workload {args.workload} over {db.name}: "
        f"{clients} client(s), {workers} advisor worker(s), "
        f"{args.shards} shard(s), "
        f"policy {args.policy}, plan cache {args.cache_size}"
        f"{feedback_note}"
    )

    client_errors = []

    def run_client(statements) -> None:
        session = service.session()
        try:
            for statement in statements:
                session.submit_statement(statement)
        except BaseException as exc:  # surfaced after join
            client_errors.append(exc)

    with service:
        threads = [
            threading.Thread(
                target=run_client,
                args=(workload.statements[index::clients],),
                name=f"client-{index}",
            )
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.drain()
    # the context manager stopped the service with a final staleness pass
    created = service.created_off_path
    print(f"\nstatements submitted:  {len(workload)}")
    print(f"statistics created off the query path: {len(created)}")
    for key in created:
        print(f"  built {key}")
    drop_list = db.stats.drop_list()
    if drop_list:
        print(f"  drop-list: {', '.join(str(k) for k in drop_list)}")
    if service.feedback is not None:
        print("\n--- feedback (worst targets)")
        print(_feedback_table(service.feedback, threshold=None, top=10))
    if service.corrections is not None:
        counters = service.corrections.counters()
        print("\n--- corrections")
        print(
            f"model {service.corrections.model_name} "
            f"(version {counters['version']}): "
            f"{counters['observations']} observations, "
            f"{counters['hits']} hits / {counters['misses']} misses, "
            f"{counters['invalidations']} invalidations, "
            f"{counters['tracked']} tracked"
        )
    print("\n--- metrics")
    print(service.metrics_text())
    for exc in service.worker_errors():
        print(f"worker error: {exc!r}")
    for exc in client_errors:
        print(f"client error: {exc!r}")
    return 1 if (client_errors or service.worker_errors()) else 0


def _feedback_table(store, threshold, top) -> str:
    """Render a feedback store's worst targets as a report table."""
    rows = []
    for key, aggregate in store.snapshot()[:top]:
        flagged = (
            threshold is not None
            and aggregate["decayed_q_error"] >= threshold
        )
        rows.append(
            [
                str(key),
                aggregate["count"],
                f"{aggregate['max_q_error']:.1f}",
                f"{aggregate['p95_q_error']:.1f}",
                f"{aggregate['decayed_q_error']:.1f}",
                f"{aggregate['last_estimated']:.0f}",
                aggregate["last_actual"],
                "refresh" if flagged else "",
            ]
        )
    return format_table(
        [
            "target",
            "obs",
            "max q",
            "p95 q",
            "decayed q",
            "last est",
            "last actual",
            "action",
        ],
        rows,
    )


def _cmd_feedback(args) -> int:
    from repro.datagen import make_tpcd_database
    from repro.executor import Executor
    from repro.executor.dml import apply_dml
    from repro.feedback import FeedbackStore
    from repro.optimizer import Optimizer
    from repro.sql.query import Query
    from repro.workload import generate_workload

    if args.db:
        from repro.storage.persistence import load_database

        db = load_database(args.db)
    else:
        db = make_tpcd_database(
            scale=args.scale, z=_parse_z(args.z), seed=args.seed
        )
    workload = generate_workload(db, args.workload, seed=args.seed)
    corrections = None
    if args.learned:
        from repro.learned import CorrectionStore

        corrections = CorrectionStore(model=args.learned_model)
    optimizer = Optimizer(db, corrections=corrections)
    executor = Executor(db)
    store = FeedbackStore()
    queries = dml = 0
    for statement in workload.statements:
        if isinstance(statement, Query):
            plan = optimizer.optimize(statement)
            result = executor.execute(
                plan.plan, statement, feedback=store
            )
            if corrections is not None:
                corrections.observe_all(result.operator_observations)
            queries += 1
        else:
            apply_dml(db, statement)
            dml += 1
    counters = store.counters()
    print(
        f"executed {queries} queries / {dml} DML over {db.name}: "
        f"{counters['observations']} operator observations, "
        f"{counters['tracked']} feedback targets"
    )
    print(_feedback_table(store, threshold=args.threshold, top=args.top))
    if corrections is not None:
        cc = corrections.counters()
        print(
            f"\n--- corrections ({corrections.model_name}, "
            f"version {cc['version']}): "
            f"{cc['hits']} hits / {cc['misses']} misses, "
            f"{cc['observations']} observations, "
            f"{cc['tracked']} tracked"
        )
        rows = [
            [label, kind, f"{agg['factor']:.3f}", int(agg["count"])]
            for label, kind, agg in corrections.snapshot()[: args.top]
        ]
        if rows:
            print(
                format_table(["target", "kind", "factor", "obs"], rows)
            )
    else:
        print(
            "\n(re-run with --learned to train correction models on "
            "these observations)"
        )
    flagged = store.tables_by_error(args.threshold)
    if flagged:
        print(
            f"\ntables due for refresh at q-error >= {args.threshold:g}: "
            f"{', '.join(flagged)}"
        )
    else:
        print(
            f"\nno table reaches the q-error refresh threshold "
            f"({args.threshold:g})"
        )
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import (
        run_figure3,
        run_figure4,
        run_intro_experiment,
        run_single_column_mnsa,
        run_table1,
    )
    from repro.experiments.common import default_database_factory

    factory = default_database_factory(scale=args.scale)
    specs = DATABASE_SPECS
    if args.z is not None:
        z = _parse_z(args.z)
        specs = [(f"z={args.z}", z)]

    if args.which == "intro":
        result = run_intro_experiment(factory(_parse_z(args.z or "2")))
        rows = [
            [qid, "changed" if c else "same", f"{b:.0f}", f"{a:.0f}"]
            for qid, c, b, a in zip(
                result.query_ids,
                result.plan_changed,
                result.cost_before,
                result.cost_after,
            )
        ]
        print(
            format_table(
                ["query", "plan", "cost before", "cost after"], rows
            )
        )
        print(
            f"\n{result.changed_count}/17 plans changed "
            "(paper: 15/17)"
        )
        return 0

    runner = {
        "figure3": run_figure3,
        "figure4": run_figure4,
        "single-column": run_single_column_mnsa,
        "table1": run_table1,
    }[args.which]
    rows = []
    for _, z in specs:
        result = runner(factory, z, max_queries=args.queries)
        if args.which == "figure3":
            rows.append(
                [
                    result.database,
                    f"{result.creation_reduction_percent:.0f}%",
                    f"{result.execution_increase_percent:+.1f}%",
                ]
            )
        elif args.which == "table1":
            rows.append(
                [
                    result.database,
                    f"{result.update_cost_reduction_percent:.0f}%",
                    f"{result.execution_increase_percent:+.1f}%",
                ]
            )
        else:
            rows.append(
                [
                    result.database,
                    f"{result.creation_reduction_percent:.0f}%",
                    f"{result.execution_increase_percent:+.1f}%",
                ]
            )
    metric = (
        "update-cost reduction"
        if args.which == "table1"
        else "creation reduction"
    )
    print(format_table(["database", metric, "exec increase"], rows))
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments import (
        run_aging_experiment,
        run_equivalence_ablation,
        run_histogram_kind_ablation,
        run_joint_histogram_ablation,
        run_next_stat_ablation,
        run_sampling_ablation,
        run_shrinking_ablation,
        run_threshold_sweep,
    )
    from repro.experiments.common import default_database_factory

    factory = default_database_factory(scale=args.scale)
    z = _parse_z(args.z)

    if args.which == "threshold":
        rows = run_threshold_sweep(factory, z)
        print(
            format_table(
                ["t", "stats built", "creation cost", "execution cost"],
                [
                    [
                        f"{r.t_percent:g}%",
                        r.created_count,
                        f"{r.creation_cost:.0f}",
                        f"{r.execution_cost:.0f}",
                    ]
                    for r in rows
                ],
            )
        )
    elif args.which == "next-stat":
        result = run_next_stat_ablation(factory, z)
        print(
            format_table(
                ["strategy", "stats built", "creation cost"],
                [
                    [
                        "costliest-operator",
                        result.heuristic_created,
                        f"{result.heuristic_creation_cost:.0f}",
                    ],
                    [
                        "arbitrary",
                        result.arbitrary_created,
                        f"{result.arbitrary_creation_cost:.0f}",
                    ],
                ],
            )
        )
    elif args.which == "shrinking":
        result = run_shrinking_ablation(factory, z)
        print(
            format_table(
                ["strategy", "retained", "update cost", "optimizer calls"],
                [
                    [
                        "MNSA + Shrinking Set",
                        result.shrink_retained,
                        f"{result.shrink_update_cost:.0f}",
                        result.shrink_optimizer_calls,
                    ],
                    [
                        "MNSA/D",
                        result.mnsad_retained,
                        f"{result.mnsad_update_cost:.0f}",
                        result.mnsad_optimizer_calls,
                    ],
                ],
            )
        )
    elif args.which == "equivalence":
        rows = run_equivalence_ablation(factory, z)
        print(
            format_table(
                ["criterion", "retained", "update cost"],
                [
                    [r.criterion, r.retained, f"{r.update_cost:.0f}"]
                    for r in rows
                ],
            )
        )
    elif args.which == "histograms":
        rows = run_histogram_kind_ablation(factory, z)
        print(
            format_table(
                ["kind", "q-error geomean", "q-error max", "exec cost"],
                [
                    [
                        r.kind,
                        f"{r.q_error_geomean:.2f}",
                        f"{r.q_error_max:.1f}",
                        f"{r.execution_cost:.0f}",
                    ]
                    for r in rows
                ],
            )
        )
    elif args.which == "sampling":
        rows = run_sampling_ablation(factory, z)
        print(
            format_table(
                ["sample rows", "creation cost", "q-error geomean"],
                [
                    [
                        "full" if r.sample_rows is None else r.sample_rows,
                        f"{r.creation_cost:.0f}",
                        f"{r.q_error_geomean:.2f}",
                    ]
                    for r in rows
                ],
            )
        )
    elif args.which == "joint":
        rows = run_joint_histogram_ablation(factory, z)
        print(
            format_table(
                ["configuration", "q-error geomean", "q-error max"],
                [
                    [
                        r.configuration,
                        f"{r.q_error_geomean:.2f}",
                        f"{r.q_error_max:.1f}",
                    ]
                    for r in rows
                ],
            )
        )
    elif args.which == "join-estimation":
        from repro.experiments import run_join_estimation_ablation

        rows = run_join_estimation_ablation(factory, z)
        print(
            format_table(
                ["configuration", "q-error geomean", "q-error max"],
                [
                    [
                        r.configuration,
                        f"{r.q_error_geomean:.2f}",
                        f"{r.q_error_max:.1f}",
                    ]
                    for r in rows
                ],
            )
        )
    elif args.which == "maintenance":
        from repro.experiments import run_incremental_maintenance_experiment

        rows = run_incremental_maintenance_experiment(factory, z)
        print(
            format_table(
                [
                    "scenario",
                    "strategy",
                    "maintenance cost",
                    "rebuilds",
                    "q-error",
                ],
                [
                    [
                        r.scenario,
                        r.strategy,
                        f"{r.maintenance_cost:.0f}",
                        r.full_rebuilds,
                        f"{r.q_error_geomean:.2f}",
                    ]
                    for r in rows
                ],
            )
        )
    else:  # aging
        rows = run_aging_experiment(factory, z)
        print(
            format_table(
                ["configuration", "created", "creation cost", "exec cost"],
                [
                    [
                        "aging on" if r.aging_enabled else "aging off",
                        r.statistics_created,
                        f"{r.creation_cost:.0f}",
                        f"{r.execution_cost:.0f}",
                    ]
                    for r in rows
                ],
            )
        )
    return 0


def _git_changed_files(base_ref):
    """Absolute paths changed vs ``base_ref`` plus untracked files, or
    None when git is unavailable (not a repo, no git binary, bad ref)."""
    import os
    import subprocess

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            check=True,
            text=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "-z", base_ref, "--"],
            capture_output=True,
            check=True,
            text=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z"],
            capture_output=True,
            check=True,
            text=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names = set()
    for blob in (diff.stdout, untracked.stdout):
        names.update(name for name in blob.split("\0") if name)
    return [os.path.join(top, name) for name in sorted(names)]


def _cmd_lint(args) -> int:
    import os

    from repro.analysis import (
        BASELINE_FILENAME,
        RULES,
        all_rule_ids,
        save_baseline,
    )
    from repro.analysis.engine import run_lint
    from repro.analysis.output import render

    if args.list_rules:
        for rule_id in all_rule_ids():
            rule_cls = RULES[rule_id]
            print(
                f"{rule_id}  {rule_cls.name:24s} "
                f"{rule_cls.scope:8s} v{rule_cls.version:<3d} "
                f"{rule_cls.description}"
            )
        return 0

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(rules) - set(all_rule_ids()))
        if unknown:
            print(
                f"repro lint: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(all_rule_ids())})",
                file=sys.stderr,
            )
            return 2
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        print(
            f"repro lint: path(s) do not exist: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    # --changed / --exclude narrow the target set down to explicit
    # files; project-scope rules then see only that subset, which is the
    # point of the fast pre-gate (CI still runs the full tree).
    lint_targets = list(args.paths)
    if args.exclude or args.changed is not None:
        import fnmatch

        from repro.analysis.framework import collect_files

        selected = collect_files(lint_targets)
        if args.exclude:
            selected = [
                path
                for path in selected
                if not any(
                    fnmatch.fnmatch(path.replace(os.sep, "/"), pattern)
                    for pattern in args.exclude
                )
            ]
        if args.changed is not None:
            changed = _git_changed_files(args.changed)
            if changed is None:
                print(
                    "repro lint: --changed: git unavailable, "
                    "falling back to a full run",
                    file=sys.stderr,
                )
            else:
                changed_set = {os.path.realpath(path) for path in changed}
                selected = [
                    path
                    for path in selected
                    if os.path.realpath(path) in changed_set
                ]
        lint_targets = selected

    jobs = max(1, args.jobs)
    baseline = args.baseline
    if baseline is None:
        first = args.paths[0] if args.paths else "src"
        root = first if os.path.isdir(first) else os.path.dirname(first) or "."
        for candidate in (
            os.path.join(root, BASELINE_FILENAME),
            BASELINE_FILENAME,
        ):
            if os.path.exists(candidate):
                baseline = candidate
                break

    if args.update_baseline:
        findings = run_lint(lint_targets, rules=rules, jobs=jobs)
        target = args.baseline or BASELINE_FILENAME
        save_baseline(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    findings = run_lint(
        lint_targets,
        rules=rules,
        baseline=baseline,
        cache_path=args.cache,
        jobs=jobs,
    )

    if args.fix or args.fix_unsafe:
        from repro.analysis.fixers import apply_fixes

        report = apply_fixes(findings, unsafe=args.fix_unsafe)
        for path in sorted(report.files):
            print(f"fixed {report.files[path]} finding(s) in {path}")
        if report.files:
            findings = run_lint(
                lint_targets,
                rules=rules,
                baseline=baseline,
                cache_path=args.cache,
                jobs=jobs,
            )

    if args.format == "text":
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"{len(findings)} finding(s)")
            return 1
        return 0
    print(render(findings, args.format), end="")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
