"""Online statistics management as a long-running concurrent service.

The paper's "usage in a server" discussion (Sec 6) assumes statistics
creation, refresh, and drop-listing happen *inside* a living server while
queries keep flowing.  This package provides that runtime:

* :class:`~repro.service.service.StatsService` — the daemon facade:
  concurrent sessions submit typed
  :class:`~repro.service.api.ServiceRequest` objects (or SQL through a
  :class:`~repro.service.service.Session`), queries run with whatever
  statistics are visible *now*, sharded by table across
  :class:`~repro.service.service.ServiceShard` instances;
* :class:`~repro.service.admission.AdmissionQueue` /
  :class:`~repro.service.admission.TokenBucket` — bounded admission
  queue with backpressure and per-session rate limiting;
* :class:`~repro.service.events.CaptureLog` /
  :class:`~repro.service.events.QueryEvent` — the bounded workload
  capture log between the query path and the advisor;
* :class:`~repro.service.worker.AdvisorWorker` — background MNSA /
  MNSA-D threads draining the log;
* :class:`~repro.service.monitor.StalenessMonitor` — counter-triggered
  refresh under a cost budget;
* :class:`~repro.service.metrics.MetricsRegistry` — counters and gauges
  with a text dump.

See ``docs/service.md`` for the architecture walkthrough and the
``repro serve`` CLI subcommand for an end-to-end run.
"""

from repro.service.admission import AdmissionQueue, TokenBucket
from repro.service.api import ServiceRequest, ServiceResponse
from repro.service.events import CaptureLog, QueryEvent
from repro.service.metrics import MetricsRegistry
from repro.service.monitor import StalenessMonitor
from repro.service.service import ServiceShard, Session, StatsService
from repro.service.worker import AdvisorWorker

__all__ = [
    "AdmissionQueue",
    "AdvisorWorker",
    "CaptureLog",
    "MetricsRegistry",
    "QueryEvent",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceShard",
    "Session",
    "StalenessMonitor",
    "StatsService",
    "TokenBucket",
]
