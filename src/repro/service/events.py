"""Workload capture: query events and the bounded capture log.

The paper's Sec 6 online regime runs MNSA on the query path — every
incoming query pays the sensitivity analysis before it executes.  The
service decouples the two: the foreground session records a
:class:`QueryEvent` (what was optimized, at what estimated cost, and which
selectivity variables fell back to magic numbers) into a bounded
:class:`CaptureLog`, and background advisor workers drain the log to run
MNSA/MNSA-D asynchronously.

The log is a ring buffer: appending never blocks the query path.  When
the buffer is full the *oldest* unprocessed event is evicted and counted —
under overload the service degrades to sampling the workload rather than
slowing it down, the same posture a production monitoring pipeline takes.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.concurrency import guarded_by
from repro.errors import ServiceError
from repro.sql.query import Query


@dataclass(frozen=True)
class QueryEvent:
    """One captured query execution.

    Attributes:
        seq: monotonically increasing capture sequence number.
        query: the bound query (immutable once bound; safe to share with
            the advisor workers).
        estimated_cost: optimizer-estimated plan cost at execution time.
        magic_variable_count: selectivity variables that fell back to
            magic numbers — 0 means existing statistics fully covered the
            query and the advisor can skip it (unless the event is a
            re-tune request).
        tables: tables the query touches, for per-table attribution.
        retune: execution feedback flagged this query's plan as badly
            misestimated; the advisor must re-analyze it even if no
            selectivity variable fell back to a magic number.
        worst_q_error: worst per-operator q-error observed executing the
            plan (1.0 when the query was not executed or feedback is
            off).
    """

    seq: int
    query: Query
    estimated_cost: float
    magic_variable_count: int
    tables: Tuple[str, ...] = field(default=())
    retune: bool = False
    worst_q_error: float = 1.0


class CaptureLog:
    """A bounded, thread-safe ring buffer of :class:`QueryEvent`.

    ``append`` is non-blocking (evicts the oldest event when full);
    ``take`` blocks consumers until events arrive, the log is closed, or a
    timeout expires.  ``task_done`` / ``join`` mirror
    :class:`queue.Queue` so the service can drain: ``join`` returns once
    every appended event has been either processed or evicted.
    """

    _events = guarded_by("_cond")
    _closed = guarded_by("_cond")
    _unfinished = guarded_by("_cond")
    appended = guarded_by("_cond")
    dropped = guarded_by("_cond")
    drained = guarded_by("_cond")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: collections.deque = collections.deque()
        self._cond = threading.Condition()
        self._closed = False
        self._unfinished = 0
        self.appended = 0
        self.dropped = 0
        self.drained = 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    def append(self, event: QueryEvent) -> bool:
        """Record an event; returns False if an old event was evicted.

        Raises:
            ServiceError: if the log has been closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceError("capture log is closed")
            evicted = False
            if len(self._events) >= self.capacity:
                self._events.popleft()
                self.dropped += 1
                self._unfinished -= 1
                evicted = True
            self._events.append(event)
            self.appended += 1
            self._unfinished += 1
            self._cond.notify()
            return not evicted

    def close(self) -> None:
        """Stop accepting events and wake every blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------

    def take(
        self, max_items: int = 1, timeout: Optional[float] = None
    ) -> List[QueryEvent]:
        """Remove and return up to ``max_items`` events.

        Blocks until at least one event is available, the log is closed,
        or ``timeout`` seconds elapse; may return an empty list on timeout
        or when a closed log has been fully drained.
        """
        with self._cond:
            if not self._events and not self._closed:
                self._cond.wait(timeout)
            batch: List[QueryEvent] = []
            while self._events and len(batch) < max_items:
                batch.append(self._events.popleft())
            self.drained += len(batch)
            return batch

    def task_done(self, count: int = 1) -> None:
        """Mark ``count`` previously taken events as fully processed."""
        with self._cond:
            self._unfinished -= count
            if self._unfinished <= 0:
                self._cond.notify_all()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every event has been processed (or evicted).

        Returns True on success, False if ``timeout`` expired first.
        """
        with self._cond:
            if timeout is None:
                while self._unfinished > 0:
                    self._cond.wait()
                return True
            deadline = time.monotonic() + timeout
            while self._unfinished > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def unfinished(self) -> int:
        """Events appended but not yet processed or evicted."""
        with self._cond:
            return self._unfinished

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._cond:
            return (
                f"CaptureLog(depth={len(self._events)}/{self.capacity}, "
                f"appended={self.appended}, dropped={self.dropped})"
            )
