"""A small thread-safe metrics registry for the statistics service.

Counters accumulate (queries served, statistics built, work units spent);
gauges hold the latest observation (queue depth, visible statistics).
``render()`` produces the text dump the ``repro serve`` subcommand prints
on shutdown — one ``name value`` pair per line, sorted, in the spirit of a
Prometheus text exposition without the type annotations.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict

from repro.concurrency import guarded_by


class MetricsRegistry:
    """Named counters and gauges shared by every service component."""

    _counters = guarded_by("_lock")
    _gauges = guarded_by("_lock")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    @contextmanager
    def timer(self, name: str):
        """Time a block: bumps ``<name>_seconds`` and ``<name>_count``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._counters[f"{name}_seconds"] = (
                    self._counters.get(f"{name}_seconds", 0.0) + elapsed
                )
                self._counters[f"{name}_count"] = (
                    self._counters.get(f"{name}_count", 0.0) + 1.0
                )

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_value(self, name: str) -> float:
        """Current value of gauge ``name`` (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """All counters and gauges as one name -> value mapping."""
        with self._lock:
            merged = dict(self._counters)
            merged.update(self._gauges)
            return merged

    def render(self) -> str:
        """The text dump: one sorted ``name value`` pair per line."""
        lines = []
        for name, value in sorted(self.snapshot().items()):
            if value == int(value) and abs(value) < 1e15:
                lines.append(f"{name} {int(value)}")
            else:
                lines.append(f"{name} {value:.6g}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)})"
            )
