"""The long-running statistics-management service.

:class:`StatsService` is the online counterpart of
:class:`~repro.core.advisor.StatisticsAdvisor`: where the advisor runs the
paper's Sec 6 regime *inline* (every query pays for its own sensitivity
analysis before executing), the service runs it *asynchronously*:

* many client threads call :meth:`StatsService.submit` (or open a
  :class:`Session`); queries execute immediately with whatever statistics
  are currently visible;
* every query leaves a :class:`~repro.service.events.QueryEvent` in the
  bounded capture log;
* background :class:`~repro.service.worker.AdvisorWorker` threads drain
  the log and run MNSA / MNSA-D, creating and drop-listing statistics;
* a :class:`~repro.service.monitor.StalenessMonitor` watches the
  per-table row-modification counters and refreshes under a cost budget;
* a :class:`~repro.service.metrics.MetricsRegistry` counts everything.

Concurrency model: one reentrant database lock serializes statement
execution, advisor analysis, and refreshes at *statement granularity* —
the same isolation a single-writer engine gives — while the submit path
never waits on advisor or refresh work beyond the statement currently
holding the lock.  Finer-grained locks underneath (per-table mutation
locks, the statistics manager's lock) keep direct component use safe too.
"""

from __future__ import annotations

import itertools
import threading
from typing import List, Optional, Union

from repro.concurrency import guarded_by
from repro.config import ServiceConfig
from repro.core.mnsa import MnsaConfig
from repro.errors import ServiceError
from repro.executor.dml import apply_dml
from repro.executor.executor import ExecutionResult, Executor
from repro.feedback import FeedbackPolicy, FeedbackStore, worst_plan_q_error
from repro.learned import CorrectionStore
from repro.optimizer.cache import PlanCache
from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.service.events import CaptureLog, QueryEvent
from repro.service.metrics import MetricsRegistry
from repro.service.monitor import StalenessMonitor
from repro.service.worker import AdvisorWorker
from repro.sql.binder import parse_and_bind
from repro.sql.query import DmlStatement, Query
from repro.stats.statistic import StatKey


class Session:
    """One client connection to a :class:`StatsService`.

    Sessions are cheap handles: they parse SQL against the service's
    schema, delegate to the service, and keep per-session counters.  Any
    number of sessions may submit concurrently from their own threads.
    """

    def __init__(self, service: "StatsService", session_id: int) -> None:
        self._service = service
        self.session_id = session_id
        self.statements = 0
        self.queries = 0
        self.dml = 0

    def submit(self, sql: str):
        """Parse, bind, and execute one SQL statement."""
        statement = parse_and_bind(sql, self._service.database.schema)
        return self.submit_statement(statement)

    def submit_statement(self, statement):
        """Execute an already-bound statement through the service."""
        result = self._service.submit_statement(statement)
        self.statements += 1
        if isinstance(statement, Query):
            self.queries += 1
        else:
            self.dml += 1
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(id={self.session_id}, statements={self.statements})"
        )


class StatsService:
    """A concurrent, self-tuning statistics-management daemon.

    Args:
        database: the database to serve and manage statistics for.
        config: service knobs (see :class:`repro.config.ServiceConfig`).
        mnsa_config: analysis knobs handed to the advisor workers.
    """

    _created_off_path = guarded_by("_created_lock")
    _started = guarded_by("_state_lock")

    def __init__(
        self,
        database,
        config: Optional[ServiceConfig] = None,
        mnsa_config: Optional[MnsaConfig] = None,
    ) -> None:
        self.database = database
        self.config = config or ServiceConfig()
        self.mnsa_config = mnsa_config or MnsaConfig()
        self.metrics = MetricsRegistry()
        #: serializes statement execution, advisor analysis, and refreshes
        self.db_lock = threading.RLock()
        #: shared statistics-aware plan cache (sessions + advisor workers);
        #: None when ``plan_cache_size`` is 0
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(self.config.plan_cache_size, metrics=self.metrics)
            if self.config.plan_cache_size > 0
            else None
        )
        #: learned correction store; None unless ``config.learned_enabled``
        self.corrections: Optional[CorrectionStore] = None
        if self.config.learned_enabled:
            self.corrections = CorrectionStore(
                model=self.config.learned_model,
                capacity=self.config.learned_capacity,
                decay=self.config.learned_decay,
                max_factor=self.config.learned_max_factor,
                metrics=self.metrics,
            )
        self._optimizer = Optimizer(
            database, cache=self.plan_cache, corrections=self.corrections
        )
        self._executor = Executor(database)
        #: execution-feedback store + policy; None unless
        #: ``config.feedback_enabled`` (the default keeps the service
        #: byte-identical to its pre-feedback behaviour)
        self.feedback: Optional[FeedbackStore] = None
        self.feedback_policy: Optional[FeedbackPolicy] = None
        if self.config.feedback_enabled:
            self.feedback = FeedbackStore(
                capacity=self.config.feedback_capacity,
                metrics=self.metrics,
            )
            self.feedback_policy = FeedbackPolicy(
                self.feedback,
                refresh_policy=self.config.refresh_policy,
                refresh_threshold=self.config.qerror_refresh_threshold,
                retune_threshold=self.config.qerror_retune_threshold,
            )
        self._seq = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._created_lock = threading.Lock()
        self._created_off_path: List[StatKey] = []
        self._log: Optional[CaptureLog] = None
        self._workers: List[AdvisorWorker] = []
        self._monitor: Optional[StalenessMonitor] = None
        #: guards the started flag only; never held across thread
        #: starts/joins or any other lock
        self._state_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "StatsService":
        """Start the capture log, advisor workers, and staleness monitor."""
        with self._state_lock:
            if self._started:
                raise ServiceError("service already started")
            self._started = True
        try:
            self._start_components()
        except BaseException:
            with self._state_lock:
                self._started = False
            raise
        return self

    def _start_components(self) -> None:
        cfg = self.config
        self._log = CaptureLog(cfg.capture_capacity)
        self._workers = [
            AdvisorWorker(
                index,
                self.database,
                self._log,
                self.metrics,
                self.db_lock,
                creation_policy=cfg.creation_policy,
                mnsa_config=self.mnsa_config,
                batch_size=cfg.advisor_batch_size,
                poll_seconds=cfg.advisor_poll_seconds,
                on_created=self._note_created,
                cache=self.plan_cache,
                feedback_policy=self.feedback_policy,
                corrections=self.corrections,
            )
            for index in range(cfg.advisor_workers)
        ]
        self._monitor = StalenessMonitor(
            self.database,
            self.metrics,
            self.db_lock,
            fraction=cfg.staleness_fraction,
            poll_seconds=cfg.staleness_poll_seconds,
            budget_per_cycle=cfg.refresh_budget_per_cycle,
            purge_drop_list=cfg.purge_drop_list_before_refresh,
            policy=self.feedback_policy,
            corrections=self.corrections,
        )
        for worker in self._workers:
            worker.start()
        self._monitor.start()
        self.metrics.gauge("service.workers", len(self._workers))

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every captured event has been processed.

        Returns True when the capture log fully drained, False if
        ``timeout`` expired first.  With no advisor workers configured
        (capture-only mode) nothing will ever drain the log, so this
        returns True immediately instead of blocking forever.
        """
        self._require_started()
        if not self._workers:
            return True
        return self._log.join(timeout)

    def stop(
        self, drain: bool = True, timeout: Optional[float] = 30.0
    ) -> None:
        """Shut the service down.

        With ``drain=True`` (the default) waits for the advisor backlog to
        empty and runs one final staleness pass, so counters accumulated
        late in the workload still trigger their refresh; with
        ``drain=False`` pending capture events are abandoned.
        """
        with self._state_lock:
            if not self._started:
                return
            self._started = False
        drained = True
        if drain and self._workers:
            drained = self._log.join(timeout)
        self._log.close()
        for worker in self._workers:
            worker.join(timeout)
        self._monitor.stop(timeout)
        if drain and drained:
            self._monitor.run_once()
        self._refresh_gauges()

    def __enter__(self) -> "StatsService":
        if not self.started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def started(self) -> bool:
        with self._state_lock:
            return self._started

    # ------------------------------------------------------------------
    # the submit path
    # ------------------------------------------------------------------

    def session(self) -> Session:
        """Open a new client session."""
        self._require_started()
        self.metrics.inc("service.sessions")
        return Session(self, next(self._session_ids))

    def submit(self, sql: str):
        """Parse, bind, and execute one SQL statement."""
        statement = parse_and_bind(sql, self.database.schema)
        return self.submit_statement(statement)

    def submit_statement(
        self, statement
    ) -> Union[ExecutionResult, OptimizationResult, int]:
        """Execute one bound statement with currently visible statistics.

        Queries return their :class:`ExecutionResult` (or the
        :class:`OptimizationResult` when ``execute_queries=False``); DML
        returns the affected row count.  The advisor never runs inline —
        queries only leave an event in the capture log.
        """
        self._require_started()
        if isinstance(statement, Query):
            return self._submit_query(statement)
        if isinstance(statement, DmlStatement):
            return self._submit_dml(statement)
        raise ServiceError(
            f"cannot execute statement of type {type(statement).__name__}"
        )

    def _submit_query(self, query: Query):
        with self.metrics.timer("service.query"):
            with self.db_lock:
                optimized = self._optimizer.optimize(query)
                missing = self._optimizer.magic_variables(query)
                executed = None
                if self.config.execute_queries:
                    executed = self._executor.execute(
                        optimized.plan, query, feedback=self.feedback
                    )
                stats_epoch = self.database.stats.epoch
        retune = False
        worst = 1.0
        if executed is not None and self.corrections is not None:
            self.corrections.observe_all(executed.operator_observations)
        if executed is not None and self.feedback_policy is not None:
            worst = worst_plan_q_error(executed.operator_observations)
            retune = self.feedback_policy.should_retune(
                worst, optimized.signature, stats_epoch
            )
            if retune:
                self.metrics.inc("feedback.retunes_requested")
        event = QueryEvent(
            seq=next(self._seq),
            query=query,
            estimated_cost=optimized.cost,
            magic_variable_count=len(missing),
            tables=tuple(query.tables),
            retune=retune,
            worst_q_error=worst,
        )
        accepted = self._log.append(event)
        self.metrics.inc("capture.events")
        if not accepted:
            self.metrics.inc("capture.evicted")
        self.metrics.gauge("capture.depth", len(self._log))
        self.metrics.inc("service.queries")
        if executed is not None:
            self.metrics.inc("service.execution_cost", executed.actual_cost)
            return executed
        return optimized

    def _submit_dml(self, statement: DmlStatement) -> int:
        with self.metrics.timer("service.dml"):
            with self.db_lock:
                affected = apply_dml(self.database, statement)
        self.metrics.inc("service.dml_statements")
        self.metrics.inc("service.rows_modified", affected)
        return affected

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def created_off_path(self) -> List[StatKey]:
        """Statistics created by the background advisor workers."""
        with self._created_lock:
            return list(self._created_off_path)

    def worker_errors(self) -> List[BaseException]:
        """Exceptions swallowed by workers/monitor to stay alive."""
        errors: List[BaseException] = []
        for worker in self._workers:
            errors.extend(worker.errors)
        if self._monitor is not None:
            errors.extend(self._monitor.errors)
        return errors

    def metrics_text(self) -> str:
        """The final metrics dump (refreshes gauges first)."""
        self._refresh_gauges()
        return self.metrics.render()

    # ------------------------------------------------------------------

    def _note_created(self, keys: List[StatKey]) -> None:
        with self._created_lock:
            for key in keys:
                if key not in self._created_off_path:
                    self._created_off_path.append(key)

    def _refresh_gauges(self) -> None:
        stats = self.database.stats
        self.metrics.gauge("stats.visible", len(stats.visible_keys()))
        self.metrics.gauge("stats.drop_listed", len(stats.drop_list()))
        self.metrics.gauge("stats.physical", len(stats.keys()))
        if self._log is not None:
            self.metrics.gauge("capture.depth", len(self._log))
            self.metrics.gauge("capture.dropped", self._log.dropped)

    def _require_started(self) -> None:
        if not self.started:
            raise ServiceError(
                "service is not running; call start() first "
                "(or use it as a context manager)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.started else "stopped"
        return (
            f"StatsService({self.database.name!r}, {state}, "
            f"workers={len(self._workers)})"
        )
