"""The long-running statistics-management service.

:class:`StatsService` is the online counterpart of
:class:`~repro.core.advisor.StatisticsAdvisor`: where the advisor runs the
paper's Sec 6 regime *inline* (every query pays for its own sensitivity
analysis before executing), the service runs it *asynchronously*:

* many client threads call :meth:`StatsService.submit` with a typed
  :class:`~repro.service.api.ServiceRequest` (or open a
  :class:`Session`); queries execute immediately with whatever statistics
  are currently visible;
* every query leaves a :class:`~repro.service.events.QueryEvent` in its
  shard's bounded capture log;
* background :class:`~repro.service.worker.AdvisorWorker` threads drain
  the logs and run MNSA / MNSA-D, creating and drop-listing statistics;
* per-shard :class:`~repro.service.monitor.StalenessMonitor` threads
  watch the row-modification counters of the tables they own and refresh
  under a cost budget;
* a :class:`~repro.service.metrics.MetricsRegistry` counts everything.

Concurrency model: the service is **sharded by table**.  Each
:class:`ServiceShard` owns a statement lock, a capture-log segment, its
advisor workers, and a staleness monitor for the tables the shared
:class:`~repro.stats.router.ShardRouter` routes to it.  A request
touching tables of a single shard takes only that shard's statement lock
(the fast path) — statements on disjoint shards never serialize against
each other.  A cross-shard request takes every involved shard's
statement lock in the router's canonical ascending order, the one order
every multi-shard path in the system uses, so no acquisition cycle (and
hence no deadlock) is possible.  ``shards=1`` collapses to the historic
single-database-lock model exactly.

Admission control (``service_workers > 0``) puts a bounded priority
queue in front of execution: submitters enqueue, a request-worker pool
drains, and past the high-water mark new requests are rejected with
:class:`~repro.errors.ServiceRejectedError` carrying a retry-after hint
instead of queueing without bound.  Per-session token buckets
(``session_rate_limit``) reject a noisy session's overflow before it
reaches the shared queue.  Under advisor backlog
(``degraded_backlog_high``) the service degrades gracefully: queries are
planned with magic-number selectivities only — no statistics locks, no
new capture events — until the backlog recedes past the low-water mark.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from contextlib import ExitStack
from typing import Dict, List, Optional, Tuple, Union

from repro.backends.base import Backend, backend_from_name
from repro.concurrency import guarded_by
from repro.config import ServiceConfig
from repro.core.mnsa import MnsaConfig
from repro.errors import (
    ReproDeprecationWarning,
    ServiceError,
    ServiceRejectedError,
)
from repro.executor.dml import apply_dml
from repro.executor.executor import ExecutionResult, Executor
from repro.feedback import FeedbackPolicy, FeedbackStore, worst_plan_q_error
from repro.learned import CorrectionStore
from repro.optimizer.cache import OptimizationRequest, PlanCache
from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.service.admission import AdmissionQueue, TokenBucket
from repro.service.api import ServiceRequest, ServiceResponse
from repro.service.events import CaptureLog, QueryEvent
from repro.service.metrics import MetricsRegistry
from repro.service.monitor import StalenessMonitor
from repro.service.worker import AdvisorWorker
from repro.sql.binder import parse_and_bind
from repro.sql.query import DmlStatement, Query
from repro.stats.statistic import StatKey


class Session:
    """One client connection to a :class:`StatsService`.

    Sessions are cheap handles: they parse SQL against the service's
    schema, stamp their id (and tenant) onto the
    :class:`~repro.service.api.ServiceRequest` they build, and keep
    per-session counters.  Any number of sessions may submit
    concurrently from their own threads; the counters take the
    session's own lock, so two tenants' sessions never contend on
    shared state.
    """

    _statements = guarded_by("_lock")
    _queries = guarded_by("_lock")
    _dml = guarded_by("_lock")

    def __init__(
        self,
        service: "StatsService",
        session_id: int,
        rate_limiter: Optional[TokenBucket] = None,
        tenant: Optional[str] = None,
    ) -> None:
        self._service = service
        self.session_id = session_id
        self.tenant = tenant
        self.limiter = rate_limiter
        self._lock = threading.Lock()
        self._statements = 0
        self._queries = 0
        self._dml = 0

    @property
    def statements(self) -> int:
        with self._lock:
            return self._statements

    @property
    def queries(self) -> int:
        with self._lock:
            return self._queries

    @property
    def dml(self) -> int:
        with self._lock:
            return self._dml

    def submit(self, sql: str):
        """Parse, bind, and execute one SQL statement (returns the result)."""
        statement = parse_and_bind(sql, self._service.database.schema)
        return self.submit_statement(statement)

    def submit_statement(self, statement):
        """Execute an already-bound statement through the service."""
        return self.submit_request(statement).result

    def submit_request(
        self, statement, priority: int = 0
    ) -> ServiceResponse:
        """Submit a statement and return the full typed response.

        ``statement`` may be a bound :class:`~repro.sql.query.Query`, an
        :class:`~repro.optimizer.cache.OptimizationRequest`, or a
        :class:`~repro.sql.query.DmlStatement`; the session stamps its
        id and tenant onto the request.
        """
        request = ServiceRequest(
            statement,
            session_id=self.session_id,
            tenant=self.tenant,
            priority=priority,
        )
        response = self._service.submit(request)
        with self._lock:
            self._statements += 1
            if request.is_query:
                self._queries += 1
            else:
                self._dml += 1
        return response

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Session(id={self.session_id}, statements={self.statements})"
        )


class _SessionSlot:
    """One bucket of the sharded session registry.

    The registry exists for per-session admission state (the rate
    limiter); sharding it into slots keyed by ``session_id % slots``
    means concurrent submitters from different sessions almost never
    touch the same lock.
    """

    _sessions = guarded_by("_lock")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: Dict[int, Session] = {}

    def register(self, session: Session) -> None:
        with self._lock:
            self._sessions[session.session_id] = session

    def get(self, session_id: int) -> Optional[Session]:
        with self._lock:
            return self._sessions.get(session_id)


class ServiceShard:
    """One service shard: the unit of statement-level isolation.

    A shard owns the statement lock, capture-log segment, advisor
    workers, and staleness monitor for the tables the router assigns to
    it.  The lock is created eagerly (requests may route before
    ``start``); the log and threads are created when the service starts.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.statement_lock = threading.RLock()
        self.log: Optional[CaptureLog] = None
        self.workers: List[AdvisorWorker] = []
        self.monitor: Optional[StalenessMonitor] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        depth = 0 if self.log is None else len(self.log)
        return (
            f"ServiceShard(id={self.shard_id}, "
            f"workers={len(self.workers)}, backlog={depth})"
        )


class _RequestWorker(threading.Thread):
    """One request-worker thread draining the admission queue."""

    def __init__(
        self, index: int, service: "StatsService", queue: AdmissionQueue
    ) -> None:
        super().__init__(name=f"stats-request-{index}", daemon=True)
        self._service = service
        self._queue = queue

    def run(self) -> None:
        while True:
            ticket = self._queue.take(timeout=0.05)
            if ticket is None:
                if self._queue.closed and self._queue.depth == 0:
                    return
                continue
            wait = time.perf_counter() - ticket.enqueued_at
            try:
                response = self._service._dispatch(
                    ticket.request, queue_wait=wait
                )
            except BaseException as exc:  # propagate to the submitter
                ticket.fail(exc)
            else:
                ticket.resolve(response)


class StatsService:
    """A concurrent, self-tuning statistics-management daemon.

    Args:
        database: the database to serve and manage statistics for.
        config: service knobs (see :class:`repro.config.ServiceConfig`).
        mnsa_config: analysis knobs handed to the advisor workers.
    """

    _created_off_path = guarded_by("_created_lock")
    _started = guarded_by("_state_lock")
    _degraded = guarded_by("_degraded_lock")

    def __init__(
        self,
        database,
        config: Optional[ServiceConfig] = None,
        mnsa_config: Optional[MnsaConfig] = None,
    ) -> None:
        self.database = database
        self.config = config or ServiceConfig()
        self.mnsa_config = mnsa_config or MnsaConfig()
        self.metrics = MetricsRegistry()
        # Partition the statistics state to match the service shards:
        # every layer answers "the shard of table T" from this router.
        database.stats.reshard(self.config.shards)
        self._router = database.stats.router
        self._shards = [
            ServiceShard(shard_id) for shard_id in range(self.config.shards)
        ]
        #: shared statistics-aware plan cache (sessions + advisor workers);
        #: None when ``plan_cache_size`` is 0
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(self.config.plan_cache_size, metrics=self.metrics)
            if self.config.plan_cache_size > 0
            else None
        )
        #: learned correction store; None unless ``config.learned_enabled``
        self.corrections: Optional[CorrectionStore] = None
        if self.config.learned_enabled:
            self.corrections = CorrectionStore(
                model=self.config.learned_model,
                capacity=self.config.learned_capacity,
                decay=self.config.learned_decay,
                max_factor=self.config.learned_max_factor,
                metrics=self.metrics,
            )
        self._optimizer = Optimizer(
            database, cache=self.plan_cache, corrections=self.corrections
        )
        self._executor = Executor(database)
        #: the engine advisor analyses run against.  ``None`` for the
        #: default ``"memory"`` backend (each worker builds its own
        #: MemoryBackend so optimizer call counts attribute per worker);
        #: otherwise one shared foreign engine — analyses are serialized
        #: by the statement locks, DML is replayed into it on the DML
        #: path, and workers mirror its decisions into ``database.stats``.
        self._analysis_backend: Optional[Backend] = None
        if self.config.backend != "memory":
            self._analysis_backend = backend_from_name(
                self.config.backend, database
            )
        #: execution-feedback store + policy; None unless
        #: ``config.feedback_enabled`` (the default keeps the service
        #: byte-identical to its pre-feedback behaviour)
        self.feedback: Optional[FeedbackStore] = None
        self.feedback_policy: Optional[FeedbackPolicy] = None
        if self.config.feedback_enabled:
            self.feedback = FeedbackStore(
                capacity=self.config.feedback_capacity,
                metrics=self.metrics,
            )
            self.feedback_policy = FeedbackPolicy(
                self.feedback,
                refresh_policy=self.config.refresh_policy,
                refresh_threshold=self.config.qerror_refresh_threshold,
                retune_threshold=self.config.qerror_retune_threshold,
            )
        self._seq = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._session_slots: Tuple[_SessionSlot, ...] = tuple(
            _SessionSlot() for _ in range(self.config.shards)
        )
        self._created_lock = threading.Lock()
        self._created_off_path: List[StatKey] = []
        self._queue: Optional[AdmissionQueue] = None
        self._request_workers: List[_RequestWorker] = []
        #: guards the degradation hysteresis flag only
        self._degraded_lock = threading.Lock()
        self._degraded = False
        #: guards the started flag only; never held across thread
        #: starts/joins or any other lock
        self._state_lock = threading.Lock()
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "StatsService":
        """Start the capture logs, worker threads, and monitors."""
        with self._state_lock:
            if self._started:
                raise ServiceError("service already started")
            self._started = True
        try:
            self._start_components()
        except BaseException:
            with self._state_lock:
                self._started = False
            raise
        return self

    def _start_components(self) -> None:
        cfg = self.config
        statement_locks = [s.statement_lock for s in self._shards]
        for shard in self._shards:
            shard.log = CaptureLog(cfg.capture_capacity)
            shard.workers = [
                AdvisorWorker(
                    index,
                    self.database,
                    shard.log,
                    self.metrics,
                    shard.statement_lock,
                    creation_policy=cfg.creation_policy,
                    mnsa_config=self.mnsa_config,
                    batch_size=cfg.advisor_batch_size,
                    poll_seconds=cfg.advisor_poll_seconds,
                    on_created=self._note_created,
                    cache=self.plan_cache,
                    feedback_policy=self.feedback_policy,
                    corrections=self.corrections,
                    router=self._router,
                    statement_locks=statement_locks,
                    shard_id=shard.shard_id,
                    backend=self._analysis_backend,
                )
                for index in range(cfg.advisor_workers)
            ]
            shard.monitor = StalenessMonitor(
                self.database,
                self.metrics,
                shard.statement_lock,
                fraction=cfg.staleness_fraction,
                poll_seconds=cfg.staleness_poll_seconds,
                budget_per_cycle=cfg.refresh_budget_per_cycle,
                purge_drop_list=cfg.purge_drop_list_before_refresh,
                policy=self.feedback_policy,
                corrections=self.corrections,
                router=self._router,
                shard_id=shard.shard_id,
                starvation_cycles=cfg.starvation_cycles,
            )
        for shard in self._shards:
            for worker in shard.workers:
                worker.start()
            shard.monitor.start()
        if cfg.service_workers > 0:
            self._queue = AdmissionQueue(
                cfg.queue_capacity,
                cfg.queue_high_water,
                retry_after=cfg.retry_after_seconds,
            )
            self._request_workers = [
                _RequestWorker(index, self, self._queue)
                for index in range(cfg.service_workers)
            ]
            for worker in self._request_workers:
                worker.start()
        self.metrics.gauge("service.shards", len(self._shards))
        self.metrics.gauge(
            "service.workers",
            sum(len(shard.workers) for shard in self._shards),
        )
        self.metrics.gauge(
            "service.request_workers", len(self._request_workers)
        )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every captured event has been processed.

        Returns True when every shard's capture log fully drained, False
        if ``timeout`` expired first.  With no advisor workers configured
        (capture-only mode) nothing will ever drain the logs, so this
        returns True immediately instead of blocking forever.
        """
        self._require_started()
        drained = True
        for shard in self._shards:
            if not shard.workers:
                continue
            drained = shard.log.join(timeout) and drained
        return drained

    def stop(
        self, drain: bool = True, timeout: Optional[float] = 30.0
    ) -> None:
        """Shut the service down.

        The admission queue closes first — stranded submitters get a
        :class:`~repro.errors.ServiceError` instead of blocking forever.
        With ``drain=True`` (the default) waits for the advisor backlog
        to empty and runs one final staleness pass per shard, so counters
        accumulated late in the workload still trigger their refresh;
        with ``drain=False`` pending capture events are abandoned.
        """
        with self._state_lock:
            if not self._started:
                return
            self._started = False
        if self._queue is not None:
            for ticket in self._queue.close():
                ticket.fail(
                    ServiceError("service stopped before the request ran")
                )
            for worker in self._request_workers:
                worker.join(timeout)
        drained = True
        if drain:
            for shard in self._shards:
                if shard.workers and shard.log is not None:
                    drained = shard.log.join(timeout) and drained
        for shard in self._shards:
            if shard.log is not None:
                shard.log.close()
        for shard in self._shards:
            for worker in shard.workers:
                worker.join(timeout)
            if shard.monitor is not None:
                shard.monitor.stop(timeout)
        if drain and drained:
            for shard in self._shards:
                if shard.monitor is not None:
                    shard.monitor.run_once()
        self._refresh_gauges()

    def __enter__(self) -> "StatsService":
        if not self.started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    @property
    def started(self) -> bool:
        with self._state_lock:
            return self._started

    # ------------------------------------------------------------------
    # the submit path
    # ------------------------------------------------------------------

    def session(self, tenant: Optional[str] = None) -> Session:
        """Open a new client session (optionally tagged with a tenant)."""
        self._require_started()
        limiter = None
        if self.config.session_rate_limit is not None:
            limiter = TokenBucket(
                self.config.session_rate_limit,
                self.config.session_rate_burst,
                retry_after_floor=self.config.retry_after_seconds,
            )
        session = Session(
            self, next(self._session_ids), rate_limiter=limiter,
            tenant=tenant,
        )
        slot = self._session_slots[
            session.session_id % len(self._session_slots)
        ]
        slot.register(session)
        self.metrics.inc("service.sessions")
        return session

    def submit(
        self, request: Union[ServiceRequest, str]
    ) -> ServiceResponse:
        """Submit one :class:`~repro.service.api.ServiceRequest`.

        The canonical entry point: routes the request to its shard(s),
        applies admission control (queueing, rate limits, degradation),
        and returns a :class:`~repro.service.api.ServiceResponse`.

        Passing raw SQL text is **deprecated** (it parses, executes, and
        returns the bare result for backward compatibility) — parse with
        a :class:`Session` or build a ``ServiceRequest`` explicitly.

        Raises:
            ServiceRejectedError: the admission queue is past its
                high-water mark, or the session exceeded its rate limit;
                retry after ``exc.retry_after`` seconds.
        """
        self._require_started()
        if isinstance(request, str):
            warnings.warn(
                "StatsService.submit(sql_text) is deprecated; open a "
                "Session (Session.submit parses for you) or build a "
                "ServiceRequest from a bound statement",
                ReproDeprecationWarning,
                stacklevel=2,
            )
            statement = parse_and_bind(request, self.database.schema)
            return self.submit(ServiceRequest(statement)).result
        if not isinstance(request, ServiceRequest):
            raise ServiceError(
                "StatsService.submit takes a ServiceRequest, got "
                f"{type(request).__name__} (wrap bound statements in a "
                "ServiceRequest, or use Session.submit_statement)"
            )
        if request.session_id is not None:
            self._rate_check(request.session_id)
        if self._queue is not None:
            try:
                ticket = self._queue.admit(request, request.priority)
            except ServiceRejectedError:
                self.metrics.inc("service.queue.rejected")
                self.metrics.gauge("service.queue.depth", self._queue.depth)
                raise
            self.metrics.inc("service.queue.admitted")
            self.metrics.gauge("service.queue.depth", self._queue.depth)
            return ticket.wait()
        return self._dispatch(request, queue_wait=0.0)

    def submit_statement(
        self, statement
    ) -> Union[ExecutionResult, OptimizationResult, int]:
        """Execute one bound statement (deprecated entry point).

        Deprecated: wrap the statement in a
        :class:`~repro.service.api.ServiceRequest` and call
        :meth:`submit`, or use :meth:`Session.submit_statement`.
        """
        warnings.warn(
            "StatsService.submit_statement is deprecated; wrap the "
            "statement in a ServiceRequest and call submit(), or use "
            "Session.submit_statement",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        self._require_started()
        return self.submit(ServiceRequest(statement)).result

    # ------------------------------------------------------------------
    # request execution (called by submit or by a request worker)
    # ------------------------------------------------------------------

    def _rate_check(self, session_id: int) -> None:
        slot = self._session_slots[session_id % len(self._session_slots)]
        session = slot.get(session_id)
        if session is None or session.limiter is None:
            return
        try:
            session.limiter.acquire()
        except ServiceRejectedError:
            self.metrics.inc("service.rate_limited")
            raise

    def _dispatch(
        self, request: ServiceRequest, queue_wait: float
    ) -> ServiceResponse:
        if queue_wait:
            self.metrics.inc("service.queue.wait_seconds", queue_wait)
        if request.is_query:
            return self._serve_query(request, queue_wait)
        return self._serve_dml(request, queue_wait)

    def _serve_query(
        self, request: ServiceRequest, queue_wait: float
    ) -> ServiceResponse:
        opt_request: OptimizationRequest = request.statement
        query = opt_request.query
        if not opt_request.degraded and self._degradation_active():
            opt_request = OptimizationRequest(
                query,
                opt_request.overrides,
                opt_request.ignore,
                learned=opt_request.learned,
                degraded=True,
            )
        degraded = opt_request.degraded
        shard_ids = self._router.shard_ids_for(query.tables)
        with self.metrics.timer("service.query"):
            # Canonical ascending shard order (see ShardRouter): the
            # only multi-lock acquisition order in the system.
            with ExitStack() as stack:
                for shard_id in shard_ids:
                    stack.enter_context(
                        self._shards[shard_id].statement_lock
                    )
                optimized = self._optimizer.optimize_request(opt_request)
                missing = (
                    ()
                    if degraded
                    else self._optimizer.magic_variables(query)
                )
                executed = None
                if self.config.execute_queries:
                    executed = self._executor.execute(
                        optimized.plan, query, feedback=self.feedback
                    )
                stats_epoch = self.database.stats.epoch_for_tables(
                    query.tables
                )
        if len(shard_ids) == 1:
            self.metrics.inc("service.shard.single")
        else:
            self.metrics.inc("service.shard.multi")
        retune = False
        worst = 1.0
        if executed is not None and self.corrections is not None:
            self.corrections.observe_all(executed.operator_observations)
        if (
            not degraded
            and executed is not None
            and self.feedback_policy is not None
        ):
            worst = worst_plan_q_error(executed.operator_observations)
            retune = self.feedback_policy.should_retune(
                worst, optimized.signature, stats_epoch
            )
            if retune:
                self.metrics.inc("feedback.retunes_requested")
        if degraded:
            # A degraded plan consulted no statistics, so it carries no
            # signal for the advisor — and feeding the backlog is
            # exactly what degradation is avoiding.
            self.metrics.inc("service.degraded")
        else:
            event = QueryEvent(
                seq=next(self._seq),
                query=query,
                estimated_cost=optimized.cost,
                magic_variable_count=len(missing),
                tables=tuple(query.tables),
                retune=retune,
                worst_q_error=worst,
            )
            log = self._shards[shard_ids[0]].log
            accepted = log.append(event)
            self.metrics.inc("capture.events")
            if not accepted:
                self.metrics.inc("capture.evicted")
            self.metrics.gauge("capture.depth", self._capture_backlog())
        self.metrics.inc("service.queries")
        result: Union[ExecutionResult, OptimizationResult] = optimized
        if executed is not None:
            self.metrics.inc("service.execution_cost", executed.actual_cost)
            result = executed
        return ServiceResponse(
            result=result,
            shard_ids=shard_ids,
            degraded=degraded,
            queue_wait_seconds=queue_wait,
            session_id=request.session_id,
            tenant=request.tenant,
        )

    def _serve_dml(
        self, request: ServiceRequest, queue_wait: float
    ) -> ServiceResponse:
        statement: DmlStatement = request.statement
        shard_id = self._router.shard_of(statement.table)
        with self.metrics.timer("service.dml"):
            with self._shards[shard_id].statement_lock:
                affected = apply_dml(self.database, statement)
                if self._analysis_backend is not None:
                    # keep the foreign analysis engine's data in step
                    self._analysis_backend.execute(statement)
        self.metrics.inc("service.dml_statements")
        self.metrics.inc("service.rows_modified", affected)
        return ServiceResponse(
            result=affected,
            shard_ids=(shard_id,),
            degraded=False,
            queue_wait_seconds=queue_wait,
            session_id=request.session_id,
            tenant=request.tenant,
        )

    def _capture_backlog(self) -> int:
        return sum(
            len(shard.log)
            for shard in self._shards
            if shard.log is not None
        )

    def _degradation_active(self) -> bool:
        """Hysteresis: engage at the high water, release at the low."""
        high = self.config.degraded_backlog_high
        if high is None:
            return False
        backlog = self._capture_backlog()
        with self._degraded_lock:
            if self._degraded:
                if backlog <= self.config.degraded_backlog_low:
                    self._degraded = False
            elif backlog >= high:
                self._degraded = True
            active = self._degraded
        self.metrics.gauge("service.degraded_active", 1 if active else 0)
        return active

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def shards(self) -> Tuple[ServiceShard, ...]:
        """The service shards (the list itself is immutable)."""
        return tuple(self._shards)

    @property
    def router(self):
        """The shared table -> shard router."""
        return self._router

    @property
    def analysis_backend(self) -> Optional[Backend]:
        """The shared foreign analysis engine (None for ``"memory"``)."""
        return self._analysis_backend

    @property
    def queue_depth(self) -> int:
        """Current admission-queue depth (0 on the synchronous path)."""
        return 0 if self._queue is None else self._queue.depth

    @property
    def created_off_path(self) -> List[StatKey]:
        """Statistics created by the background advisor workers."""
        with self._created_lock:
            return list(self._created_off_path)

    def worker_errors(self) -> List[BaseException]:
        """Exceptions swallowed by workers/monitors to stay alive."""
        errors: List[BaseException] = []
        for shard in self._shards:
            for worker in shard.workers:
                errors.extend(worker.errors)
            if shard.monitor is not None:
                errors.extend(shard.monitor.errors)
        return errors

    def metrics_text(self) -> str:
        """The final metrics dump (refreshes gauges first)."""
        self._refresh_gauges()
        return self.metrics.render()

    # ------------------------------------------------------------------

    def _note_created(self, keys: List[StatKey]) -> None:
        with self._created_lock:
            for key in keys:
                if key not in self._created_off_path:
                    self._created_off_path.append(key)

    def _refresh_gauges(self) -> None:
        stats = self.database.stats
        self.metrics.gauge("stats.visible", len(stats.visible_keys()))
        self.metrics.gauge("stats.drop_listed", len(stats.drop_list()))
        self.metrics.gauge("stats.physical", len(stats.keys()))
        if any(shard.log is not None for shard in self._shards):
            self.metrics.gauge("capture.depth", self._capture_backlog())
            self.metrics.gauge(
                "capture.dropped",
                sum(
                    shard.log.dropped
                    for shard in self._shards
                    if shard.log is not None
                ),
            )

    def _require_started(self) -> None:
        if not self.started:
            raise ServiceError(
                "service is not running; call start() first "
                "(or use it as a context manager)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.started else "stopped"
        workers = sum(len(shard.workers) for shard in self._shards)
        return (
            f"StatsService({self.database.name!r}, {state}, "
            f"shards={len(self._shards)}, workers={workers})"
        )
