"""Canonical registry of every metric name the repo may emit.

Lint rule **R007** (:mod:`repro.analysis.rules.metrics_registry`)
cross-checks each string reaching :class:`~repro.service.metrics.
MetricsRegistry` ``inc``/``gauge``/``timer`` — directly or through a
wrapper parameter — against this mapping, so a typo'd or undocumented
metric name fails ``repro lint`` instead of silently fragmenting a
dashboard.  Names follow the ``<component>.<name>`` dotted grammar
(lower-case ``[a-z][a-z0-9_]*`` segments, at least one dot).

Timer base names (``service.query``, ``service.dml``, ``advisor.seconds``
when used via :meth:`~repro.service.metrics.MetricsRegistry.timer`)
register the *base*; the derived ``<base>_seconds`` / ``<base>_count``
counters the registry synthesizes at runtime are implied and must not be
listed separately.

Adding a metric?  Add the row here in sorted order with a one-line
description (see the CONTRIBUTING.md pre-PR checklist).
"""

from typing import Dict

#: metric name -> one-line description (R007's source of truth)
METRICS: Dict[str, str] = {
    "advisor.creation_cost": "statistics creation cost spent by advisor workers",
    "advisor.errors": "exceptions raised while processing capture events",
    "advisor.events": "capture-log events processed by advisor workers",
    "advisor.optimizer_calls": "optimizer invocations made during advisor analysis",
    "advisor.retune_rebuilds": "statistics rebuilt while serving re-tune requests",
    "advisor.retunes": "feedback re-tune events processed",
    "advisor.seconds": "wall time spent in advisor analysis (timer base)",
    "advisor.skipped": "capture events skipped as not analyzable",
    "advisor.stats_created": "statistics created by advisor decisions",
    "advisor.stats_drop_listed": "statistics moved to the drop list by MNSA/D",
    "backend.analyses": "advisor analyses run against a foreign (non-memory) backend",
    "backend.mirrored_creates": "foreign-backend created statistics mirrored into database.stats",
    "backend.mirrored_drops": "foreign-backend drop-list decisions mirrored into database.stats",
    "capture.depth": "current capture-log queue depth",
    "capture.dropped": "capture events dropped while the log was closed",
    "capture.events": "query/DML events recorded in the capture log",
    "capture.evicted": "capture events evicted from the ring buffer",
    "correction.evictions": "correction entries evicted by the store's LRU bound",
    "correction.hits": "selectivity estimates adjusted by a learned correction",
    "correction.invalidations": "correction entries dropped by table invalidation",
    "correction.misses": "selectivity estimates with no learned correction",
    "correction.observations": "operator observations folded into correction models",
    "correction.tracked_models": "correction factor entries currently tracked",
    "correction.version": "monotone correction-model version (plan-cache key component)",
    "feedback.evicted": "feedback trackers evicted by the store's LRU bound",
    "feedback.observations": "per-operator execution observations ingested",
    "feedback.retunes_requested": "re-tune requests granted by the feedback policy",
    "feedback.tracked_targets": "feedback targets currently tracked",
    "feedback.worst_q_error": "worst decayed q-error across tracked targets",
    "monitor.backoff_skips": "refreshes skipped while a table is in failure backoff",
    "monitor.cycles": "staleness-monitor cycles completed",
    "monitor.deferred": "due refreshes deferred by the per-cycle budget",
    "monitor.errors": "exceptions raised inside the staleness monitor",
    "monitor.purged": "drop-listed statistics purged after the grace period",
    "monitor.refresh_cost": "total update cost spent on refreshes",
    "monitor.refresh_errors": "statistics refreshes that raised",
    "monitor.refreshes": "statistics refreshes performed",
    "monitor.starved": "due tables whose deferral crossed the starvation bound",
    "monitor.tables_due": "tables found due for refresh in the last cycle",
    "plan_cache.evictions": "plan-cache LRU evictions",
    "plan_cache.hits": "plan-cache hits",
    "plan_cache.misses": "plan-cache misses",
    "plan_cache.revalidations": "stale plan-cache entries revalidated by fingerprint",
    "plan_cache.size": "current plan-cache entry count",
    "service.degraded": "queries planned with magic numbers under advisor backlog",
    "service.degraded_active": "1 while graceful degradation is engaged, else 0",
    "service.dml": "DML statement handling time (timer base)",
    "service.dml_statements": "DML statements applied through sessions",
    "service.execution_cost": "total execution cost of served queries",
    "service.queries": "queries served",
    "service.query": "query handling time (timer base)",
    "service.queue.admitted": "requests admitted to the admission queue",
    "service.queue.depth": "current admission-queue depth",
    "service.queue.rejected": "requests rejected at the queue high-water mark",
    "service.queue.wait_seconds": "total seconds requests spent queued",
    "service.rate_limited": "requests rejected by per-session rate limits",
    "service.request_workers": "request workers draining the admission queue",
    "service.rows_modified": "rows modified by DML statements",
    "service.sessions": "sessions opened against the service",
    "service.shard.multi": "requests that locked more than one service shard",
    "service.shard.single": "requests served on the single-shard fast path",
    "service.shards": "service shards configured",
    "service.workers": "advisor workers currently running",
    "stats.drop_listed": "statistics currently on the drop list",
    "stats.physical": "physical statistics (visible plus drop-listed)",
    "stats.visible": "statistics visible to the optimizer",
}
