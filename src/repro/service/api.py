"""Typed request/response surface of the statistics-management service.

:class:`ServiceRequest` / :class:`ServiceResponse` are the canonical
currency of :meth:`~repro.service.service.StatsService.submit`.  The old
positional entry points (``submit(sql_text)``, ``submit_statement``)
survive as deprecation shims; new code builds a request explicitly —
usually through :meth:`Session.submit`, which fills in the session id —
and gets back a response that says *how* the service handled it: which
shards were locked, whether the plan was degraded, and how long the
request waited in the admission queue.

Both types are frozen: a request can be retried verbatim after a
:class:`~repro.errors.ServiceRejectedError`, and a response can be
shared across threads without copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import ServiceError
from repro.optimizer.cache import OptimizationRequest
from repro.sql.query import DmlStatement, Query


@dataclass(frozen=True)
class ServiceRequest:
    """One unit of work submitted to the service.

    Attributes:
        statement: what to run — an
            :class:`~repro.optimizer.cache.OptimizationRequest` (a bound
            :class:`~repro.sql.query.Query` is accepted and wrapped) or
            a :class:`~repro.sql.query.DmlStatement`.
        session_id: id of the submitting session, for per-session rate
            limiting and bookkeeping; ``None`` means "no session"
            (service-level submission, never rate limited).
        tenant: opaque tenant label carried through to the response;
            the service does not interpret it.
        priority: admission-queue priority class.  Higher drains first;
            within a class the queue is FIFO.
    """

    statement: Union[OptimizationRequest, DmlStatement]
    session_id: Optional[int] = None
    tenant: Optional[str] = None
    priority: int = 0

    def __post_init__(self) -> None:
        statement = self.statement
        if isinstance(statement, Query):
            statement = OptimizationRequest(statement)
            object.__setattr__(self, "statement", statement)
        if not isinstance(statement, (OptimizationRequest, DmlStatement)):
            raise ServiceError(
                "ServiceRequest.statement must be an OptimizationRequest, "
                f"Query, or DmlStatement, got {type(statement).__name__}"
            )

    @property
    def is_query(self) -> bool:
        """True when the statement is a query (vs. DML)."""
        return isinstance(self.statement, OptimizationRequest)


@dataclass(frozen=True)
class ServiceResponse:
    """The outcome of one :class:`ServiceRequest`.

    Attributes:
        result: the :class:`~repro.executor.executor.ExecutionResult`
            (executing service), :class:`OptimizationResult`
            (plan-only service), or rows-modified count (DML).
        shard_ids: ids of the service shards whose statement locks the
            request held, ascending.  A single-element tuple is the
            single-shard fast path.
        degraded: the plan was produced with magic-number selectivities
            only because the advisor backlog crossed the degradation
            threshold (always ``False`` for DML).
        queue_wait_seconds: time spent in the admission queue before a
            worker picked the request up; ``0.0`` on the synchronous
            path.
        session_id: echoed from the request.
        tenant: echoed from the request.
    """

    result: object
    shard_ids: Tuple[int, ...] = ()
    degraded: bool = False
    queue_wait_seconds: float = 0.0
    session_id: Optional[int] = None
    tenant: Optional[str] = field(default=None, compare=False)
