"""The staleness monitor: triggered refresh off the query path.

SQL Server 7.0 refreshes a table's statistics when its row-modification
counter reaches a fraction of the table size (paper Sec 2, Sec 6) — but it
does so *on the query path*.  The service moves the trigger into a
background thread: :class:`StalenessMonitor` periodically asks the
statistics manager which tables are due
(:meth:`~repro.stats.manager.StatisticsManager.tables_needing_refresh`)
and refreshes them under a configurable per-cycle cost budget, so a burst
of DML cannot translate into an unbounded refresh stall.

With a :class:`~repro.feedback.policy.FeedbackPolicy` attached, *what is
due* is decided by observed estimation error instead of (or in addition
to) raw row churn — see :class:`~repro.config.RefreshPolicy`.  A table
whose statistics were just refreshed has its feedback aggregates reset:
the recorded errors described the statistics that no longer exist.

Optionally the monitor purges drop-listed statistics on a table before
refreshing it — the Sec 6 improvement: refreshing statistics the optimizer
will never see is exactly the update overhead the drop-list identifies.
"""

from __future__ import annotations

import math
import threading
import warnings
from typing import Dict, List, Optional, Tuple

from repro.concurrency import guarded_by
from repro.errors import ReproDeprecationWarning
from repro.service.metrics import MetricsRegistry


class StalenessMonitor(threading.Thread):
    """Background thread scheduling statistics refreshes.

    Args:
        database: the shared database.
        metrics: shared metrics registry.
        db_lock: service-wide database lock, held per refresh cycle.
        fraction: staleness trigger — counter >= fraction * rows.
        poll_seconds: sleep between cycles.
        budget_per_cycle: maximum refresh work units per cycle (``None``
            = unbounded); tables beyond the budget are deferred.
        purge_drop_list: physically delete drop-listed statistics on a
            table before refreshing it.
        policy: optional :class:`~repro.feedback.policy.FeedbackPolicy`.
            When given, it decides which tables are due (by q-error,
            churn, or both per its
            :class:`~repro.config.RefreshPolicy`), and a successful
            refresh resets the table's feedback aggregates.
        corrections: optional :class:`~repro.learned.CorrectionStore`.
            A successful refresh invalidates the table's learned
            corrections — a rebuilt histogram starts from
            trust-the-stats.
        update_threshold: deprecated alias for ``fraction``; configure
            :class:`~repro.config.ServiceConfig` (``staleness_fraction``
            and ``refresh_policy``) instead.
        router: optional :class:`~repro.stats.router.ShardRouter`.  With
            ``shard_id`` it scopes the monitor to one service shard: only
            tables routed to that shard are considered due, so each
            shard's monitor refreshes exactly its own tables and no table
            is refreshed twice.
        shard_id: the shard this monitor owns (requires ``router``).
        starvation_cycles: a due table deferred by the budget for this
            many consecutive cycles counts as starved
            (``monitor.starved``).  Deferral is fairness-aware: due
            tables are refreshed longest-waiting first, so under any
            budget that clears at least one table per cycle the counter
            stays at zero.
    """

    _errors = guarded_by("_errors_lock")
    _failed = guarded_by("_db_lock")
    _cycle = guarded_by("_db_lock")
    _waiting = guarded_by("_db_lock")

    def __init__(
        self,
        database,
        metrics: MetricsRegistry,
        db_lock: threading.RLock,
        fraction: float = 0.2,
        poll_seconds: float = 0.25,
        budget_per_cycle: Optional[float] = None,
        purge_drop_list: bool = False,
        policy=None,
        corrections=None,
        update_threshold: Optional[float] = None,
        router=None,
        shard_id: Optional[int] = None,
        starvation_cycles: int = 8,
    ) -> None:
        name = (
            "stats-staleness-monitor"
            if shard_id is None
            else f"stats-staleness-monitor-{shard_id}"
        )
        super().__init__(name=name, daemon=True)
        if update_threshold is not None:
            warnings.warn(
                "StalenessMonitor(update_threshold=...) is deprecated; "
                "pass fraction=..., or configure the service through "
                "ServiceConfig(staleness_fraction=..., refresh_policy=...)",
                ReproDeprecationWarning,
                stacklevel=2,
            )
            fraction = update_threshold
        self._db = database
        self._metrics = metrics
        self._db_lock = db_lock
        self._fraction = fraction
        self._poll_seconds = poll_seconds
        self._budget = (
            math.inf if budget_per_cycle is None else budget_per_cycle
        )
        self._purge = purge_drop_list
        self._policy = policy
        self._corrections = corrections
        self._router = router
        self._shard_id = shard_id
        self._starvation_cycles = starvation_cycles
        self._stop_event = threading.Event()
        self._errors_lock = threading.Lock()
        self._errors: List[BaseException] = []
        #: table -> (failed attempts, first cycle eligible to retry)
        self._failed: Dict[str, Tuple[int, int]] = {}
        #: table -> consecutive cycles spent due-but-deferred
        self._waiting: Dict[str, int] = {}
        self._cycle = 0

    @property
    def errors(self) -> List[BaseException]:
        """Exceptions swallowed to keep the monitor alive (a copy)."""
        with self._errors_lock:
            return list(self._errors)

    def failed_tables(self) -> Dict[str, Tuple[int, int]]:
        """Backoff state: table -> (attempts, next eligible cycle)."""
        with self._db_lock:
            return dict(self._failed)

    # ------------------------------------------------------------------

    def run(self) -> None:
        while not self._stop_event.wait(self._poll_seconds):
            try:
                self.run_once()
            except BaseException as exc:  # keep the monitor alive
                with self._errors_lock:
                    self._errors.append(exc)
                self._metrics.inc("monitor.errors")

    def stop(self, timeout: Optional[float] = None) -> None:
        """Signal the monitor to exit and join it."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout)

    # ------------------------------------------------------------------

    def run_once(self) -> float:
        """One monitor cycle; returns the refresh cost spent.

        Exposed for deterministic tests and for the service's final drain
        pass (so modification counters accumulated late in a workload
        still get their refresh before shutdown).

        A table whose refresh raises is not silently dropped from future
        sweeps: the error is recorded (``errors`` /
        ``monitor.refresh_errors``), the remaining due tables still get
        their refresh this cycle, and the failing table is retried with
        exponential backoff (1, 2, 4, ... cycles) until a refresh
        succeeds.
        """
        spent = 0.0
        with self._db_lock:
            self._cycle += 1
            cycle = self._cycle
            stats = self._db.stats
            due = self._due_tables(stats)
            self._metrics.gauge("monitor.tables_due", len(due))
            # Longest-waiting first: a table deferred by the budget last
            # cycle outranks one that just became due, so a sustained
            # budget cannot starve any single table (name breaks ties
            # for determinism).
            waiting = self._waiting
            due.sort(key=lambda t: (-waiting.get(t, 0), t))
            deferred = 0
            deferred_tables: List[str] = []
            for table in due:
                attempts, eligible = self._failed.get(table, (0, 0))
                if attempts and cycle < eligible:
                    self._metrics.inc("monitor.backoff_skips")
                    continue
                if spent >= self._budget:
                    deferred += 1
                    deferred_tables.append(table)
                    continue
                if self._purge:
                    for key in stats.drop_list():
                        if key.table == table:
                            stats.drop(key)
                            self._metrics.inc("monitor.purged")
                try:
                    cost = stats.refresh_table(table)
                except Exception as exc:
                    with self._errors_lock:
                        self._errors.append(exc)
                    self._metrics.inc("monitor.refresh_errors")
                    self._failed[table] = (
                        attempts + 1,
                        cycle + 2 ** (attempts + 1),
                    )
                    continue
                self._failed.pop(table, None)
                self._waiting.pop(table, None)
                spent += cost
                self._metrics.inc("monitor.refreshes")
                self._metrics.inc("monitor.refresh_cost", cost)
                if self._policy is not None:
                    self._policy.store.reset_table(table)
                if self._corrections is not None:
                    self._corrections.invalidate_table(table)
            if deferred:
                self._metrics.inc("monitor.deferred", deferred)
            starved = 0
            fresh_waits: Dict[str, int] = {}
            for table in deferred_tables:
                waited = self._waiting.get(table, 0) + 1
                fresh_waits[table] = waited
                if waited == self._starvation_cycles:
                    starved += 1
            # Tables no longer due (refreshed, or churn subsided) drop
            # out of the aging map entirely.
            self._waiting = fresh_waits
            if starved:
                self._metrics.inc("monitor.starved", starved)
        self._metrics.inc("monitor.cycles")
        return spent

    def starved_tables(self) -> Dict[str, int]:
        """Aging map: table -> consecutive deferred cycles (a copy)."""
        with self._db_lock:
            return dict(self._waiting)

    def _due_tables(self, stats) -> List[str]:
        if self._policy is not None:
            due = self._policy.tables_due(stats, self._fraction)
        else:
            due = stats.tables_needing_refresh(self._fraction)
        if self._router is not None and self._shard_id is not None:
            due = [
                t for t in due
                if self._router.shard_of(t) == self._shard_id
            ]
        return due
