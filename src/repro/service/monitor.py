"""The staleness monitor: counter-triggered refresh off the query path.

SQL Server 7.0 refreshes a table's statistics when its row-modification
counter reaches a fraction of the table size (paper Sec 2, Sec 6) — but it
does so *on the query path*.  The service moves the trigger into a
background thread: :class:`StalenessMonitor` periodically asks the
statistics manager which tables are due
(:meth:`~repro.stats.manager.StatisticsManager.tables_needing_refresh`)
and refreshes them under a configurable per-cycle cost budget, so a burst
of DML cannot translate into an unbounded refresh stall.

Optionally the monitor purges drop-listed statistics on a table before
refreshing it — the Sec 6 improvement: refreshing statistics the optimizer
will never see is exactly the update overhead the drop-list identifies.
"""

from __future__ import annotations

import math
import threading
from typing import List, Optional

from repro.concurrency import guarded_by
from repro.service.metrics import MetricsRegistry


class StalenessMonitor(threading.Thread):
    """Background thread scheduling statistics refreshes.

    Args:
        database: the shared database.
        metrics: shared metrics registry.
        db_lock: service-wide database lock, held per refresh cycle.
        fraction: staleness trigger — counter >= fraction * rows.
        poll_seconds: sleep between cycles.
        budget_per_cycle: maximum refresh work units per cycle (``None``
            = unbounded); tables beyond the budget are deferred.
        purge_drop_list: physically delete drop-listed statistics on a
            table before refreshing it.
    """

    _errors = guarded_by("_errors_lock")

    def __init__(
        self,
        database,
        metrics: MetricsRegistry,
        db_lock: threading.RLock,
        fraction: float = 0.2,
        poll_seconds: float = 0.25,
        budget_per_cycle: Optional[float] = None,
        purge_drop_list: bool = False,
    ) -> None:
        super().__init__(name="stats-staleness-monitor", daemon=True)
        self._db = database
        self._metrics = metrics
        self._db_lock = db_lock
        self._fraction = fraction
        self._poll_seconds = poll_seconds
        self._budget = (
            math.inf if budget_per_cycle is None else budget_per_cycle
        )
        self._purge = purge_drop_list
        self._stop_event = threading.Event()
        self._errors_lock = threading.Lock()
        self._errors: List[BaseException] = []

    @property
    def errors(self) -> List[BaseException]:
        """Exceptions swallowed to keep the monitor alive (a copy)."""
        with self._errors_lock:
            return list(self._errors)

    # ------------------------------------------------------------------

    def run(self) -> None:
        while not self._stop_event.wait(self._poll_seconds):
            try:
                self.run_once()
            except BaseException as exc:  # keep the monitor alive
                with self._errors_lock:
                    self._errors.append(exc)
                self._metrics.inc("monitor.errors")

    def stop(self, timeout: Optional[float] = None) -> None:
        """Signal the monitor to exit and join it."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout)

    # ------------------------------------------------------------------

    def run_once(self) -> float:
        """One monitor cycle; returns the refresh cost spent.

        Exposed for deterministic tests and for the service's final drain
        pass (so modification counters accumulated late in a workload
        still get their refresh before shutdown).
        """
        spent = 0.0
        with self._db_lock:
            stats = self._db.stats
            due = stats.tables_needing_refresh(self._fraction)
            self._metrics.gauge("monitor.tables_due", len(due))
            for index, table in enumerate(due):
                if spent >= self._budget:
                    self._metrics.inc("monitor.deferred", len(due) - index)
                    break
                if self._purge:
                    for key in stats.drop_list():
                        if key.table == table:
                            stats.drop(key)
                            self._metrics.inc("monitor.purged")
                cost = stats.refresh_table(table)
                spent += cost
                self._metrics.inc("monitor.refreshes")
                self._metrics.inc("monitor.refresh_cost", cost)
        self._metrics.inc("monitor.cycles")
        return spent
