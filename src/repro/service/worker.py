"""Background advisor workers: MNSA / MNSA-D off the query path.

Each :class:`AdvisorWorker` is a daemon thread with its *own*
:class:`~repro.optimizer.Optimizer` (so optimizer call counts attribute
cleanly per worker) draining the shared capture log.  For every captured
query that still had selectivity variables on magic numbers, the worker
runs the configured analysis — MNSA (Sec 4) or MNSA/D (Sec 5.1) — under
the service's database lock, creating or drop-listing statistics without
the foreground session waiting on any of it.
"""

from __future__ import annotations

import threading
import time
from contextlib import ExitStack
from typing import Callable, List, Optional, Tuple

from repro.backends.base import Backend
from repro.backends.memory import MemoryBackend
from repro.concurrency import guarded_by
from repro.core.mnsa import MnsaConfig, mnsa_for_query
from repro.core.mnsad import mnsad_for_query
from repro.optimizer.cache import PlanCache
from repro.optimizer.optimizer import Optimizer
from repro.service.events import CaptureLog, QueryEvent
from repro.service.metrics import MetricsRegistry
from repro.stats.statistic import StatKey


class AdvisorWorker(threading.Thread):
    """One background statistics-advisor thread.

    Args:
        index: worker ordinal, used for the thread name.
        database: the shared database.
        log: capture log to drain.
        metrics: shared metrics registry.
        db_lock: the service-wide database lock; held for the duration of
            each per-query analysis so foreground execution and advisor
            work interleave at statement granularity.
        creation_policy: ``"mnsa"`` or ``"mnsad"``.
        mnsa_config: analysis knobs (epsilon, t, candidate mode).
        batch_size: maximum events drained per wakeup.
        poll_seconds: idle block time waiting for events.
        on_created: optional callback invoked (outside the db lock) with
            the list of statistics a single analysis created.
        cache: optional shared :class:`~repro.optimizer.cache.PlanCache`;
            analysis probes repeated across workers and sessions are
            answered from it instead of re-optimizing.
        feedback_policy: optional
            :class:`~repro.feedback.policy.FeedbackPolicy`.  When given,
            re-tune events (queries whose executed plan was badly
            misestimated) first rebuild the flagged statistics on the
            query's tables, and the analysis breaks candidate ties
            toward the highest-error observed columns.
        corrections: optional :class:`~repro.learned.CorrectionStore`.
            The worker's optimizer plans with it, and a re-tune rebuild
            invalidates the rebuilt table's learned corrections.
        router: optional :class:`~repro.stats.router.ShardRouter`.  With
            ``statement_locks`` it switches the worker to sharded
            locking: each analysis acquires the statement locks of
            *every* shard owning one of the event's tables, in the
            router's canonical ascending order (MNSA's ignore-subset
            probes touch statistics on all of the query's tables, so
            owning only the event's home shard would race cross-shard
            queries).  Without it the worker holds ``db_lock`` as
            before.
        statement_locks: per-shard statement locks, indexed by shard id.
        shard_id: the service shard this worker belongs to (thread
            naming only).
        backend: the :class:`~repro.backends.base.Backend` analyses run
            against.  ``None`` (default) builds a private
            :class:`~repro.backends.memory.MemoryBackend` over
            ``database`` and this worker's optimizer — the historic
            behaviour.  A foreign engine (e.g. ``SqliteBackend``) is
            typically *shared* across workers (analyses are serialized
            by the statement locks anyway) and its creation/drop-list
            decisions are mirrored into ``database.stats`` so the
            refresh/drop policies and foreground sessions see them
            (``backend.*`` metrics count the mirroring).
    """

    _errors = guarded_by("_errors_lock")

    def __init__(
        self,
        index: int,
        database,
        log: CaptureLog,
        metrics: MetricsRegistry,
        db_lock: threading.RLock,
        creation_policy: str = "mnsad",
        mnsa_config: Optional[MnsaConfig] = None,
        batch_size: int = 16,
        poll_seconds: float = 0.05,
        on_created: Optional[Callable[[List[StatKey]], None]] = None,
        cache: Optional[PlanCache] = None,
        feedback_policy=None,
        corrections=None,
        router=None,
        statement_locks: Optional[List[threading.RLock]] = None,
        shard_id: Optional[int] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        name = (
            f"stats-advisor-{index}"
            if shard_id is None
            else f"stats-advisor-{shard_id}-{index}"
        )
        super().__init__(name=name, daemon=True)
        self._router = router
        self._statement_locks = statement_locks
        self._db = database
        self._log = log
        self._metrics = metrics
        self._db_lock = db_lock
        self._policy = creation_policy
        self._config = mnsa_config or MnsaConfig()
        self._batch_size = batch_size
        self._poll_seconds = poll_seconds
        self._on_created = on_created
        self._optimizer = Optimizer(
            database, cache=cache, corrections=corrections
        )
        if backend is None:
            backend = MemoryBackend(database, optimizer=self._optimizer)
        self._backend = backend
        self._mirror = not isinstance(backend, MemoryBackend)
        self._corrections = corrections
        self._feedback_policy = feedback_policy
        self._feedback = (
            feedback_policy.store if feedback_policy is not None else None
        )
        self._errors_lock = threading.Lock()
        self._errors: List[BaseException] = []

    @property
    def errors(self) -> List[BaseException]:
        """Exceptions swallowed to keep the worker alive (a copy)."""
        with self._errors_lock:
            return list(self._errors)

    # ------------------------------------------------------------------

    def run(self) -> None:
        while True:
            batch = self._log.take(self._batch_size, self._poll_seconds)
            if not batch:
                if self._log.closed and not len(self._log):
                    return
                continue
            for event in batch:
                try:
                    self._process(event)
                except BaseException as exc:  # keep the worker alive
                    with self._errors_lock:
                        self._errors.append(exc)
                    self._metrics.inc("advisor.errors")
                finally:
                    self._log.task_done()

    # ------------------------------------------------------------------

    def _process(self, event: QueryEvent) -> None:
        if event.magic_variable_count == 0 and not event.retune:
            # existing statistics already covered every predicate
            self._metrics.inc("advisor.skipped")
            return
        started = time.perf_counter()
        if self._router is not None and self._statement_locks is not None:
            # Sharded locking: hold the statement lock of every shard
            # owning one of the event's tables, in the router's
            # canonical ascending order (the same order every other
            # multi-shard path uses, so no acquisition cycle exists).
            with ExitStack() as stack:
                for sid in self._router.shard_ids_for(event.tables):
                    stack.enter_context(self._statement_locks[sid])
                result, drop_listed = self._analyze(event)
        else:
            with self._db_lock:
                result, drop_listed = self._analyze(event)
        elapsed = time.perf_counter() - started
        self._metrics.inc("advisor.events")
        self._metrics.inc("advisor.seconds", elapsed)
        self._metrics.inc("advisor.optimizer_calls", result.optimizer_calls)
        self._metrics.inc("advisor.creation_cost", result.creation_cost)
        if result.created:
            self._metrics.inc("advisor.stats_created", len(result.created))
        if drop_listed:
            self._metrics.inc(
                "advisor.stats_drop_listed", len(drop_listed)
            )
        if result.created and self._on_created is not None:
            self._on_created(list(result.created))

    def _analyze(self, event: QueryEvent) -> Tuple[object, List[StatKey]]:
        """Run re-tune + MNSA/MNSA-D for one event; caller holds locks."""
        if event.retune and self._feedback_policy is not None:
            self._retune(event)
        if self._policy == "mnsa":
            result = mnsa_for_query(
                self._backend,
                event.query,
                config=self._config,
                feedback=self._feedback,
            )
            drop_listed: List[StatKey] = []
        else:
            result = mnsad_for_query(
                self._backend,
                event.query,
                config=self._config,
                feedback=self._feedback,
            )
            drop_listed = result.dropped
        self._mirror_decisions(result.created, drop_listed)
        return result, drop_listed

    def _mirror_decisions(
        self, created: List[StatKey], drop_listed: List[StatKey]
    ) -> None:
        """Reflect a foreign backend's decisions into ``database.stats``.

        The counter-driven refresh/drop policies and the foreground
        optimizer read the in-memory statistics manager; when analyses
        run on another engine, its created statistics are built there
        too and its drop-listed ones marked droppable.  Runs under the
        analysis locks (called from :meth:`_analyze`).
        """
        if not self._mirror:
            return
        self._metrics.inc("backend.analyses")
        mirrored = 0
        for key in created:
            if not self._db.stats.has(key):
                self._db.stats.create(key)
                mirrored += 1
        if mirrored:
            self._metrics.inc("backend.mirrored_creates", mirrored)
        dropped = 0
        for key in drop_listed:
            if self._db.stats.has(key) and not self._db.stats.is_droppable(
                key
            ):
                self._db.stats.mark_droppable(key)
                dropped += 1
        if dropped:
            self._metrics.inc("backend.mirrored_drops", dropped)

    def _retune(self, event: QueryEvent) -> None:
        """Rebuild the statistics feedback blames for a misestimated plan.

        Runs under the analysis locks, before the regular analysis, so
        the analysis sees the rebuilt statistics.  The rebuilt targets'
        feedback aggregates are reset: the recorded errors belonged to
        the statistics that were just replaced.
        """
        self._metrics.inc("advisor.retunes")
        targets = self._feedback_policy.rebuild_targets(
            self._db.stats, event.tables
        )
        for key, _error in targets:
            self._db.stats.rebuild(key)
            self._feedback.reset_columns(key.table, key.columns)
            if self._corrections is not None:
                self._corrections.invalidate_table(key.table)
            self._metrics.inc("advisor.retune_rebuilds")
