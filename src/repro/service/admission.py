"""Admission control for the service front-end: queue + rate limiter.

Two independent gates stand between a client and a request worker:

* :class:`TokenBucket` — per-session rate limiting.  Each session gets a
  bucket refilled at the configured sustained rate with a bounded burst;
  an empty bucket rejects the request with a precise retry-after (the
  time until one token accumulates) instead of queueing it, so a noisy
  session cannot fill the shared queue.
* :class:`AdmissionQueue` — a bounded priority queue feeding the request
  worker pool.  Past the high-water mark new requests are rejected with
  :class:`~repro.errors.ServiceRejectedError` (backpressure); below it,
  requests drain highest-priority-class first and strictly FIFO within a
  class.

Both reject rather than block: the client owns the retry policy, the
service only promises bounded memory and bounded queueing delay.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.concurrency import guarded_by, protocol
from repro.errors import ServiceError, ServiceRejectedError


class TokenBucket:
    """Classic token-bucket rate limiter with an injectable clock.

    Args:
        rate: sustained token refill rate per second (> 0).
        burst: bucket capacity — requests that may pass back-to-back
            from a full bucket (>= 1).
        retry_after_floor: minimum retry-after hint attached to
            rejections (the computed token-deficit time is used when
            larger).
        clock: monotonic time source; injectable so tests can drive the
            bucket deterministically.
    """

    _tokens = guarded_by("_lock")
    _updated = guarded_by("_lock")
    # R013: the per-session rate gate.  ``operations=`` makes acquire()
    # visible to the typestate walk even through untracked receivers
    # (``session.limiter.acquire()``), feeding the admission queue's
    # consumed-before-enqueue ordering obligation.
    _lifecycle = protocol(
        "token-bucket",
        rule="R013",
        states=("ready",),
        initial="ready",
        operations=("acquire",),
    )

    def __init__(
        self,
        rate: float,
        burst: int,
        retry_after_floor: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServiceError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ServiceError(f"burst must be >= 1, got {burst}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._floor = float(retry_after_floor)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self._burst
        self._updated = self._clock()

    def acquire(self) -> None:
        """Consume one token.

        Raises:
            ServiceRejectedError: (reason ``"rate_limited"``) when the
                bucket is empty; ``retry_after`` is the time until one
                token refills.
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self._burst, self._tokens + (now - self._updated) * self._rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            retry_after = max(self._floor, (1.0 - self._tokens) / self._rate)
        raise ServiceRejectedError(
            f"session rate limit exceeded; retry in {retry_after:.3f}s",
            retry_after=retry_after,
            reason="rate_limited",
        )


class _Ticket:
    """One queued request plus the rendezvous for its response.

    The submitting thread blocks in :meth:`wait`; the request worker
    publishes either a response or an exception via :meth:`resolve` /
    :meth:`fail`.  ``enqueued_at`` lets the worker compute queue wait.
    """

    __slots__ = ("request", "priority", "enqueued_at", "response",
                 "error", "_done")

    def __init__(self, request: object, priority: int,
                 enqueued_at: float) -> None:
        self.request = request
        self.priority = priority
        self.enqueued_at = enqueued_at
        self.response: object = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def resolve(self, response: object) -> None:
        self.response = response
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> object:
        if not self._done.wait(timeout):
            raise ServiceError("timed out waiting for a queued request")
        if self.error is not None:
            raise self.error
        return self.response


class AdmissionQueue:
    """Bounded priority queue with high-water backpressure.

    ``admit`` never blocks: requests past the high-water mark are
    rejected with a retry-after hint.  ``take`` blocks workers until a
    ticket is available or the queue closes.  Higher ``priority`` drains
    first; within one priority class tickets leave in exactly the order
    they were admitted (FIFO — a deque per class).

    Args:
        capacity: hard bound on queued tickets (>= 1).
        high_water: backpressure threshold (1..capacity); ``None`` means
            ``capacity``.
        retry_after: retry-after hint attached to rejections.
    """

    _classes = guarded_by("_cond")
    _depth = guarded_by("_cond")
    # R013: the ingress lifecycle.  No admit() on a provably-closed
    # queue; close() returns the stranded tickets and every call site
    # must settle them (fail/resolve); the session's token bucket must
    # be consumed before the request is enqueued, never after.
    _lifecycle = protocol(
        "admission-queue",
        rule="R013",
        states=("open", "closed"),
        initial="open",
        transitions={"close": ("open", "closed")},
        allowed={
            "open": ("admit", "take", "close"),
            "closed": ("take", "close"),
        },
        drains={"close": ("fail", "resolve")},
        requires_before={"admit": "token-bucket:acquire"},
    )
    _closed = guarded_by("_cond")
    admitted = guarded_by("_cond")
    rejected = guarded_by("_cond")

    def __init__(
        self,
        capacity: int,
        high_water: Optional[int] = None,
        retry_after: float = 0.05,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        high_water = capacity if high_water is None else high_water
        if not 1 <= high_water <= capacity:
            raise ServiceError(
                f"high_water must be in [1, {capacity}], got {high_water}"
            )
        self.capacity = capacity
        self.high_water = high_water
        self._retry_after = float(retry_after)
        self._cond = threading.Condition()
        # priority -> FIFO of tickets; kept sparse so an idle priority
        # class costs nothing.
        self._classes: Dict[int, collections.deque] = {}
        self._depth = 0
        self._closed = False
        self.admitted = 0
        self.rejected = 0

    def admit(self, request: object, priority: int = 0) -> _Ticket:
        """Enqueue a request; returns the ticket to wait on.

        Raises:
            ServiceRejectedError: (reason ``"queue_full"``) when the
                queue is at or past its high-water mark.
            ServiceError: if the queue has been closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceError("admission queue is closed")
            if self._depth >= self.high_water:
                self.rejected += 1
                depth = self._depth
            else:
                ticket = _Ticket(request, priority, time.perf_counter())
                self._classes.setdefault(priority, collections.deque())
                self._classes[priority].append(ticket)
                self._depth += 1
                self.admitted += 1
                self._cond.notify()
                return ticket
        raise ServiceRejectedError(
            f"admission queue at high-water mark ({depth}/"
            f"{self.high_water}); retry in {self._retry_after:.3f}s",
            retry_after=self._retry_after,
            reason="queue_full",
        )

    def take(self, timeout: Optional[float] = None) -> Optional[_Ticket]:
        """Remove the next ticket (highest priority, FIFO within it).

        Blocks until a ticket is available or the queue closes; returns
        None on timeout or when a closed queue is empty.
        """
        with self._cond:
            if self._depth == 0 and not self._closed:
                self._cond.wait(timeout)
            if self._depth == 0:
                return None
            priority = max(p for p, q in self._classes.items() if q)
            ticket = self._classes[priority].popleft()
            if not self._classes[priority]:
                del self._classes[priority]
            self._depth -= 1
            return ticket

    def close(self) -> List[_Ticket]:
        """Stop admissions, wake blocked workers, return stranded tickets.

        The service fails stranded tickets so no submitter blocks on a
        response that will never come.
        """
        with self._cond:
            self._closed = True
            stranded: List[_Ticket] = []
            for queue in self._classes.values():
                stranded.extend(queue)
            self._classes.clear()
            self._depth = 0
            self._cond.notify_all()
            return stranded

    @property
    def depth(self) -> int:
        with self._cond:
            return self._depth

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._cond:
            return (
                f"AdmissionQueue(depth={self._depth}/{self.capacity}, "
                f"high_water={self.high_water}, admitted={self.admitted}, "
                f"rejected={self.rejected})"
            )
