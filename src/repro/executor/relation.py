"""Intermediate results: a bag of aligned column arrays."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.catalog import ColumnRef
from repro.errors import ExecutionError


class Relation:
    """Row-aligned columns keyed by :class:`ColumnRef` (or string labels).

    STRING columns stay dictionary-encoded throughout execution; decoding
    happens only when final results are rendered, via the owning table's
    dictionary.
    """

    def __init__(self, columns: Dict[object, np.ndarray]) -> None:
        self._columns: Dict[object, np.ndarray] = {}
        self._row_count: Optional[int] = None
        for key, array in columns.items():
            self._set(key, np.asarray(array))

    def _set(self, key, array: np.ndarray) -> None:
        if self._row_count is None:
            self._row_count = int(array.shape[0])
        elif array.shape[0] != self._row_count:
            raise ExecutionError(
                f"column {key} has {array.shape[0]} rows, expected "
                f"{self._row_count}"
            )
        self._columns[key] = array

    @property
    def row_count(self) -> int:
        return self._row_count or 0

    def __contains__(self, key) -> bool:
        return key in self._columns

    def column(self, key) -> np.ndarray:
        try:
            return self._columns[key]
        except KeyError:
            raise ExecutionError(
                f"no column {key} in relation "
                f"(have {list(self._columns)})"
            ) from None

    def keys(self) -> list:
        return list(self._columns)

    def take(self, indices: np.ndarray) -> "Relation":
        """Row subset / reorder by positional indices."""
        return Relation(
            {key: arr[indices] for key, arr in self._columns.items()}
        )

    def filter(self, mask: np.ndarray) -> "Relation":
        """Row subset by boolean mask."""
        return Relation({key: arr[mask] for key, arr in self._columns.items()})

    def merged_with(self, other: "Relation") -> "Relation":
        """Column-wise union of two row-aligned relations."""
        if other.row_count != self.row_count:
            raise ExecutionError(
                "cannot merge relations with different row counts: "
                f"{self.row_count} vs {other.row_count}"
            )
        combined = dict(self._columns)
        combined.update(other._columns)
        return Relation(combined)

    @classmethod
    def from_table(
        cls, table_data, table_name: str, columns: Iterable[str]
    ) -> "Relation":
        """Relation view over a base table's stored arrays."""
        return cls(
            {
                ColumnRef(table_name, name): table_data.column_array(name)
                for name in columns
            }
        )

    @classmethod
    def empty(cls) -> "Relation":
        return cls({})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation(rows={self.row_count}, cols={len(self._columns)})"
