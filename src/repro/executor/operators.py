"""Vectorized join and grouping primitives."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.catalog import ColumnType
from repro.errors import ExecutionError


def equi_join_indices(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Matching row-index pairs of an equijoin on single key arrays.

    Sort-probe implementation: sort the right side once, binary-search
    each left key, and expand the matching ranges.  Returns parallel
    ``(left_idx, right_idx)`` arrays.
    """
    left_keys = np.asarray(left_keys)
    right_keys = np.asarray(right_keys)
    if left_keys.shape[0] == 0 or right_keys.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    lo = np.searchsorted(sorted_right, left_keys, side="left")
    hi = np.searchsorted(sorted_right, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(left_keys.shape[0]), counts)
    starts = np.repeat(lo, counts)
    offsets = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    right_idx = order[starts + offsets]
    return left_idx.astype(np.int64), right_idx.astype(np.int64)


def composite_keys(arrays: List[np.ndarray]) -> np.ndarray:
    """Collapse parallel key columns into a single int64 key array.

    Columns are jointly factorized, then mixed base-|domain| — exact (no
    collisions) for the domain sizes we handle.
    """
    if len(arrays) == 1:
        return np.asarray(arrays[0])
    stacked = np.stack([np.asarray(a, dtype=np.float64) for a in arrays])
    # factorize each column, then combine positionally
    combined = np.zeros(stacked.shape[1], dtype=np.int64)
    multiplier = 1
    for row in stacked:
        _, inverse = np.unique(row, return_inverse=True)
        domain = int(inverse.max()) + 1 if inverse.size else 1
        combined = combined + inverse.astype(np.int64) * multiplier
        multiplier *= max(1, domain)
        if multiplier > 2**62:
            raise ExecutionError("composite join key domain overflow")
    return combined


def translate_string_codes(
    left_dict, right_dict, right_codes: np.ndarray
) -> np.ndarray:
    """Re-encode right-side string codes into the left side's dictionary.

    Strings absent from the left dictionary map to -1 (matches nothing,
    because codes are non-negative).
    """
    mapping = np.full(max(1, len(right_dict)), -1, dtype=np.int64)
    for code, value in enumerate(right_dict.values()):
        left_code = left_dict.lookup(value)
        if left_code is not None:
            mapping[code] = left_code
    if right_codes.shape[0] == 0:
        return right_codes.astype(np.int64)
    return mapping[np.asarray(right_codes, dtype=np.int64)]


def align_join_keys(database, relation_left, relation_right, join_predicates):
    """Key arrays for both sides of a join, in comparable domains.

    STRING join columns are translated into a shared code space via their
    dictionaries; other types compare natively.
    """
    left_tables = set(relation_left_tables(relation_left))
    left_arrays, right_arrays = [], []
    for predicate in join_predicates:
        left_ref, right_ref = predicate.left, predicate.right
        if left_ref.table not in left_tables:
            left_ref, right_ref = right_ref, left_ref
        left_values = relation_left.column(left_ref)
        right_values = relation_right.column(right_ref)
        if database.schema.column(left_ref).type == ColumnType.STRING:
            left_dict = database.table(left_ref.table).string_dictionary(
                left_ref.column
            )
            right_dict = database.table(right_ref.table).string_dictionary(
                right_ref.column
            )
            right_values = translate_string_codes(
                left_dict, right_dict, right_values
            )
        left_arrays.append(left_values)
        right_arrays.append(right_values)
    return left_arrays, right_arrays


def joint_composite_keys(
    left_arrays: List[np.ndarray], right_arrays: List[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Single comparable key per row for both join sides.

    The factorization must be *joint* (over the concatenation of both
    sides) so that equal values get equal codes on both sides.
    """
    if len(left_arrays) != len(right_arrays):
        raise ExecutionError("join sides must have equal key column counts")
    n_left = int(np.asarray(left_arrays[0]).shape[0]) if left_arrays else 0
    if len(left_arrays) == 1:
        return np.asarray(left_arrays[0]), np.asarray(right_arrays[0])
    combined = [
        np.concatenate([np.asarray(l), np.asarray(r)])
        for l, r in zip(left_arrays, right_arrays)
    ]
    keys = composite_keys(combined)
    return keys[:n_left], keys[n_left:]


def relation_left_tables(relation) -> list:
    """Distinct tables represented in a relation's ColumnRef keys."""
    tables = []
    for key in relation.keys():
        table = getattr(key, "table", None)
        if table and table not in tables:
            tables.append(table)
    return tables


def group_indices(arrays: List[np.ndarray]):
    """Group rows by the composite of ``arrays``.

    Returns:
        (group_ids, representative_indices): ``group_ids[i]`` is the dense
        group number of row *i*; ``representative_indices[g]`` is the first
        row of group *g* (useful for emitting group key values).
    """
    if not arrays:
        raise ExecutionError("group_indices requires at least one column")
    keys = composite_keys(arrays)
    _, representative, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    return inverse.astype(np.int64), representative.astype(np.int64)
