"""Applying bound DML statements to a database.

The Rags-style workloads contain INSERT / DELETE / UPDATE statements whose
only role in the paper is to advance row-modification counters and thereby
trigger statistics refresh (Sec 6, Sec 8.1).  We execute them for real.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.executor.evaluate import predicate_mask
from repro.executor.relation import Relation
from repro.sql.query import DmlStatement


def apply_dml(database, statement: DmlStatement) -> int:
    """Execute one DML statement; returns the number of rows affected."""
    if statement.kind == "insert":
        rows = []
        for row in statement.rows:
            if isinstance(row, dict):
                rows.append(row)
            else:
                names = database.table(statement.table).schema.column_names()
                if len(row) != len(names):
                    raise ExecutionError(
                        f"INSERT tuple width {len(row)} != table width "
                        f"{len(names)}"
                    )
                rows.append(dict(zip(names, row)))
        return database.insert(statement.table, rows)

    data = database.table(statement.table)
    if statement.predicate is None:
        mask = np.ones(data.row_count, dtype=bool)
    else:
        relation = Relation.from_table(
            data, statement.table, data.schema.column_names()
        )
        mask = predicate_mask(database, relation, statement.predicate)

    if statement.kind == "delete":
        return database.delete(statement.table, mask)
    if statement.kind == "update":
        return database.update(statement.table, mask, statement.assignments)
    raise ExecutionError(f"unknown DML kind {statement.kind!r}")
