"""Plan execution over stored data, with actual-cost scoring.

The executor interprets a physical plan bottom-up using vectorized numpy
operators, and — the part the experiments depend on — re-applies the
optimizer's cost formulas to the *actual* cardinalities observed at each
operator.  The resulting ``actual_cost`` is the paper's "execution cost"
(DESIGN.md §2): a plan picked from bad estimates pays its true price.

Public API::

    from repro.executor import Executor, ExecutionResult, Relation
"""

from repro.executor.relation import Relation
from repro.executor.executor import ExecutionResult, Executor

__all__ = ["Relation", "Executor", "ExecutionResult"]
