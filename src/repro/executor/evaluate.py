"""Vectorized evaluation of predicates and scalar expressions."""

from __future__ import annotations

import numpy as np

from repro.catalog import ColumnRef, ColumnType
from repro.errors import ExecutionError
from repro.executor.relation import Relation
from repro.sql.expressions import (
    ArithmeticExpression,
    ColumnExpression,
    LiteralExpression,
    ScalarExpression,
)
from repro.sql.predicates import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    LikePredicate,
    Predicate,
)

_COMPARATORS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def encode_literal(database, ref: ColumnRef, value):
    """Map a logical literal to the stored domain of ``ref``.

    Returns ``None`` for a string never present in the dictionary (the
    predicate then matches nothing / everything depending on the op).
    """
    ctype = database.schema.column(ref).type
    if ctype == ColumnType.STRING:
        return database.table(ref.table).string_dictionary(
            ref.column
        ).lookup(value)
    return value


# joins are evaluated by the join operator, not as row masks
# repro-lint: dispatch=Predicate except=JoinPredicate
def predicate_mask(
    database, relation: Relation, predicate: Predicate
) -> np.ndarray:
    """Boolean mask of relation rows satisfying a selection predicate."""
    (ref,) = predicate.columns()
    values = relation.column(ref)
    if isinstance(predicate, ComparisonPredicate):
        literal = encode_literal(database, ref, predicate.value)
        if literal is None:
            if predicate.op == "=":
                return np.zeros(values.shape[0], dtype=bool)
            if predicate.op == "<>":
                return np.ones(values.shape[0], dtype=bool)
            raise ExecutionError(
                f"order comparison with unknown string in {predicate}"
            )
        return _COMPARATORS[predicate.op](values, literal)
    if isinstance(predicate, BetweenPredicate):
        return (values >= predicate.low) & (values <= predicate.high)
    if isinstance(predicate, InPredicate):
        encoded = [
            encode_literal(database, ref, value) for value in predicate.values
        ]
        present = [code for code in encoded if code is not None]
        if not present:
            return np.zeros(values.shape[0], dtype=bool)
        return np.isin(values, np.asarray(present))
    if isinstance(predicate, LikePredicate):
        dictionary = database.table(ref.table).string_dictionary(ref.column)
        codes = dictionary.codes_matching_like(predicate.pattern)
        if codes.shape[0] == 0:
            return np.zeros(values.shape[0], dtype=bool)
        return np.isin(values, codes)
    raise ExecutionError(f"unsupported predicate {predicate}")


# repro-lint: dispatch=ScalarExpression
def evaluate_scalar(
    database, relation: Relation, expression: ScalarExpression
) -> np.ndarray:
    """Evaluate a scalar expression to a per-row array.

    STRING columns evaluate to their dictionary codes; arithmetic over
    STRING columns is rejected.
    """
    if isinstance(expression, ColumnExpression):
        return relation.column(expression.column)
    if isinstance(expression, LiteralExpression):
        return np.full(relation.row_count, expression.value)
    if isinstance(expression, ArithmeticExpression):
        left = evaluate_scalar(database, relation, expression.left)
        right = evaluate_scalar(database, relation, expression.right)
        for part in (expression.left, expression.right):
            for ref in part.columns():
                if database.schema.column(ref).type == ColumnType.STRING:
                    raise ExecutionError(
                        f"arithmetic over STRING column {ref}"
                    )
        left = left.astype(np.float64, copy=False)
        right = right.astype(np.float64, copy=False)
        if expression.op == "+":
            return left + right
        if expression.op == "-":
            return left - right
        if expression.op == "*":
            return left * right
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(right != 0, left / right, 0.0)
    raise ExecutionError(f"unsupported scalar expression {expression}")


def decode_output_value(database, key, value):
    """Decode one output cell for display.

    String codes become strings, DATE day numbers become ISO dates, and
    numpy scalars become plain Python numbers.
    """
    if isinstance(key, ColumnRef):
        ctype = database.schema.column(key).type
        if ctype == ColumnType.STRING:
            return database.table(key.table).string_dictionary(
                key.column
            ).decode(int(value))
        if ctype == ColumnType.DATE:
            from repro.datagen.dates import daynum_to_date

            return daynum_to_date(int(value))
        if ctype == ColumnType.INT:
            return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    return value
