"""The plan interpreter.

``Executor.execute(plan, query)`` runs a physical plan bottom-up and
returns an :class:`ExecutionResult` whose ``actual_cost`` applies the
optimizer's own cost formulas to the *observed* cardinalities — the
execution-cost metric of the experiments (DESIGN.md §2).

Semantics note: all join algorithms produce the same rows; the algorithm
(and access path) choice affects only the actual cost, exactly as the
choice would affect wall-clock time on a real engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.catalog import ColumnRef, ColumnType
from repro.config import DEFAULT_CONFIG, OptimizerConfig
from repro.errors import ExecutionError
from repro.executor.evaluate import (
    decode_output_value,
    encode_literal,
    evaluate_scalar,
    predicate_mask,
)
from repro.executor.operators import (
    align_join_keys,
    equi_join_indices,
    group_indices,
    joint_composite_keys,
)
from repro.executor.relation import Relation
from repro.feedback.observation import OperatorObservation, PlanInstrumenter
from repro.optimizer.cost_model import CostModel
from repro.optimizer.plans import (
    AggregateNode,
    HavingNode,
    IndexSeekNode,
    JoinAlgorithm,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.sql.expressions import Aggregate, AggregateFunction, ColumnExpression
from repro.sql.predicates import BetweenPredicate, ComparisonPredicate, InPredicate
from repro.sql.query import Query


class ExecutionResult:
    """Outcome of executing one plan.

    Attributes:
        relation: the final operator's output columns (strings encoded).
        actual_cost: cost-model units at observed cardinalities — the
            experiments' "execution cost".
        row_count: rows produced by the final operator.
        operator_observations: one
            :class:`~repro.feedback.observation.OperatorObservation` per
            executed operator (bottom-up order) — the raw material of
            the execution-feedback loop.
    """

    def __init__(
        self,
        database,
        relation: Relation,
        actual_cost: float,
        projections: tuple,
        query: Optional[Query],
        operator_observations: Tuple[OperatorObservation, ...] = (),
    ) -> None:
        self._db = database
        self.relation = relation
        self.actual_cost = float(actual_cost)
        self._projections = projections
        self._query = query
        self.operator_observations = operator_observations

    @property
    def row_count(self) -> int:
        return self.relation.row_count

    def __repr__(self) -> str:
        return (
            f"ExecutionResult(row_count={self.row_count}, "
            f"actual_cost={self.actual_cost:.2f}, "
            f"operators={len(self.operator_observations)})"
        )

    def output_keys(self) -> list:
        """Column keys of the projected output, in SELECT-list order."""
        if self._projections:
            keys = []
            for item in self._projections:
                if isinstance(item, Aggregate):
                    keys.append(str(item))
                elif isinstance(item, ColumnExpression):
                    keys.append(item.column)
                else:
                    keys.append(item)
            return keys
        if self._query is not None:
            # SELECT *: deterministic order (FROM-clause table order,
            # schema column order) regardless of the plan's join order
            ordered = []
            for table in self._query.tables:
                for name in self._db.table(table).schema.column_names():
                    ref = ColumnRef(table, name)
                    if ref in self.relation:
                        ordered.append(ref)
            if ordered:
                return ordered
        return self.relation.keys()

    def rows(self, limit: Optional[int] = None) -> List[tuple]:
        """Materialize (and decode) output rows, optionally limited."""
        keys = self.output_keys()
        arrays = []
        for key in keys:
            if isinstance(key, str) or isinstance(key, ColumnRef):
                if key in self.relation:
                    arrays.append((key, self.relation.column(key)))
                    continue
            # a scalar expression over the final relation
            arrays.append(
                (None, evaluate_scalar(self._db, self.relation, key))
            )
        n = self.relation.row_count if arrays else 0
        if limit is not None:
            n = min(n, limit)
        out = []
        for i in range(n):
            row = []
            for key, arr in arrays:
                decode_key = key if isinstance(key, ColumnRef) else None
                row.append(
                    decode_output_value(self._db, decode_key, arr[i])
                )
            out.append(tuple(row))
        return out


class Executor:
    """Executes physical plans over one database."""

    def __init__(
        self, database, config: OptimizerConfig = DEFAULT_CONFIG
    ) -> None:
        self._db = database
        self._config = config
        self._cost = CostModel(config)
        self._instrumenter = PlanInstrumenter()

    # ------------------------------------------------------------------

    def execute(
        self,
        plan: PlanNode,
        query: Optional[Query] = None,
        feedback=None,
    ) -> ExecutionResult:
        """Run ``plan``; ``query`` (when given) scopes projected columns.

        Every operator's actual output cardinality is zipped with its
        optimization-time estimate into the result's
        ``operator_observations``; when ``feedback`` (a
        :class:`~repro.feedback.store.FeedbackStore`) is given, the
        observations are also recorded there.  Observation capture never
        changes rows or costs — execution with feedback off is
        byte-identical to execution before the feedback subsystem.
        """
        needed = self._needed_columns(query) if query is not None else None
        sink: List[Tuple[PlanNode, int]] = []
        relation, cost = self._run(plan, needed, sink)
        annotations = self._instrumenter.instrument(plan)
        observations = tuple(
            self._instrumenter.observe(annotations, node, rows)
            for node, rows in sink
        )
        if feedback is not None:
            feedback.record_all(observations)
        projections = query.projections if query is not None else ()
        return ExecutionResult(
            self._db, relation, cost, projections, query, observations
        )

    # ------------------------------------------------------------------
    # column pruning
    # ------------------------------------------------------------------

    def _needed_columns(self, query: Query):
        needed = {}

        def note(ref: ColumnRef):
            needed.setdefault(ref.table, set()).add(ref.column)

        for predicate in query.predicates:
            for ref in predicate.columns():
                note(ref)
        for join in query.joins:
            for ref in join.columns():
                note(ref)
        for ref in query.group_by + query.order_by:
            note(ref)
        for item in query.projections:
            for ref in item.columns():
                note(ref)
        for condition in query.having:
            for ref in condition.columns():
                note(ref)
        if not query.projections:
            for table in query.tables:
                for name in self._db.table(table).schema.column_names():
                    needed.setdefault(table, set()).add(name)
        return needed

    def _table_relation(self, table: str, needed) -> Relation:
        data = self._db.table(table)
        if needed is None or table not in needed:
            columns = data.schema.column_names()
        else:
            columns = [
                name
                for name in data.schema.column_names()
                if name in needed[table]
            ]
            if not columns:
                columns = data.schema.column_names()[:1]
        return Relation.from_table(data, table, columns)

    # ------------------------------------------------------------------
    # node dispatch
    # ------------------------------------------------------------------

    def _run(
        self, node: PlanNode, needed, sink: List[Tuple[PlanNode, int]]
    ) -> Tuple[Relation, float]:
        """Dispatch one node and record its observed cardinality."""
        relation, cost = self._dispatch(node, needed, sink)
        sink.append((node, relation.row_count))
        return relation, cost

    # repro-lint: dispatch=PlanNode
    def _dispatch(
        self, node: PlanNode, needed, sink: List[Tuple[PlanNode, int]]
    ) -> Tuple[Relation, float]:
        if isinstance(node, ScanNode):
            return self._run_scan(node, needed)
        if isinstance(node, IndexSeekNode):
            return self._run_seek(node, needed)
        if isinstance(node, JoinNode):
            return self._run_join(node, needed, sink)
        if isinstance(node, AggregateNode):
            return self._run_aggregate(node, needed, sink)
        if isinstance(node, HavingNode):
            return self._run_having(node, needed, sink)
        if isinstance(node, SortNode):
            return self._run_sort(node, needed, sink)
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    def _run_having(
        self, node: HavingNode, needed, sink
    ) -> Tuple[Relation, float]:
        child_rel, child_cost = self._run(node.child, needed, sink)
        comparators = {
            "=": np.equal,
            "<>": np.not_equal,
            "<": np.less,
            "<=": np.less_equal,
            ">": np.greater,
            ">=": np.greater_equal,
        }
        mask = np.ones(child_rel.row_count, dtype=bool)
        for condition in node.predicates:
            values = child_rel.column(str(condition.aggregate))
            mask &= comparators[condition.op](values, condition.value)
        out = child_rel.filter(mask)
        cost = child_cost + child_rel.row_count * (
            len(node.predicates) * self._cost_compare()
        )
        return out, cost

    def _cost_compare(self) -> float:
        return self._config.cost.cpu_compare_cost

    def _run_scan(self, node: ScanNode, needed) -> Tuple[Relation, float]:
        data = self._db.table(node.table)
        relation = self._table_relation(node.table, needed)
        for predicate in node.predicates:
            mask = predicate_mask(self._db, relation, predicate)
            relation = relation.filter(mask)
        cost = self._cost.table_scan(
            data.row_count,
            data.schema.row_width_bytes,
            len(node.predicates),
        )
        return relation, cost

    def _run_seek(self, node: IndexSeekNode, needed) -> Tuple[Relation, float]:
        data = self._db.table(node.table)
        index = self._db.indexes.structure(node.index_name)
        rows = self._seek_rows(node, index)
        relation = self._table_relation(node.table, needed).take(rows)
        matching = relation.row_count
        for predicate in node.residual_predicates:
            mask = predicate_mask(self._db, relation, predicate)
            relation = relation.filter(mask)
        cost = self._cost.index_seek(
            matching, len(node.residual_predicates)
        )
        return relation, cost

    def _seek_rows(self, node: IndexSeekNode, index) -> np.ndarray:
        predicate = node.seek_predicate
        (ref,) = predicate.columns()
        if isinstance(predicate, ComparisonPredicate):
            literal = encode_literal(self._db, ref, predicate.value)
            if literal is None:
                return np.empty(0, dtype=np.int64)
            if predicate.op == "=":
                return index.lookup_equal(literal)
            if predicate.op == "<":
                return index.lookup_range(high=literal, high_inclusive=False)
            if predicate.op == "<=":
                return index.lookup_range(high=literal)
            if predicate.op == ">":
                return index.lookup_range(low=literal, low_inclusive=False)
            if predicate.op == ">=":
                return index.lookup_range(low=literal)
            raise ExecutionError(f"cannot seek on {predicate}")
        if isinstance(predicate, BetweenPredicate):
            return index.lookup_range(low=predicate.low, high=predicate.high)
        if isinstance(predicate, InPredicate):
            encoded = [
                encode_literal(self._db, ref, value)
                for value in predicate.values
            ]
            return index.lookup_in([v for v in encoded if v is not None])
        raise ExecutionError(f"cannot seek on {predicate}")

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _run_join(
        self, node: JoinNode, needed, sink
    ) -> Tuple[Relation, float]:
        left_rel, left_cost = self._run(node.left, needed, sink)
        right_rel, right_cost = self._run(node.right, needed, sink)

        if node.join_predicates:
            left_arrays, right_arrays = align_join_keys(
                self._db, left_rel, right_rel, node.join_predicates
            )
            left_keys, right_keys = joint_composite_keys(
                left_arrays, right_arrays
            )
            left_idx, right_idx = equi_join_indices(left_keys, right_keys)
            out = left_rel.take(left_idx).merged_with(right_rel.take(right_idx))
        else:
            # cartesian product
            n_left, n_right = left_rel.row_count, right_rel.row_count
            left_idx = np.repeat(np.arange(n_left), n_right)
            right_idx = np.tile(np.arange(n_right), n_left)
            out = left_rel.take(left_idx).merged_with(right_rel.take(right_idx))

        out_rows = out.row_count
        l_rows, r_rows = left_rel.row_count, right_rel.row_count
        if node.algorithm == JoinAlgorithm.HASH:
            build = r_rows if node.build_side == "right" else l_rows
            probe = l_rows if node.build_side == "right" else r_rows
            local = self._cost.hash_join(build, probe, out_rows)
            total = left_cost + right_cost + local
        elif node.algorithm == JoinAlgorithm.MERGE:
            local = self._cost.merge_join(l_rows, r_rows, out_rows)
            total = left_cost + right_cost + local
        elif node.algorithm == JoinAlgorithm.NESTED_LOOP_INDEX:
            matches = out_rows / l_rows if l_rows else 0.0
            local = self._cost.nested_loop_index(l_rows, matches)
            # the inner access path is replaced by per-row index seeks
            total = left_cost + local
        else:  # NESTED_LOOP_SCAN: the inner subtree re-runs per outer row
            local = self._cost.nested_loop_scan(max(1, l_rows), right_cost)
            total = left_cost + local
        return out, total

    # ------------------------------------------------------------------
    # aggregation / sort
    # ------------------------------------------------------------------

    def _run_aggregate(
        self, node: AggregateNode, needed, sink
    ) -> Tuple[Relation, float]:
        child_rel, child_cost = self._run(node.child, needed, sink)
        input_rows = child_rel.row_count

        if node.group_by:
            key_arrays = [child_rel.column(ref) for ref in node.group_by]
            if input_rows == 0:
                columns = {ref: np.empty(0) for ref in node.group_by}
                for aggregate in node.aggregates:
                    columns[str(aggregate)] = np.empty(0)
                out = Relation(columns)
                cost = child_cost + self._cost.hash_aggregate(0, 0)
                return out, cost
            group_ids, representatives = group_indices(key_arrays)
            n_groups = representatives.shape[0]
            columns = {
                ref: arr[representatives]
                for ref, arr in zip(node.group_by, key_arrays)
            }
        else:
            n_groups = 1 if input_rows > 0 else 1
            group_ids = np.zeros(max(0, input_rows), dtype=np.int64)
            columns = {}

        for aggregate in node.aggregates:
            columns[str(aggregate)] = self._aggregate_values(
                aggregate, child_rel, group_ids, n_groups
            )
        if not columns:
            # GROUP BY with no aggregates and no keys cannot happen; guard
            raise ExecutionError("aggregate node produced no columns")
        out = Relation(columns)
        if node.method == "stream":
            out = self._sorted_by(out, node.group_by)
            cost = child_cost + self._cost.stream_aggregate(
                input_rows, out.row_count
            )
        else:
            cost = child_cost + self._cost.hash_aggregate(
                input_rows, out.row_count
            )
        return out, cost

    def _sorted_by(self, relation: Relation, keys) -> Relation:
        """Sort a relation by column keys (strings lexicographically)."""
        if relation.row_count <= 1 or not keys:
            return relation
        sort_keys = []
        for ref in reversed(tuple(keys)):
            arr = relation.column(ref)
            if (
                isinstance(ref, ColumnRef)
                and self._db.schema.column(ref).type == ColumnType.STRING
            ):
                dictionary = self._db.table(ref.table).string_dictionary(
                    ref.column
                )
                arr = np.asarray([dictionary.decode(int(c)) for c in arr])
            sort_keys.append(arr)
        return relation.take(np.lexsort(sort_keys))

    def _aggregate_values(
        self,
        aggregate: Aggregate,
        relation: Relation,
        group_ids: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        function = aggregate.function
        counts = np.bincount(group_ids, minlength=n_groups).astype(np.float64)
        if function == AggregateFunction.COUNT:
            return counts
        values = evaluate_scalar(self._db, relation, aggregate.argument)
        values = values.astype(np.float64, copy=False)
        if function == AggregateFunction.SUM:
            return np.bincount(group_ids, weights=values, minlength=n_groups)
        if function == AggregateFunction.AVG:
            sums = np.bincount(group_ids, weights=values, minlength=n_groups)
            return np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        if function == AggregateFunction.MIN:
            out = np.full(n_groups, np.inf)
            np.minimum.at(out, group_ids, values)
            return np.where(np.isfinite(out), out, 0.0)
        if function == AggregateFunction.MAX:
            out = np.full(n_groups, -np.inf)
            np.maximum.at(out, group_ids, values)
            return np.where(np.isfinite(out), out, 0.0)
        raise ExecutionError(f"unsupported aggregate {aggregate}")

    def _run_sort(
        self, node: SortNode, needed, sink
    ) -> Tuple[Relation, float]:
        child_rel, child_cost = self._run(node.child, needed, sink)
        child_rel = self._sorted_by(child_rel, node.keys)
        cost = child_cost + self._cost.sort(child_rel.row_count)
        return child_rel, cost
