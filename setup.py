"""Legacy setup shim.

The offline environment lacks the ``wheel`` package that PEP 660 editable
installs require, so ``pip install -e .`` falls back to this legacy path
(``--no-use-pep517``).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
