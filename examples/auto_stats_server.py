"""Online auto-statistics: a self-tuning server session (Sec 6).

Run with::

    python examples/auto_stats_server.py

Simulates the aggressive Sec 6 policy — statistics managed on the fly for
each incoming statement — and compares three server configurations on the
same update-heavy workload:

* SQL Server 7.0 style: create every syntactically relevant
  single-column statistic per query (the paper's baseline);
* MNSA/D: create only what the sensitivity analysis justifies, and
  drop-list statistics that never changed a plan;
* no statistics at all (magic numbers only).

Each configuration reports statistics creation cost, refresh (update)
cost triggered by the DML stream, and total workload execution cost.

The final section runs the same workload through the *online service*
(:class:`repro.StatsService`): concurrent client sessions submit
statements while background MNSA/D workers and a staleness monitor manage
statistics off the query path — the production posture the synchronous
advisor only simulates.  See ``docs/service.md``.
"""

import threading

from repro import (
    AgingPolicy,
    AutoDropPolicy,
    CreationPolicy,
    ServiceConfig,
    StatisticsAdvisor,
    StatsService,
    generate_workload,
    make_tpcd_database,
)


def run_configuration(policy: CreationPolicy, label: str) -> None:
    db = make_tpcd_database(scale=0.005, z=2.0, seed=7)
    workload = generate_workload(db, "U25-S-100")
    advisor = StatisticsAdvisor(
        db,
        creation_policy=policy,
        drop_policy=AutoDropPolicy(refresh_fraction=0.2),
        aging=AgingPolicy(window=25),
    )
    report = advisor.run_workload(workload.statements)
    visible = db.stats.visible_keys()
    print(f"--- {label}")
    print(f"  statements processed:   {report.statements}")
    print(f"  statistics created:     {len(report.created)}")
    print(f"  statistics visible now: {len(visible)}")
    print(f"  creation cost:          {report.creation_cost:>12,.0f}")
    print(f"  refresh (update) cost:  {report.update_cost:>12,.0f}")
    print(f"  workload exec cost:     {report.execution_cost:>12,.0f}")
    print()


def run_service(clients: int = 4, workers: int = 2) -> None:
    """The same workload through the concurrent StatsService."""
    db = make_tpcd_database(scale=0.005, z=2.0, seed=7)
    workload = generate_workload(db, "U25-S-100")
    service = StatsService(
        db, ServiceConfig(advisor_workers=workers, creation_policy="mnsad")
    )

    def client(statements) -> None:
        session = service.session()
        for statement in statements:
            session.submit_statement(statement)

    with service:
        threads = [
            threading.Thread(
                target=client, args=(workload.statements[i::clients],)
            )
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.drain()
    print(f"--- StatsService ({clients} sessions, {workers} workers)")
    print(f"  statistics created off the query path: "
          f"{len(service.created_off_path)}")
    print(f"  statistics visible now: {len(db.stats.visible_keys())}")
    print("  metrics:")
    for line in service.metrics_text().splitlines():
        print(f"    {line}")
    print()


def main() -> None:
    print("online statistics management, workload U25-S-100, TPCD_2\n")
    run_configuration(
        CreationPolicy.SYNTACTIC,
        "SQL Server 7.0 auto-statistics (all syntactic singles)",
    )
    run_configuration(
        CreationPolicy.MNSAD, "MNSA/D (paper) with drop-list + aging"
    )
    run_configuration(CreationPolicy.NONE, "no statistics (magic numbers)")
    run_service()


if __name__ == "__main__":
    main()
