"""Keeping statistics fresh under an insert stream.

Run with::

    python examples/incremental_maintenance.py

The paper's Sec 6 policy refreshes all of a table's statistics when its
row-modification counter trips — a full rebuild.  The approximate-
maintenance literature the paper cites ([8]) folds inserted values into
the existing histograms instead, at a tiny per-row cost, and rebuilds
only when the insert stream's distribution diverges from what the
histogram was built on.

This example streams order insertions into a skewed TPC-D database in
two regimes (stationary, then drifting) and reports what each strategy
spends and how accurate the histograms stay.
"""

from repro.experiments import (
    default_database_factory,
    run_incremental_maintenance_experiment,
)
from repro.experiments.common import format_table


def main() -> None:
    factory = default_database_factory(scale=0.005)
    print(
        "streaming 15 batches of 100 order insertions; statistics on\n"
        "orders.o_totalprice and orders.o_orderdate\n"
    )
    rows = run_incremental_maintenance_experiment(factory, 2.0)
    print(
        format_table(
            [
                "insert stream",
                "strategy",
                "maintenance cost",
                "full rebuilds",
                "q-error (1.0 = perfect)",
            ],
            [
                [
                    r.scenario,
                    r.strategy,
                    f"{r.maintenance_cost:,.0f}",
                    f"{r.full_rebuilds}",
                    f"{r.q_error_geomean:.2f}",
                ]
                for r in rows
            ],
        )
    )
    print(
        "\nstationary inserts: incremental maintenance is orders of\n"
        "magnitude cheaper at equal accuracy.  drifting inserts: the\n"
        "divergence trigger forces rebuilds, buying back accuracy that\n"
        "the counter-driven policy quietly loses between refreshes."
    )


if __name__ == "__main__":
    main()
