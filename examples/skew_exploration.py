"""How data skew changes which statistics are essential.

Run with::

    python examples/skew_exploration.py

The same query is analyzed over databases of increasing Zipfian skew
(z = 0 .. 4).  On uniform data, magic numbers are often adequate and MNSA
builds little; as skew grows, histograms diverge from the magic guesses,
plans change, and more statistics become essential.
"""

from repro import (
    MemoryBackend,
    Executor,
    Optimizer,
    candidate_statistics,
    make_tpcd_database,
    mnsa_for_query,
    parse_and_bind,
)

QUERY = """
SELECT c_mktsegment, COUNT(*), SUM(l_extendedprice * (1 - l_discount))
FROM customer, orders, lineitem
WHERE c_custkey = o_custkey
  AND o_orderkey = l_orderkey
  AND l_quantity = 49
  AND o_orderdate < '1995-01-01'
GROUP BY c_mktsegment
"""


def main() -> None:
    print(f"query (l_quantity = 49 is a tail value under skew):\n{QUERY}")
    header = (
        f"{'z':>4}  {'MNSA built':>10}  {'plan changed':>12}  "
        f"{'exec cost (no stats)':>20}  {'exec cost (MNSA)':>17}"
    )
    print(header)
    print("-" * len(header))
    for z in (0.0, 1.0, 2.0, 3.0, 4.0):
        db = make_tpcd_database(scale=0.005, z=z, seed=7)
        optimizer = Optimizer(db)
        executor = Executor(db)
        query = parse_and_bind(QUERY, db.schema)

        bare = optimizer.optimize(query)
        cost_bare = executor.execute(bare.plan, query).actual_cost

        result = mnsa_for_query(MemoryBackend(db, optimizer), query)
        tuned = optimizer.optimize(query)
        cost_tuned = executor.execute(tuned.plan, query).actual_cost

        changed = "yes" if tuned.signature != bare.signature else "no"
        print(
            f"{z:>4.1f}  {len(result.created):>10}  {changed:>12}  "
            f"{cost_bare:>20,.0f}  {cost_tuned:>17,.0f}"
        )
    print(
        "\nunder skew, the equality predicate on a tail value is far more"
        "\nselective than the magic number assumes; histograms correct the"
        "\nestimate, flipping join orders and cutting actual cost."
    )


if __name__ == "__main__":
    main()
