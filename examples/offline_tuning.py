"""Offline statistics tuning: the conservative Sec 6 regime.

Run with::

    python examples/offline_tuning.py

A DBA-style periodic tuning session: take a workload the server saw,
run MNSA per query to build a sufficient statistics set, then run the
Shrinking Set algorithm to pare it down to an essential set — the
smallest set whose removal of any element would change some query plan.
"""

from repro import (
    MemoryBackend,
    Optimizer,
    generate_workload,
    make_tpcd_database,
    mnsa_for_workload,
    shrinking_set,
    workload_candidate_statistics,
)
from repro.experiments.common import workload_execution_cost


def main() -> None:
    db = make_tpcd_database(scale=0.005, z=2.0, seed=7)
    optimizer = Optimizer(db)

    # the workload the server observed: 100 statements, 25% updates
    workload = generate_workload(db, "U25-S-100")
    queries = workload.queries()
    print(f"workload: {workload.name} — {len(queries)} queries, "
          f"{len(workload.dml())} DML statements")

    candidates = workload_candidate_statistics(queries)
    print(f"candidate statistics for the workload: {len(candidates)}\n")

    print("=== phase 1: MNSA per query (t=20%, eps=0.0005)")
    backend = MemoryBackend(db, optimizer)
    mnsa = mnsa_for_workload(backend, queries)
    print(f"MNSA created {len(mnsa.created)} of {len(candidates)} "
          f"candidates with {mnsa.optimizer_calls} optimizer calls")
    print(f"creation cost: {mnsa.creation_cost:,.0f} work units\n")

    cost_before_shrink = workload_execution_cost(db, queries)

    print("=== phase 2: Shrinking Set eliminates non-essential statistics")
    shrink = shrinking_set(backend, queries)
    print(f"retained {len(shrink.essential)} essential statistics, "
          f"removed {len(shrink.removed)}")
    print(f"optimizer calls: {shrink.optimizer_calls} "
          f"(memo hits: {shrink.memo_hits})")
    print("essential set:")
    for key in shrink.essential:
        print(f"  {key}")
    print()

    cost_after_shrink = workload_execution_cost(db, queries)
    print("=== outcome")
    update_cost = db.stats.update_cost_of_keys(shrink.essential)
    print(f"workload execution cost before shrink: "
          f"{cost_before_shrink:,.0f}")
    print(f"workload execution cost after shrink:  "
          f"{cost_after_shrink:,.0f}  (guaranteed equal plans)")
    print(f"update cost of the retained set: {update_cost:,.0f} "
          f"work units per refresh cycle")


if __name__ == "__main__":
    main()
