"""Quickstart: generate data, run SQL, and let MNSA pick statistics.

Run with::

    python examples/quickstart.py

Walks the core loop of the paper end to end on a small skewed TPC-D
database: optimize a query with no statistics (magic numbers), let MNSA
decide which statistics are worth building, and observe the plan and its
actual execution cost improve.
"""

from repro import (
    MemoryBackend,
    Executor,
    MnsaConfig,
    Optimizer,
    candidate_statistics,
    make_tpcd_database,
    mnsa_for_query,
    parse_and_bind,
)


def main() -> None:
    # a skewed TPC-D database (z = 2), ~60k rows total at this scale
    db = make_tpcd_database(scale=0.01, z=2.0, seed=7)
    optimizer = Optimizer(db)
    executor = Executor(db)

    query = parse_and_bind(
        """
        SELECT n_name, COUNT(*), SUM(o_totalprice)
        FROM orders, customer, nation
        WHERE o_custkey = c_custkey
          AND c_nationkey = n_nationkey
          AND o_orderdate >= '1995-01-01'
          AND o_totalprice > 250000
        GROUP BY n_name
        ORDER BY n_name
        """,
        db.schema,
    )

    print("=== 1. no statistics: the optimizer guesses with magic numbers")
    before = optimizer.optimize(query)
    print(before.plan.pretty())
    executed_before = executor.execute(before.plan, query)
    print(f"actual execution cost: {executed_before.actual_cost:,.0f}\n")

    print("=== 2. the candidate statistics the paper's algorithm proposes")
    for key in candidate_statistics(query):
        print(f"  {key}")
    print()

    print("=== 3. MNSA builds only the statistics that can matter")
    result = mnsa_for_query(
        MemoryBackend(db, optimizer),
        query,
        config=MnsaConfig(t_percent=20.0),
    )
    print(f"created ({len(result.created)}): "
          f"{', '.join(str(k) for k in result.created)}")
    print(f"skipped ({len(result.skipped)}): "
          f"{', '.join(str(k) for k in result.skipped) or '-'}")
    print(f"stop reason: {result.stop_reason}; "
          f"optimizer calls: {result.optimizer_calls}\n")

    print("=== 4. the plan after statistics")
    after = optimizer.optimize(query)
    print(after.plan.pretty())
    executed_after = executor.execute(after.plan, query)
    print(f"actual execution cost: {executed_after.actual_cost:,.0f}")
    print(f"plan changed: {before.signature != after.signature}\n")

    print("=== 5. query answer (same rows either way)")
    for row in executed_after.rows(limit=10):
        print(f"  {row}")


if __name__ == "__main__":
    main()
